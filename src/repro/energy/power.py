"""Tile- and cluster-level power model (Section VI-D).

The paper reports, for the TopH cluster running ``matmul`` at 500 MHz in
typical conditions (TT / 0.80 V / 25 C):

* per tile: 20.9 mW on average, of which the instruction cache draws 8.3 mW
  (39.5 %), the four Snitch cores 5.6 mW (26.6 %), the SPM banks 2.6 mW
  (12.6 %) and the request/response interconnects 1.7 mW (< 10 %);
* at the top level: 1.55 W, 86 % of which inside the tiles.

The model combines the dynamic energy of the activity counters produced by a
simulation (instructions, local/remote accesses, instruction fetches) with
per-component background power (clock tree + leakage), and reports the same
breakdown rows as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.core.system import SystemResult
from repro.energy.model import EnergyModel, EnergyParameters


@dataclass(frozen=True)
class PowerParameters:
    """Background (non-activity-proportional) power, in mW per tile."""

    #: Clock tree, ROB, AXI plumbing and other always-on tile logic.
    tile_overhead_mw: float = 2.4
    #: Instruction-cache background power (clocked tags/SRAM periphery).
    icache_background_mw: float = 2.2
    #: Core background power (clocking of the four Snitch cores), per tile.
    cores_background_mw: float = 1.6
    #: SPM background power (16 banks), per tile.
    spm_background_mw: float = 1.3
    #: Interconnect background power per tile.
    interconnect_background_mw: float = 0.35
    #: Cluster-level (outside-tile) power as a fraction of total tile power.
    cluster_overhead_fraction: float = 0.163


@dataclass
class PowerBreakdown:
    """Average power of one simulation, split by component (mW)."""

    icache_mw: float
    cores_mw: float
    spm_mw: float
    interconnect_mw: float
    other_mw: float
    num_tiles: int
    cluster_overhead_mw: float

    @property
    def tile_total_mw(self) -> float:
        """Average power of one tile."""
        return (
            self.icache_mw
            + self.cores_mw
            + self.spm_mw
            + self.interconnect_mw
            + self.other_mw
        )

    @property
    def cluster_total_w(self) -> float:
        """Total cluster power in watts."""
        return (self.tile_total_mw * self.num_tiles + self.cluster_overhead_mw) / 1000.0

    @property
    def tiles_fraction(self) -> float:
        """Fraction of the cluster power consumed inside the tiles."""
        total = self.cluster_total_w * 1000.0
        return (self.tile_total_mw * self.num_tiles) / total if total else 0.0

    def component_share(self, component_mw: float) -> float:
        """Share of one component in the tile's total power."""
        return component_mw / self.tile_total_mw if self.tile_total_mw else 0.0

    def rows(self) -> list[tuple[str, float, float]]:
        """(component, mW per tile, share) rows for the report tables."""
        return [
            ("instruction cache", self.icache_mw, self.component_share(self.icache_mw)),
            ("snitch cores", self.cores_mw, self.component_share(self.cores_mw)),
            ("spm banks", self.spm_mw, self.component_share(self.spm_mw)),
            ("interconnect", self.interconnect_mw, self.component_share(self.interconnect_mw)),
            ("other tile logic", self.other_mw, self.component_share(self.other_mw)),
        ]


class PowerModel:
    """Combines activity-proportional energy with background power."""

    def __init__(
        self,
        cluster: MemPoolCluster,
        frequency_hz: float = 500e6,
        energy_parameters: EnergyParameters | None = None,
        power_parameters: PowerParameters | None = None,
    ) -> None:
        self.cluster = cluster
        self.frequency_hz = frequency_hz
        self.energy_model = EnergyModel(cluster, energy_parameters)
        self.parameters = power_parameters or PowerParameters()

    def breakdown(self, result: SystemResult) -> PowerBreakdown:
        """Average power while running the simulated program."""
        if result.cycles <= 0:
            raise ValueError("the simulation ran for zero cycles")
        config = self.cluster.config
        parameters = self.parameters
        energy = self.energy_model.program_energy(result.total)
        seconds = result.cycles / self.frequency_hz
        # pJ / s = 1e-12 W -> convert to mW and normalise per tile.
        def dynamic_mw(total_pj: float) -> float:
            return total_pj * 1e-12 / seconds * 1e3 / config.num_tiles

        icache = dynamic_mw(energy.icache_pj) + parameters.icache_background_mw
        cores = dynamic_mw(energy.core_pj) + parameters.cores_background_mw
        spm = dynamic_mw(energy.bank_pj) + parameters.spm_background_mw
        interconnect = (
            dynamic_mw(energy.interconnect_pj) + parameters.interconnect_background_mw
        )
        other = parameters.tile_overhead_mw
        tile_total = icache + cores + spm + interconnect + other
        cluster_overhead = (
            tile_total * config.num_tiles * parameters.cluster_overhead_fraction
        )
        return PowerBreakdown(
            icache_mw=icache,
            cores_mw=cores,
            spm_mw=spm,
            interconnect_mw=interconnect,
            other_mw=other,
            num_tiles=config.num_tiles,
            cluster_overhead_mw=cluster_overhead,
        )

    def energy_per_instruction_pj(self, result: SystemResult) -> float:
        """Average energy per executed instruction, including background power."""
        breakdown = self.breakdown(result)
        seconds = result.cycles / self.frequency_hz
        total_joules = breakdown.cluster_total_w * seconds
        instructions = max(result.instructions, 1)
        return total_joules / instructions * 1e12
