"""Wire-energy accounting for synthetic-traffic results.

Bridges the Figure 10 per-access energy model to the Section V traffic
experiments: every completed request of a :class:`TrafficResult` pays the
core's load/store share, one bank access, and a path-derived interconnect
traversal — local-tile or remote, split by the run's measured
``local_fraction``.  The summary is computed *from the result's counters*
(never from per-flit state), so it is deterministic given the cluster
configuration and the result: equivalent runs on different engines carry
identical energy summaries, and attaching one never perturbs the
simulation itself.

The interconnect term uses the model's local/average-remote per-access
energies rather than re-walking each flit's exact path — the same
first-order accounting Figure 10 itself reports — which keeps the summary
exact for uniform destinations and a close, topology-sensitive
approximation for skewed patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.energy.model import EnergyModel, EnergyParameters


@dataclass(frozen=True)
class TrafficEnergySummary:
    """Energy of one traffic measurement window, split by component (pJ)."""

    #: Completed requests the window was billed for.
    completed_requests: int
    #: Fraction of traffic that stayed in the issuing core's tile.
    local_fraction: float
    #: Core (LSU) share: ``completed * core_memory_pj``.
    core_pj: float
    #: Path-derived interconnect share (local/remote mix).
    interconnect_pj: float
    #: SPM bank share: ``completed * bank_access_pj``.
    bank_pj: float

    @property
    def total_pj(self) -> float:
        """Total energy of the window in picojoules."""
        return self.core_pj + self.interconnect_pj + self.bank_pj

    @property
    def total_uj(self) -> float:
        """Total energy of the window in microjoules."""
        return self.total_pj * 1e-6

    @property
    def per_request_pj(self) -> float:
        """Average energy per completed request in picojoules."""
        if self.completed_requests == 0:
            return 0.0
        return self.total_pj / self.completed_requests


def traffic_energy(
    cluster: MemPoolCluster,
    result,
    parameters: EnergyParameters | None = None,
) -> TrafficEnergySummary:
    """Energy summary of one :class:`~repro.traffic.simulation.TrafficResult`.

    ``cluster`` must be (a cluster of) the configuration the result was
    measured on — the interconnect energies are derived from its topology's
    access paths, which is what makes the number differ across the
    topology catalogue for the same workload.
    """
    model = EnergyModel(cluster, parameters)
    params = model.parameters
    completed = result.completed_requests
    local_fraction = result.local_fraction
    per_request_interconnect = (
        local_fraction * model.local_interconnect_pj()
        + (1.0 - local_fraction) * model.average_remote_interconnect_pj()
    )
    return TrafficEnergySummary(
        completed_requests=completed,
        local_fraction=local_fraction,
        core_pj=completed * params.core_memory_pj,
        interconnect_pj=completed * per_request_interconnect,
        bank_pj=completed * params.bank_access_pj,
    )


def attach_energy(cluster, result, enabled: bool = True):
    """Attach :func:`traffic_energy` to ``result.energy`` when enabled.

    The one-liner every ``TrafficResult``-producing point function calls
    on its way out (and :class:`~repro.experiments.batch.BatchRunner`
    calls per batched member), so the attach semantics cannot drift
    between the per-point and batched paths.  Returns ``result``.
    """
    if enabled:
        result.energy = traffic_energy(cluster, result)
    return result
