"""Per-instruction energy model (Figure 10).

The paper reports, for the TopH tile in GF 22FDX at typical conditions:

====================  =====  ============  ======  =====
instruction           core   interconnect  banks   total
====================  =====  ============  ======  =====
``add``               3.7    —             —       3.7
``mul``               7.0    —             —       7.0
local load            1.8    4.5           2.1     8.4
remote load           1.8    13.0          2.1     16.9
====================  =====  ============  ======  =====

The core and bank energies are calibrated constants.  The interconnect energy
is *derived from the structure of the access path*: a local access only pays
the tile's local request/response crossbars; a remote access additionally
pays for every register boundary and switch stage it crosses (plus the longer
wires they imply).  With the default coefficients the derived numbers
reproduce the figure (4.5 pJ local, ~13 pJ for a TopH remote-group access,
ratio ~2.9x) and generalise to the other topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.interconnect.resources import RegisterStage


@dataclass(frozen=True)
class EnergyParameters:
    """Calibrated per-event energies in picojoules."""

    #: Core datapath energy of a simple ALU instruction (add, branch, ...).
    core_alu_pj: float = 3.7
    #: Core datapath energy of a multiply.
    core_mul_pj: float = 7.0
    #: Core (LSU + ROB) share of a load or store.
    core_memory_pj: float = 1.8
    #: Energy of one SPM bank access.
    bank_access_pj: float = 2.1
    #: Energy of traversing the tile-local request + response crossbars.
    tile_crossbar_pj: float = 4.5
    #: Energy of crossing one register boundary (including its wiring).
    register_crossing_pj: float = 1.4
    #: Energy of traversing one remote crossbar switch stage.
    switch_traversal_pj: float = 1.0
    #: Energy of one instruction fetch from the shared L1 instruction cache.
    icache_fetch_pj: float = 6.4
    #: Energy of one instruction-cache refill from L2.
    icache_refill_pj: float = 60.0


@dataclass(frozen=True)
class InstructionEnergy:
    """Energy of one instruction split by component (all in pJ)."""

    name: str
    core_pj: float
    interconnect_pj: float = 0.0
    bank_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.core_pj + self.interconnect_pj + self.bank_pj


@dataclass
class EnergyBreakdown:
    """Total energy of a simulation split by component (picojoules)."""

    core_pj: float = 0.0
    interconnect_pj: float = 0.0
    bank_pj: float = 0.0
    icache_pj: float = 0.0
    details: dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return self.core_pj + self.interconnect_pj + self.bank_pj + self.icache_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6


class EnergyModel:
    """Derives per-access and per-program energy for one cluster configuration."""

    def __init__(
        self, cluster: MemPoolCluster, parameters: EnergyParameters | None = None
    ) -> None:
        self.cluster = cluster
        self.parameters = parameters or EnergyParameters()

    # ------------------------------------------------------------------ #
    # Per-access interconnect energy (path-derived)
    # ------------------------------------------------------------------ #

    def interconnect_energy_pj(self, core_id: int, bank_id: int) -> float:
        """Interconnect energy of one load from ``core_id`` to ``bank_id``."""
        parameters = self.parameters
        path = self.cluster.topology.build_path(core_id, bank_id, needs_response=True)
        energy = parameters.tile_crossbar_pj
        for resource in path:
            if isinstance(resource, RegisterStage):
                if resource.level == 3:  # the bank itself is counted separately
                    continue
                energy += parameters.register_crossing_pj
            else:
                energy += parameters.switch_traversal_pj
        # The per-core response arbiter is part of the tile crossbars already.
        energy -= parameters.switch_traversal_pj
        return energy

    def average_remote_interconnect_pj(self, core_id: int = 0) -> float:
        """Average interconnect energy of a remote access (uniform destinations)."""
        config = self.cluster.config
        own_tile = config.tile_of_core(core_id)
        energies = [
            self.interconnect_energy_pj(core_id, tile * config.banks_per_tile)
            for tile in range(config.num_tiles)
            if tile != own_tile
        ]
        return sum(energies) / len(energies) if energies else 0.0

    def local_interconnect_pj(self, core_id: int = 0) -> float:
        """Interconnect energy of an access to the core's own tile."""
        config = self.cluster.config
        own_tile = config.tile_of_core(core_id)
        return self.interconnect_energy_pj(core_id, own_tile * config.banks_per_tile)

    # ------------------------------------------------------------------ #
    # Figure 10: energy per instruction
    # ------------------------------------------------------------------ #

    def instruction_energies(self) -> list[InstructionEnergy]:
        """The per-instruction breakdown of Figure 10 for this configuration."""
        parameters = self.parameters
        return [
            InstructionEnergy("add", core_pj=parameters.core_alu_pj),
            InstructionEnergy("mul", core_pj=parameters.core_mul_pj),
            InstructionEnergy(
                "local load",
                core_pj=parameters.core_memory_pj,
                interconnect_pj=self.local_interconnect_pj(),
                bank_pj=parameters.bank_access_pj,
            ),
            InstructionEnergy(
                "remote load",
                core_pj=parameters.core_memory_pj,
                interconnect_pj=self.average_remote_interconnect_pj(),
                bank_pj=parameters.bank_access_pj,
            ),
        ]

    # ------------------------------------------------------------------ #
    # Whole-program energy from activity counters
    # ------------------------------------------------------------------ #

    def program_energy(self, total_stats, icache_fetches: int | None = None,
                       icache_misses: int = 0) -> EnergyBreakdown:
        """Energy of a program run described by aggregated ``CoreStats``."""
        parameters = self.parameters
        adds = total_stats.compute_cycles - total_stats.mul_instructions
        muls = total_stats.mul_instructions
        memory_ops = total_stats.loads + total_stats.stores
        local_ops = total_stats.local_loads + total_stats.local_stores
        remote_ops = total_stats.remote_loads + total_stats.remote_stores
        if icache_fetches is None:
            icache_fetches = total_stats.instructions
        core = (
            adds * parameters.core_alu_pj
            + muls * parameters.core_mul_pj
            + memory_ops * parameters.core_memory_pj
        )
        interconnect = (
            local_ops * self.local_interconnect_pj()
            + remote_ops * self.average_remote_interconnect_pj()
        )
        banks = memory_ops * parameters.bank_access_pj
        icache = (
            icache_fetches * parameters.icache_fetch_pj
            + icache_misses * parameters.icache_refill_pj
        )
        return EnergyBreakdown(
            core_pj=core,
            interconnect_pj=interconnect,
            bank_pj=banks,
            icache_pj=icache,
            details={
                "adds": adds,
                "muls": muls,
                "local_accesses": local_ops,
                "remote_accesses": remote_ops,
                "icache_fetches": icache_fetches,
            },
        )
