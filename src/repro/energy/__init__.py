"""Energy-per-instruction and power models calibrated against Section VI."""

from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    EnergyParameters,
    InstructionEnergy,
)
from repro.energy.power import PowerBreakdown, PowerModel, PowerParameters
from repro.energy.traffic import TrafficEnergySummary, attach_energy, traffic_energy

__all__ = [
    "EnergyParameters",
    "EnergyModel",
    "EnergyBreakdown",
    "InstructionEnergy",
    "PowerModel",
    "PowerParameters",
    "PowerBreakdown",
    "TrafficEnergySummary",
    "traffic_energy",
    "attach_energy",
]
