"""Energy-per-instruction and power models calibrated against Section VI."""

from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    EnergyParameters,
    InstructionEnergy,
)
from repro.energy.power import PowerBreakdown, PowerModel, PowerParameters

__all__ = [
    "EnergyParameters",
    "EnergyModel",
    "EnergyBreakdown",
    "InstructionEnergy",
    "PowerModel",
    "PowerParameters",
    "PowerBreakdown",
]
