"""Interleaved and hybrid (scrambled) L1 address maps.

MemPool interleaves the shared L1 address space across all banks of all tiles
to minimise banking conflicts (Section IV, Figure 4).  The address fields of
the fully interleaved map, from least to most significant bit, are::

    | byte offset (2) | bank offset (b) | tile offset (t) | row offset (...) |

The *hybrid* map applies the scrambling logic to addresses that fall inside
the sequential region (the first ``2**(S+t)`` bytes of L1): the ``s`` bits
immediately above the bank offset are swapped with the ``t`` tile-offset bits
above them.  The result is that each tile owns a contiguous ``2**S``-byte
window of the address space (its *sequential region*) mapped onto its own
banks, while addresses outside the region remain fully interleaved.  The same
transformation is applied for every core, so all cores keep an identical,
shared view of L1 — the scheme changes *placement*, not *visibility*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WORD_BYTES, MemPoolConfig


@dataclass(frozen=True)
class BankLocation:
    """Physical location of a word in the banked L1 memory."""

    tile: int
    bank: int
    row: int

    def global_bank(self, banks_per_tile: int) -> int:
        """Global bank index of this location."""
        return self.tile * banks_per_tile + self.bank


class AddressMap:
    """Base class for L1 address maps.

    An address map translates byte addresses into bank locations
    (tile, bank-within-tile, row-within-bank) and back.  Concrete maps differ
    only in the *scrambling* step applied before the interleaved decode.
    """

    def __init__(self, config: MemPoolConfig) -> None:
        self.config = config
        self._byte_bits = config.byte_offset_bits
        self._bank_bits = config.bank_offset_bits
        self._tile_bits = config.tile_offset_bits
        self._seq_row_bits = config.seq_row_bits
        self._bank_shift = self._byte_bits
        self._tile_shift = self._byte_bits + self._bank_bits
        self._row_shift = self._tile_shift + self._tile_bits
        self._size = config.l1_bytes

    # -- scrambling hooks ------------------------------------------------ #

    def scramble(self, address: int) -> int:
        """Map a program-visible address to the physical (interleaved) address."""
        raise NotImplementedError

    def unscramble(self, address: int) -> int:
        """Inverse of :meth:`scramble`."""
        raise NotImplementedError

    # -- decoding -------------------------------------------------------- #

    def check_address(self, address: int) -> None:
        """Raise ``ValueError`` if ``address`` falls outside the L1 region."""
        if not 0 <= address < self._size:
            raise ValueError(
                f"address {address:#x} outside the L1 region [0, {self._size:#x})"
            )

    def decode(self, address: int) -> BankLocation:
        """Return the bank location addressed by the program-visible ``address``."""
        self.check_address(address)
        physical = self.scramble(address)
        bank = (physical >> self._bank_shift) & (self.config.banks_per_tile - 1)
        tile = (physical >> self._tile_shift) & (self.config.num_tiles - 1)
        row = physical >> self._row_shift
        return BankLocation(tile=tile, bank=bank, row=row)

    def encode(self, location: BankLocation) -> int:
        """Return the program-visible address of ``location`` (inverse of decode)."""
        if not 0 <= location.tile < self.config.num_tiles:
            raise ValueError(f"tile {location.tile} out of range")
        if not 0 <= location.bank < self.config.banks_per_tile:
            raise ValueError(f"bank {location.bank} out of range")
        if not 0 <= location.row < self.config.bank_words:
            raise ValueError(f"row {location.row} out of range")
        physical = (
            (location.row << self._row_shift)
            | (location.tile << self._tile_shift)
            | (location.bank << self._bank_shift)
        )
        return self.unscramble(physical)

    # -- convenience ----------------------------------------------------- #

    def tile_of(self, address: int) -> int:
        """Tile index targeted by ``address``."""
        return self.decode(address).tile

    def global_bank_of(self, address: int) -> int:
        """Global bank index targeted by ``address``."""
        return self.decode(address).global_bank(self.config.banks_per_tile)

    def is_local(self, address: int, tile: int) -> bool:
        """True if ``address`` maps to a bank inside ``tile``."""
        return self.tile_of(address) == tile

    def word_index(self, address: int) -> int:
        """Index of the 32-bit word containing ``address`` in a flat L1 array."""
        self.check_address(address)
        return address // WORD_BYTES

    def sequential_base(self, tile: int) -> int:
        """Program-visible base address of ``tile``'s sequential region.

        Only meaningful for the hybrid map; the interleaved map raises
        ``ValueError`` since it has no sequential regions.
        """
        raise NotImplementedError


class InterleavedAddressMap(AddressMap):
    """The fully interleaved address map (scrambling disabled)."""

    def scramble(self, address: int) -> int:
        return address

    def unscramble(self, address: int) -> int:
        return address

    def sequential_base(self, tile: int) -> int:
        raise ValueError(
            "the interleaved address map has no per-tile sequential regions"
        )


class HybridAddressMap(AddressMap):
    """The hybrid address map produced by the scrambling logic (Figure 4)."""

    def __init__(self, config: MemPoolConfig) -> None:
        super().__init__(config)
        self._seq_total = config.seq_region_total_bytes
        self._low_shift = self._tile_shift
        self._s = self._seq_row_bits
        self._t = self._tile_bits
        self._low_mask = (1 << self._s) - 1
        self._high_mask = (1 << self._t) - 1

    def _in_sequential_region(self, address: int) -> bool:
        return address < self._seq_total

    def scramble(self, address: int) -> int:
        if not self._in_sequential_region(address):
            return address
        upper = address >> (self._low_shift + self._s + self._t)
        seq_row = (address >> self._low_shift) & self._low_mask
        tile = (address >> (self._low_shift + self._s)) & self._high_mask
        lower = address & ((1 << self._low_shift) - 1)
        return (
            (upper << (self._low_shift + self._s + self._t))
            | (seq_row << (self._low_shift + self._t))
            | (tile << self._low_shift)
            | lower
        )

    def unscramble(self, address: int) -> int:
        if not self._in_sequential_region(address):
            return address
        upper = address >> (self._low_shift + self._s + self._t)
        tile = (address >> self._low_shift) & self._high_mask
        seq_row = (address >> (self._low_shift + self._t)) & self._low_mask
        lower = address & ((1 << self._low_shift) - 1)
        return (
            (upper << (self._low_shift + self._s + self._t))
            | (tile << (self._low_shift + self._s))
            | (seq_row << self._low_shift)
            | lower
        )

    def sequential_base(self, tile: int) -> int:
        if not 0 <= tile < self.config.num_tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile * self.config.seq_region_bytes_per_tile

    @property
    def sequential_region_bytes(self) -> int:
        """Size of each tile's sequential region in bytes."""
        return self.config.seq_region_bytes_per_tile


def make_address_map(config: MemPoolConfig) -> AddressMap:
    """Build the address map selected by ``config.scrambling_enabled``."""
    if config.scrambling_enabled:
        return HybridAddressMap(config)
    return InterleavedAddressMap(config)
