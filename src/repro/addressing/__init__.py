"""L1 address maps: interleaved, hybrid (scrambled), and layout helpers (Section IV)."""

from repro.addressing.map import (
    AddressMap,
    BankLocation,
    HybridAddressMap,
    InterleavedAddressMap,
    make_address_map,
)
from repro.addressing.layout import MemoryLayout, StackAllocation

__all__ = [
    "AddressMap",
    "BankLocation",
    "InterleavedAddressMap",
    "HybridAddressMap",
    "make_address_map",
    "MemoryLayout",
    "StackAllocation",
]
