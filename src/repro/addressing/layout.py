"""Program-visible memory layout helpers.

The layout places per-core stacks (and optionally per-tile private data) in
the *sequential region* of the L1 address space and global shared data above
it.  The same program-visible addresses are used whether or not the
scrambling logic is enabled: with scrambling, stack addresses land in the
core's own tile (1-cycle accesses); without it, the very same addresses are
interleaved across all tiles — exactly the comparison made in Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WORD_BYTES, MemPoolConfig


@dataclass(frozen=True)
class StackAllocation:
    """Stack window assigned to one core."""

    core_id: int
    base: int
    size: int

    @property
    def top(self) -> int:
        """Initial stack pointer (stacks grow downwards from ``top``)."""
        return self.base + self.size


@dataclass
class Region:
    """A named, allocated region of the L1 address space."""

    name: str
    base: int
    size: int
    tile: int | None = None

    @property
    def end(self) -> int:
        return self.base + self.size


class MemoryLayout:
    """Allocator for the shared L1 address space.

    * Per-core stacks live in the sequential region: core ``c`` of tile ``T``
      gets a ``stack_bytes_per_core`` window inside tile ``T``'s
      ``seq_region_bytes_per_tile`` slice.
    * ``alloc_tile_local`` hands out additional tile-local storage from the
      remainder of a tile's sequential slice.
    * ``alloc_shared`` hands out interleaved (shared) storage above the
      sequential region.
    """

    def __init__(self, config: MemPoolConfig) -> None:
        self.config = config
        self._regions: list[Region] = []
        stack_bytes = config.stack_bytes_per_core * config.cores_per_tile
        # Per-tile cursor inside the sequential slice, after the stacks.
        self._tile_cursor: list[int] = [stack_bytes] * config.num_tiles
        # Shared cursor above the whole sequential region.
        self._shared_cursor = config.seq_region_total_bytes
        self._stacks = [self._build_stack(core) for core in range(config.num_cores)]

    # ------------------------------------------------------------------ #
    # Stacks
    # ------------------------------------------------------------------ #

    def _build_stack(self, core_id: int) -> StackAllocation:
        config = self.config
        tile = config.tile_of_core(core_id)
        local_index = config.local_core_index(core_id)
        tile_base = tile * config.seq_region_bytes_per_tile
        base = tile_base + local_index * config.stack_bytes_per_core
        return StackAllocation(core_id=core_id, base=base, size=config.stack_bytes_per_core)

    def stack(self, core_id: int) -> StackAllocation:
        """Stack window of ``core_id``."""
        self.config._check_core(core_id)
        return self._stacks[core_id]

    def stack_pointer(self, core_id: int) -> int:
        """Initial stack pointer for ``core_id`` (word-aligned top of stack)."""
        top = self.stack(core_id).top
        return top - (top % WORD_BYTES)

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    @staticmethod
    def _align(value: int, alignment: int) -> int:
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        return (value + alignment - 1) & ~(alignment - 1)

    def alloc_shared(self, name: str, size: int, alignment: int = WORD_BYTES) -> Region:
        """Allocate ``size`` bytes of shared (interleaved) storage."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        base = self._align(self._shared_cursor, alignment)
        end = base + size
        if end > self.config.l1_bytes:
            raise MemoryError(
                f"cannot allocate {size} B of shared storage: only "
                f"{self.config.l1_bytes - base} B left"
            )
        self._shared_cursor = end
        region = Region(name=name, base=base, size=size)
        self._regions.append(region)
        return region

    def alloc_tile_local(
        self, name: str, tile: int, size: int, alignment: int = WORD_BYTES
    ) -> Region:
        """Allocate ``size`` bytes inside ``tile``'s sequential slice."""
        self.config._check_tile(tile)
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        tile_base = tile * self.config.seq_region_bytes_per_tile
        cursor = self._align(self._tile_cursor[tile], alignment)
        end = cursor + size
        if end > self.config.seq_region_bytes_per_tile:
            raise MemoryError(
                f"tile {tile} sequential slice exhausted: requested {size} B, "
                f"{self.config.seq_region_bytes_per_tile - cursor} B available"
            )
        self._tile_cursor[tile] = end
        region = Region(name=name, base=tile_base + cursor, size=size, tile=tile)
        self._regions.append(region)
        return region

    def alloc_core_local(
        self, name: str, core_id: int, size: int, alignment: int = WORD_BYTES
    ) -> Region:
        """Allocate tile-local storage in the tile that hosts ``core_id``."""
        tile = self.config.tile_of_core(core_id)
        return self.alloc_tile_local(f"{name}.core{core_id}", tile, size, alignment)

    @property
    def regions(self) -> tuple[Region, ...]:
        """All regions allocated so far (excluding stacks)."""
        return tuple(self._regions)

    def describe(self) -> str:
        """Human-readable summary of the layout."""
        lines = [
            f"sequential region: {self.config.seq_region_total_bytes} B "
            f"({self.config.seq_region_bytes_per_tile} B per tile)",
            f"stacks: {self.config.stack_bytes_per_core} B per core",
        ]
        for region in self._regions:
            where = f"tile {region.tile}" if region.tile is not None else "shared"
            lines.append(
                f"  {region.name}: [{region.base:#x}, {region.end:#x}) ({where})"
            )
        return "\n".join(lines)
