"""Content-addressed on-disk cache for experiment results.

Results are stored as pickle files named after the spec's cache key (a
SHA-256 digest over the runner, its parameters, and the source of the
runner's whole package — see :mod:`repro.experiments.spec`).  Because the
key covers the program source, a cache entry can never serve stale results
for edited simulation code: the edit changes the key, the lookup misses,
and the point is recomputed.

Writes are atomic (temporary file + :func:`os.replace`), so a crashed or
killed run never leaves a truncated entry behind; unreadable entries are
treated as misses and deleted.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value, so a dedicated object is needed).
MISS = object()


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly.

    Honours ``REPRO_CACHE_DIR`` when set; otherwise falls back to
    ``~/.cache/repro/experiments`` (XDG-style).
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "experiments"


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_line(self) -> str:
        """One-line summary, e.g. ``"cache: 3 hits, 1 miss"``."""
        noun = "miss" if self.misses == 1 else "misses"
        return f"cache: {self.hits} hits, {self.misses} {noun}"


@dataclass
class ResultCache:
    """Content-addressed pickle store for experiment results.

    Parameters
    ----------
    root : Path or str, optional
        Directory holding the cache; created lazily on first store.
        Defaults to :func:`default_cache_dir`.

    Examples
    --------
    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp())
    >>> cache.get("0" * 64) is MISS
    True
    >>> cache.put("0" * 64, {"cycles": 1234})
    >>> cache.get("0" * 64)
    {'cycles': 1234}
    >>> len(cache)
    1
    """

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Return the cached value for ``key``, or :data:`MISS`.

        Corrupt or truncated entries (e.g. from a killed writer on a
        filesystem without atomic rename) are removed and reported as
        misses rather than raised.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return MISS
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        with temporary.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temporary, path)
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; return the number removed.

        Also sweeps up orphaned temporary files a crashed writer may have
        left behind (they do not count towards the returned number).
        """
        removed = 0
        if not self.root.exists():
            return removed
        for entry in sorted(self.root.glob("*/*.pkl")):
            entry.unlink(missing_ok=True)
            removed += 1
        for orphan in self.root.glob("*/*.tmp.*"):
            orphan.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` has an entry on disk (does not touch stats)."""
        return self._path(key).exists()
