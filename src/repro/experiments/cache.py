"""Pluggable result-cache backends keyed by content-addressed spec hashes.

Results are stored under the spec's cache key (a SHA-256 digest over the
runner, its parameters, and the source of the runner's whole package —
see :mod:`repro.experiments.spec`).  Because the key covers the program
source, a cache entry can never serve stale results for edited simulation
code: the edit changes the key, the lookup misses, and the point is
recomputed.

Three backends implement the :class:`CacheBackend` protocol:

* :class:`ResultCache` — the on-disk pickle store (the default).  Writes
  are atomic (unique temporary file + :func:`os.replace`), so a crashed
  or killed run never leaves a truncated entry behind; unreadable entries
  are treated as misses and deleted.
* :class:`MemoryCache` — a bounded in-memory LRU for ephemeral runs and
  as the store behind a shared cache server.
* :class:`repro.experiments.distributed.cacheserver.CacheClient` — a
  client for a remote cache server, so distributed workers share one
  warm cache and never recompute each other's points.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

#: Sentinel returned by :meth:`CacheBackend.get` on a miss (``None`` is a
#: legitimate cached value, so a dedicated object is needed).
MISS = object()


@runtime_checkable
class CacheBackend(Protocol):
    """What the executor stack requires of a result cache.

    Any object with these two methods can back an
    :class:`~repro.experiments.executor.Executor`, a
    :class:`~repro.experiments.batch.BatchRunner` or a distributed
    worker: ``get`` returns the stored value or the module-level
    :data:`MISS` sentinel, ``put`` stores a value under a content hash
    (idempotently — two writers storing the same key must both succeed).
    """

    def get(self, key: str) -> Any:
        """Return the cached value for ``key``, or :data:`MISS`."""
        ...

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``."""
        ...


def default_cache_dir() -> Path:
    """The cache directory used when none is given explicitly.

    Honours ``REPRO_CACHE_DIR`` when set; otherwise falls back to
    ``~/.cache/repro/experiments`` (XDG-style).
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "experiments"


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache-backend instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_line(self) -> str:
        """One-line summary, e.g. ``"cache: 3 hits, 1 miss"``."""
        noun = "miss" if self.misses == 1 else "misses"
        return f"cache: {self.hits} hits, {self.misses} {noun}"


#: Process-wide counter that makes concurrent temporary-file names unique:
#: two threads of one process share a pid, so the pid alone is not enough
#: to keep their in-flight writes to the same key from colliding.
_temp_counter = itertools.count()


@dataclass
class ResultCache:
    """Content-addressed on-disk pickle store for experiment results.

    Parameters
    ----------
    root : Path or str, optional
        Directory holding the cache; created lazily on first store.
        Defaults to :func:`default_cache_dir`.

    Examples
    --------
    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp())
    >>> cache.get("0" * 64) is MISS
    True
    >>> cache.put("0" * 64, {"cycles": 1234})
    >>> cache.get("0" * 64)
    {'cycles': 1234}
    >>> len(cache)
    1
    """

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)
    #: Shard directories this instance has already created: ``put`` runs
    #: once per computed point, so re-``mkdir``-ing an existing directory
    #: on every store is pure hot-path overhead.
    _made_dirs: set = field(default_factory=set, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Return the cached value for ``key``, or :data:`MISS`.

        Corrupt or truncated entries (e.g. from a killed writer on a
        filesystem without atomic rename) are removed and reported as
        misses rather than raised.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return MISS
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically.

        Safe under concurrency from both threads and processes: the
        temporary file name carries the pid *and* a process-wide counter
        (two threads of one process share a pid), and the final
        :func:`os.replace` is atomic, so the last writer wins and readers
        only ever see complete entries.
        """
        path = self._path(key)
        parent = path.parent
        if str(parent) not in self._made_dirs:
            parent.mkdir(parents=True, exist_ok=True)
            self._made_dirs.add(str(parent))
        temporary = path.with_suffix(f".tmp.{os.getpid()}.{next(_temp_counter)}")
        try:
            with temporary.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, path)
        except FileNotFoundError:
            # A concurrent clear() removed the shard directory between the
            # memoised mkdir and the write; recreate it and retry once.
            parent.mkdir(parents=True, exist_ok=True)
            with temporary.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, path)
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; return the number removed.

        Also sweeps up orphaned temporary files a crashed writer may have
        left behind (they do not count towards the returned number).
        """
        removed = 0
        self._made_dirs.clear()
        if not self.root.exists():
            return removed
        for entry in sorted(self.root.glob("*/*.pkl")):
            entry.unlink(missing_ok=True)
            removed += 1
        for orphan in self.root.glob("*/*.tmp.*"):
            orphan.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` has an entry on disk (does not touch stats)."""
        return self._path(key).exists()


class MemoryCache:
    """Bounded in-memory LRU cache implementing :class:`CacheBackend`.

    The ephemeral counterpart of :class:`ResultCache`: nothing touches
    disk, eviction is least-recently-used once ``max_entries`` is
    reached.  Thread-safe — it is the default store behind
    :class:`repro.experiments.distributed.cacheserver.CacheServer`,
    whose connection handlers run in separate threads.

    Parameters
    ----------
    max_entries : int
        Capacity; storing beyond it evicts the least recently used
        entry.  Must be positive.

    Examples
    --------
    >>> cache = MemoryCache(max_entries=2)
    >>> cache.put("a" * 64, 1); cache.put("b" * 64, 2); cache.put("c" * 64, 3)
    >>> cache.get("a" * 64) is MISS  # evicted as least recently used
    True
    >>> cache.get("c" * 64)
    3
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Any:
        """Return the cached value for ``key``, or :data:`MISS`."""
        with self._lock:
            if key not in self._entries:
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self.stats.stores += 1

    def clear(self) -> int:
        """Drop every entry; return the number removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
        return removed

    def __len__(self) -> int:
        """Number of entries currently held."""
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` is currently held (does not touch stats)."""
        return key in self._entries
