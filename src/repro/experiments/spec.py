"""Experiment points: what to run, with which parameters, under which key.

An :class:`ExperimentSpec` is one point of a parameter sweep: a *runner*
(the dotted ``"module:function"`` path of a plain module-level function)
plus the keyword arguments it is called with.  Specs are plain data — they
carry no simulator state — so they can be pickled to worker processes and
hashed into stable cache keys.

The cache key of a spec (:attr:`ExperimentSpec.key`) is a SHA-256 digest of

* the runner path,
* the canonical JSON form of the parameters (``MemPoolConfig`` and any
  object exposing ``to_dict()`` are canonicalised through it), and
* a fingerprint of the *program*: the source of the runner's whole
  top-level package (the entire ``repro`` tree for the built-in
  experiments), since a point's result depends on the full simulator
  stack underneath it.

Hashing the program source means that editing the simulation code
invalidates previously cached results automatically — the cache is
content-addressed, never trusted across code changes.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Any, Callable, Mapping


def resolve_runner(runner: str) -> Callable[..., Any]:
    """Import and return the function named by a ``"module:function"`` path.

    Parameters
    ----------
    runner : str
        Dotted module path and function name separated by a colon, e.g.
        ``"repro.evaluation.fig5:simulate_fig5_point"``.  The function must
        be a module-level callable so worker processes can re-import it.

    Returns
    -------
    callable
        The resolved function.

    Raises
    ------
    ValueError
        If ``runner`` is not of the form ``"module:function"`` or the name
        does not resolve to a callable.

    Examples
    --------
    >>> resolve_runner("math:sqrt")(9.0)
    3.0
    """
    module_name, _, function_name = runner.partition(":")
    if not module_name or not function_name:
        raise ValueError(
            f"runner must look like 'package.module:function', got {runner!r}"
        )
    module = importlib.import_module(module_name)
    try:
        function = getattr(module, function_name)
    except AttributeError as error:
        raise ValueError(
            f"module {module_name!r} has no attribute {function_name!r}"
        ) from error
    if not callable(function):
        raise ValueError(f"{runner!r} resolved to a non-callable {function!r}")
    return function


#: Memo of package fingerprints: name -> (stat signature, digest).  Keyed
#: on every file's (path, mtime, size) rather than plain memoisation, so a
#: long-lived process (notebook, REPL) that edits source still gets a
#: fresh digest — only an unchanged tree reuses the cached hash.
_package_fingerprints: dict[str, tuple[tuple, str]] = {}


def _package_fingerprint(package_name: str) -> str:
    """SHA-256 over every ``.py`` source file of a package tree."""
    package = importlib.import_module(package_name)
    files = [
        path
        for root in getattr(package, "__path__", [])
        for path in sorted(Path(root).rglob("*.py"))
    ]
    signature = tuple(
        (str(path), stat.st_mtime_ns, stat.st_size)
        for path, stat in ((path, path.stat()) for path in files)
    )
    cached = _package_fingerprints.get(package_name)
    if cached is not None and cached[0] == signature:
        return cached[1]
    digest = hashlib.sha256()
    for path in files:
        digest.update(str(path).encode("utf-8"))
        digest.update(path.read_bytes())
    fingerprint = digest.hexdigest()
    _package_fingerprints[package_name] = (signature, fingerprint)
    return fingerprint


def program_fingerprint(runner: str) -> str:
    """SHA-256 digest of the *program* behind ``runner``.

    The fingerprint content-addresses the program half of a cache key.
    A point function's result depends on far more than its own module —
    the whole simulator executes underneath it — so the digest covers
    every source file of the runner's top-level package (for
    ``"repro.evaluation.fig7:..."`` that is the entire ``repro`` tree).
    Any edit anywhere in the package changes the fingerprint and thus
    invalidates cached results computed with the old code.  Runners from
    non-package modules hash that module's source; modules whose source
    is unavailable (builtins, frozen modules) fall back to hashing the
    runner path itself.
    """
    module_name = runner.partition(":")[0]
    top_package = module_name.partition(".")[0]
    try:
        if hasattr(importlib.import_module(top_package), "__path__"):
            return _package_fingerprint(top_package)
        source = inspect.getsource(importlib.import_module(module_name))
    except (OSError, TypeError):
        source = runner
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-serialisable primitives for hashing."""
    if hasattr(value, "to_dict"):
        return _canonical(value.to_dict())
    if isinstance(value, Mapping):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"experiment parameter of type {type(value).__name__} is not "
        f"hashable into a cache key: {value!r}"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding used for cache keys.

    Keys are sorted and separators fixed, so logically equal parameter
    mappings encode to the same byte string regardless of insertion order.

    Examples
    --------
    >>> canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    True
    """
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of a sweep: a runner and the keyword arguments to call it with.

    Parameters
    ----------
    runner : str
        ``"module:function"`` path of a module-level function.
    params : dict
        Keyword arguments passed to the runner.  Values must be JSON
        primitives, (nested) lists/dicts of primitives, or objects with a
        ``to_dict()`` method (e.g. :class:`repro.core.config.MemPoolConfig`).
    name : str
        Optional display name of the sweep the spec belongs to.

    Examples
    --------
    >>> spec = ExperimentSpec("repro.experiments.demo:multiply", {"a": 6, "b": 7})
    >>> spec.execute()
    42
    >>> len(spec.key)
    64
    """

    runner: str
    params: dict = field(default_factory=dict)
    name: str = ""

    @cached_property
    def key(self) -> str:
        """Stable cache key: SHA-256 over runner, params, and program source.

        Cached per instance (``cached_property`` writes straight into the
        instance ``__dict__``, bypassing the frozen-dataclass guard): the
        cache scan, the shard planner and every ``cache.put`` all read the
        key of the same spec, and the canonical-JSON + SHA-256 round trip
        is not free.  The key is a pure function of the spec and the
        source tree, so a cached copy travelling to a worker process in
        the spec's pickled ``__dict__`` stays correct.
        """
        payload = canonical_json(
            {
                "runner": self.runner,
                "params": self.params,
                "program": program_fingerprint(self.runner),
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable description used by progress output."""
        inside = ", ".join(f"{key}={value!r}" for key, value in self.params.items())
        prefix = self.name or self.runner.partition(":")[2]
        return f"{prefix}[{inside}]"

    def execute(self) -> Any:
        """Resolve the runner and call it with this spec's parameters."""
        return resolve_runner(self.runner)(**self.params)


def execute_spec(spec: ExperimentSpec) -> Any:
    """Module-level entry point used by worker processes.

    ``multiprocessing`` pickles this function by reference, so it must live
    at module scope; it simply delegates to :meth:`ExperimentSpec.execute`.
    """
    return spec.execute()
