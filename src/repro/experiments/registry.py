"""Registry of the paper's experiments, as sweeps the engine can run.

Each figure/table of the paper is registered as an
:class:`ExperimentDefinition`: a sweep builder (settings -> :class:`Sweep`)
plus an assembler that folds the per-point results back into the figure's
result object (which knows how to :meth:`report` itself).  The registry is
what both command-line entry points (``python -m repro.experiments`` and
``python -m repro.evaluation``) iterate over, and it is the natural place
to register new experiments as the reproduction grows.

This module imports :mod:`repro.evaluation`; the engine modules
(:mod:`~repro.experiments.spec`, :mod:`~repro.experiments.sweep`,
:mod:`~repro.experiments.executor`, :mod:`~repro.experiments.cache`) do
not, so there is no import cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.evaluation import (
    fig5,
    fig6,
    fig7,
    fig10,
    physical_tables,
    power_table,
    topologies,
    traces,
    workloads,
)
from repro.evaluation.settings import ExperimentSettings
from repro.experiments.executor import Executor
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import Sweep


@dataclass(frozen=True)
class ExperimentDefinition:
    """One registered experiment: how to build its sweep and fold results.

    Parameters
    ----------
    name : str
        Registry key (e.g. ``"fig7"``), also used on the command line.
    title : str
        One-line description shown by ``python -m repro.experiments list``.
    build_sweep : callable
        Maps :class:`ExperimentSettings` to the experiment's :class:`Sweep`.
    assemble : callable
        Maps ``(specs, results)`` to the figure's result object; the
        object must expose a ``report() -> str`` method.
    """

    name: str
    title: str
    build_sweep: Callable[[ExperimentSettings], Sweep]
    assemble: Callable[[list[ExperimentSpec], list[Any]], Any]

    def run(self, settings: ExperimentSettings, executor: Executor) -> Any:
        """Expand the sweep, run it on ``executor`` and assemble the result.

        With ``settings.engine == "batch"`` (or ``"compiled"``, whose
        batched variant runs the typed-array kernels) the executor is
        fronted by a :class:`~repro.experiments.batch.BatchRunner`, which
        advances compatible traffic points of the sweep as one batched
        engine group and leaves every other point (and the cache protocol)
        with the plain executor.  Executors that batch internally —
        :class:`repro.experiments.distributed.DistributedExecutor` cuts
        its shards along the same batch-group boundaries and packs them
        worker-side — declare ``handles_batching`` and are never wrapped.

        Examples
        --------
        >>> from repro.experiments.registry import EXPERIMENTS
        >>> definition = EXPERIMENTS["fig10"]
        >>> result = definition.run(ExperimentSettings(), Executor())
        >>> "Figure 10" in result.report()
        True
        """
        specs = self.build_sweep(settings).specs()
        if getattr(executor, "handles_batching", False):
            results = executor.run(specs)
        elif settings.engine in ("batch", "compiled"):
            from repro.experiments.batch import BatchRunner

            runner = BatchRunner(executor)
            results = runner.run(specs)
            # Surface the batched run's counters where CLI callers read
            # them (they print ``executor.last_report``).
            executor.last_report = runner.last_report
        else:
            results = executor.run(specs)
        return self.assemble(specs, results)


def resolve_selection(names: Sequence[str]) -> tuple[list[str], str | None]:
    """Validate a CLI experiment selection against the registry.

    Parameters
    ----------
    names : sequence of str
        The names the user asked for; empty selects every experiment.

    Returns
    -------
    selected : list of str
        The validated selection (empty on error).
    error : str or None
        A printable error message naming the unknown experiments, or
        ``None`` when the selection is valid.

    Examples
    --------
    >>> resolve_selection(["fig10"])
    (['fig10'], None)
    >>> selected, error = resolve_selection(["nope"])
    >>> error.splitlines()[0]
    'unknown experiments: nope'
    """
    selected = list(names) or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        return [], (
            f"unknown experiments: {', '.join(unknown)}\n"
            f"available: {', '.join(EXPERIMENTS)}"
        )
    return selected, None


def run_experiments(
    selected: Sequence[str],
    settings: ExperimentSettings,
    executor: Executor,
) -> Iterator[tuple[str, Any, float]]:
    """Run experiments one by one, yielding ``(name, result, elapsed_s)``.

    The shared run loop of both command-line front-ends
    (``python -m repro.experiments`` and ``python -m repro.evaluation``);
    each caller formats the yielded results its own way.
    """
    for name in selected:
        start = time.perf_counter()
        result = EXPERIMENTS[name].run(settings, executor)
        yield name, result, time.perf_counter() - start


#: Every experiment of the paper, keyed by its CLI name.
EXPERIMENTS: dict[str, ExperimentDefinition] = {
    "fig5": ExperimentDefinition(
        name="fig5",
        title="throughput/latency of Top1/Top4/TopH vs injected load",
        build_sweep=fig5.fig5_sweep,
        assemble=fig5.assemble_fig5,
    ),
    "fig6": ExperimentDefinition(
        name="fig6",
        title="TopH under the hybrid addressing scheme (p_local sweep)",
        build_sweep=fig6.fig6_sweep,
        assemble=fig6.assemble_fig6,
    ),
    "fig7": ExperimentDefinition(
        name="fig7",
        title="benchmark performance relative to the ideal crossbar",
        build_sweep=fig7.fig7_sweep,
        assemble=fig7.assemble_fig7,
    ),
    "fig10": ExperimentDefinition(
        name="fig10",
        title="energy per instruction of the TopH tile",
        build_sweep=fig10.fig10_sweep,
        assemble=fig10.assemble_fig10,
    ),
    "power": ExperimentDefinition(
        name="power",
        title="tile/cluster power while running matmul (Section VI-D)",
        build_sweep=power_table.power_sweep,
        assemble=power_table.assemble_power,
    ),
    "physical": ExperimentDefinition(
        name="physical",
        title="tile/cluster area, timing and congestion (Sections VI-B/C)",
        build_sweep=physical_tables.physical_sweep,
        assemble=physical_tables.assemble_physical,
    ),
    "workloads": ExperimentDefinition(
        name="workloads",
        title="workload catalogue: every pattern x injector on one topology",
        build_sweep=workloads.workloads_sweep,
        assemble=workloads.assemble_workloads,
    ),
    "topologies": ExperimentDefinition(
        name="topologies",
        title="topology catalogue: every registered family at one load",
        build_sweep=topologies.topologies_sweep,
        assemble=topologies.assemble_topologies,
    ),
    "traces": ExperimentDefinition(
        name="traces",
        title="trace catalogue: one recorded trace replayed per topology family",
        build_sweep=traces.traces_sweep,
        assemble=traces.assemble_traces,
    ),
}
