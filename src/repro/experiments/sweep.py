"""Parameter-grid expansion: from a grid description to experiment specs.

A :class:`Sweep` describes a full factorial sweep over a parameter grid.
It pairs a runner (see :mod:`repro.experiments.spec`) with *base*
parameters shared by every point and a *grid* mapping parameter names to
the sequences of values to sweep.  Expansion is deterministic: the first
grid key varies slowest (outermost loop), the last key varies fastest —
the same order the seed evaluation scripts used for their nested loops.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.experiments.spec import ExperimentSpec


@dataclass(frozen=True)
class Sweep:
    """A full factorial parameter sweep over one runner.

    Parameters
    ----------
    runner : str
        ``"module:function"`` path of the point function.
    grid : Mapping[str, Sequence]
        Parameter names mapped to the values to sweep.  The cartesian
        product of the value sequences is taken in key order (first key
        outermost).  An empty grid yields exactly one spec (the base
        parameters alone).
    base : Mapping
        Parameters shared by every point (e.g. seeds and scale knobs).
    name : str
        Display name used by the CLI and by spec labels.

    Examples
    --------
    >>> sweep = Sweep(
    ...     runner="repro.experiments.demo:multiply",
    ...     grid={"a": (4, 6), "b": (2, 3)},
    ...     name="multiply-demo",
    ... )
    >>> sweep.size
    4
    >>> [spec.params for spec in sweep.specs()]  # doctest: +NORMALIZE_WHITESPACE
    [{'a': 4, 'b': 2}, {'a': 4, 'b': 3}, {'a': 6, 'b': 2}, {'a': 6, 'b': 3}]
    """

    runner: str
    grid: Mapping[str, Sequence] = field(default_factory=dict)
    base: Mapping = field(default_factory=dict)
    name: str = ""

    @property
    def size(self) -> int:
        """Number of points the grid expands to."""
        product = 1
        for values in self.grid.values():
            product *= len(values)
        return product

    def specs(self) -> list[ExperimentSpec]:
        """Expand the grid into one :class:`ExperimentSpec` per point.

        Returns
        -------
        list of ExperimentSpec
            ``size`` specs in deterministic order: the first grid key is
            the outermost loop, the last the innermost.
        """
        keys = list(self.grid)
        combos = itertools.product(*(self.grid[key] for key in keys))
        return [
            ExperimentSpec(
                runner=self.runner,
                params={**dict(self.base), **dict(zip(keys, combo))},
                name=self.name,
            )
            for combo in combos
        ]

    def __iter__(self) -> Iterator[ExperimentSpec]:
        """Iterate over the expanded specs (same order as :meth:`specs`)."""
        return iter(self.specs())

    def __len__(self) -> int:
        """Alias of :attr:`size` so ``len(sweep)`` works."""
        return self.size
