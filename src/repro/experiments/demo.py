"""Tiny arithmetic point functions for doctests, tests and first contact.

Real experiments register point functions the same way (module-level,
keyword-only, picklable arguments); these exist so the engine can be
demonstrated without running a simulation.
"""

from __future__ import annotations


def multiply(*, a: float, b: float = 1.0) -> float:
    """Return ``a * b``.

    Examples
    --------
    >>> multiply(a=6, b=7)
    42
    """
    return a * b


def power(*, base: float, exponent: int = 2) -> float:
    """Return ``base ** exponent``.

    Examples
    --------
    >>> power(base=3)
    9
    """
    return base**exponent
