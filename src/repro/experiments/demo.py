"""Tiny arithmetic point functions for doctests, tests and first contact.

Real experiments register point functions the same way (module-level,
keyword-only, picklable arguments); these exist so the engine can be
demonstrated without running a simulation.
"""

from __future__ import annotations


def multiply(*, a: float, b: float = 1.0) -> float:
    """Return ``a * b``.

    Examples
    --------
    >>> multiply(a=6, b=7)
    42
    """
    return a * b


def power(*, base: float, exponent: int = 2) -> float:
    """Return ``base ** exponent``.

    Examples
    --------
    >>> power(base=3)
    9
    """
    return base**exponent


def slow_multiply(*, a: float, b: float = 1.0, delay_s: float = 0.0) -> float:
    """Return ``a * b`` after sleeping ``delay_s`` seconds.

    Exists for the scheduling tests: a deliberately slow point exposes
    head-of-line blocking (a fast point finishing behind a slow one must
    still report progress first) and gives the lease/steal machinery
    something worth stealing.

    Examples
    --------
    >>> slow_multiply(a=6, b=7)
    42
    """
    import time

    if delay_s:
        time.sleep(delay_s)
    return a * b


def crash_once(*, flag_path: str, a: float, b: float = 1.0) -> float:
    """Return ``a * b`` — but SIGKILL the process on the first-ever call.

    The crash-recovery tests run this through a distributed worker: the
    first process to execute the point creates ``flag_path`` and kills
    itself mid-shard (no exception, no cleanup — exactly like an OOM
    kill), so the shard's lease expires and the scheduler requeues it.
    The retry sees the flag file and completes normally, proving the
    requeue lost no results and duplicated none.
    """
    import os
    import signal
    from pathlib import Path

    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return a * b
