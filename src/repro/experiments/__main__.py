"""Command-line interface of the experiment-orchestration engine.

Usage::

    python -m repro.experiments run                 # every experiment, serial
    python -m repro.experiments run fig5 fig7 -w 8  # two sweeps on 8 workers
    python -m repro.experiments run --no-cache      # force recomputation
    python -m repro.experiments run --dispatch -w 4 # 4 work-stealing workers
    python -m repro.experiments run --dispatch --workers node1:2,node2:7700:4
    python -m repro.experiments worker --port 7653  # serve shards over TCP
    python -m repro.experiments serve --port 7654   # HTTP sweep service
    python -m repro.experiments run fig5 --pattern tornado --injector bursty
    python -m repro.experiments run workloads --engine vector  # full catalogue
    python -m repro.experiments run topologies      # every topology family
    python -m repro.experiments run workloads --topology mesh:width=8,height=2
    python -m repro.experiments run traces --trace my.trace.gz --energy
    python -m repro.experiments trace record t.trace.gz --pattern tornado
    python -m repro.experiments trace info t.trace.gz
    python -m repro.experiments trace replay t.trace.gz mesh torus
    python -m repro.experiments list                # registered experiments
    python -m repro.experiments workloads           # workload catalogue
    python -m repro.experiments topologies          # topology catalogue
    python -m repro.experiments validate            # check golden bands
    python -m repro.experiments validate --update   # re-commit the goldens
    python -m repro.experiments clean               # drop the result cache

``run`` executes the selected experiments through the shared
:class:`~repro.experiments.executor.Executor` — all points of all selected
sweeps go through one process pool — and prints each figure's textual
report plus a cache/timing summary.  Results are cached on disk (see
:mod:`repro.experiments.cache`), so a warm re-run is near-instant; cache
keys cover the simulation source code, so edits invalidate entries
automatically.
"""

from __future__ import annotations

import argparse

from repro.core.cluster import ENGINES
from repro.evaluation.settings import ExperimentSettings
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.executor import Executor
from repro.experiments.registry import (
    EXPERIMENTS,
    resolve_selection,
    run_experiments,
)
from repro.workloads import (
    available_injectors,
    available_patterns,
    injector_catalogue,
    pattern_catalogue,
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments through the sweep engine.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"names to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    run.add_argument(
        "-w",
        "--workers",
        default="1",
        help="worker processes (1 = serial, 0 = all CPUs); with "
             "--dispatch also accepts a fleet spec like "
             "'node1:2,node2:7700:4' mixing forked local workers and "
             "TCP connections to `python -m repro.experiments worker` "
             "servers",
    )
    run.add_argument(
        "--dispatch",
        action="store_true",
        help="distribute the sweep over a work-stealing shard scheduler "
             "(see --workers, --lease, --shard-points); results are "
             "identical to a serial run",
    )
    run.add_argument(
        "--lease",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="shard lease: a worker silent this long is presumed dead "
             "and its shards are requeued (default: 30)",
    )
    run.add_argument(
        "--shard-points",
        type=int,
        default=None,
        metavar="N",
        help="max sweep points per shard (default: keep batch groups "
             "whole for batching engines, else ~4 shards per worker)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: {default_cache_dir()})",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="use the full 256-core cluster (like MEMPOOL_FULL=1)",
    )
    run.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="timing engine for the simulating experiments (default: "
             "MEMPOOL_ENGINE or 'legacy'; 'vector' is the faster "
             "structure-of-arrays engine, 'batch' additionally advances "
             "compatible traffic points as one SimBatch, 'compiled' runs "
             "the ring-buffer kernel engine, JIT-compiled when numba is "
             "installed — results are identical for all four)",
    )
    run.add_argument(
        "--pattern",
        choices=available_patterns(),
        default=None,
        help="destination pattern of the synthetic-traffic experiments "
             "(default: MEMPOOL_PATTERN or 'uniform'; fig6 always runs "
             "its own local_biased sweep)",
    )
    run.add_argument(
        "--injector",
        choices=available_injectors(),
        default=None,
        help="injection process of the synthetic-traffic experiments "
             "(default: MEMPOOL_INJECTOR or 'poisson')",
    )
    run.add_argument(
        "--topology",
        metavar="NAME[:K=V,...]",
        default=None,
        help="topology of the single-topology experiments (the workload "
             "catalogue), as a topology registry name with optional "
             "parameters, e.g. 'mesh:width=8,height=2' (default: "
             "MEMPOOL_TOPOLOGY or 'toph'; figure sweeps keep their own "
             "topology axes)",
    )
    run.add_argument(
        "--energy",
        action="store_true",
        help="attach the Figure 10 wire-energy summary to every traffic "
             "result (like MEMPOOL_ENERGY=1; the traces catalogue always "
             "reports energy)",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace file the traces experiment replays (like "
             "MEMPOOL_TRACE; default: a small deterministic recording "
             "made on first use)",
    )

    trace = commands.add_parser(
        "trace",
        help="record, inspect and replay flit traces",
        description="Work with the versioned trace format of "
                    "repro.workloads.trace: `record` captures a "
                    "synthetic-traffic run as a replayable trace file, "
                    "`info` prints (and verifies) a trace's header, and "
                    "`replay` runs the trace across topology families and "
                    "prints latency, throughput and energy per family.",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_commands.add_parser(
        "record", help="record a synthetic-traffic run as a trace file"
    )
    record.add_argument("path", help="output trace file (e.g. run.trace.gz)")
    record.add_argument(
        "--topology",
        metavar="NAME[:K=V,...]",
        default=None,
        help="topology to record on (default: MEMPOOL_TOPOLOGY or 'toph')",
    )
    record.add_argument(
        "--pattern",
        choices=available_patterns(),
        default=None,
        help="destination pattern (default: MEMPOOL_PATTERN or 'uniform')",
    )
    record.add_argument(
        "--injector",
        choices=available_injectors(),
        default=None,
        help="injection process (default: MEMPOOL_INJECTOR or 'poisson')",
    )
    record.add_argument(
        "--load",
        type=float,
        default=None,
        help="offered load in requests/core/cycle (default: 0.25)",
    )
    record.add_argument(
        "--warmup",
        type=int,
        default=None,
        metavar="CYCLES",
        help="warmup cycles before the recorded window (default: 50)",
    )
    record.add_argument(
        "--measure",
        type=int,
        default=None,
        metavar="CYCLES",
        help="recorded measurement cycles (default: 200)",
    )
    record.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload RNG seed (default: 0)",
    )
    record.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="engine used for the recording run (the recorded bytes are "
             "engine-independent)",
    )
    record.add_argument(
        "--full",
        action="store_true",
        help="record on the full 256-core cluster (like MEMPOOL_FULL=1)",
    )
    record.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing trace file (refused otherwise)",
    )

    info = trace_commands.add_parser(
        "info", help="print and verify a trace file's header"
    )
    info.add_argument("path", help="trace file to inspect")

    replay = trace_commands.add_parser(
        "replay", help="replay a trace across topology families"
    )
    replay.add_argument("path", help="trace file to replay")
    replay.add_argument(
        "topologies",
        nargs="*",
        metavar="TOPOLOGY",
        help="topology families to replay on (default: the six "
             "parameterized families)",
    )
    replay.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="timing engine of the replay (results are engine-identical)",
    )
    replay.add_argument(
        "--full",
        action="store_true",
        help="replay on the full 256-core cluster (the trace must have "
             "been recorded at that scale)",
    )
    replay.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    replay.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: {default_cache_dir()})",
    )

    worker = commands.add_parser(
        "worker",
        help="serve shards to a dispatching run over TCP",
        description="Run a worker server for `run --dispatch --workers "
                    "host:n,...`: each dispatcher connection is served by "
                    "its own forked process, so n connections give n "
                    "parallel executors on this host.",
    )
    worker.add_argument(
        "--host",
        default="0.0.0.0",
        help="bind address (default: 0.0.0.0)",
    )
    worker.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: 7653; 0 picks an ephemeral port, "
             "printed on startup)",
    )
    worker.add_argument(
        "--cache",
        default=None,
        metavar="SPEC",
        help="worker-side cache backend: none, disk[:dir], "
             "memory[:entries] or tcp://host:port (default: adopt the "
             "dispatcher's shared cache server)",
    )

    serve = commands.add_parser(
        "serve",
        help="serve sweeps over HTTP (submit, stream progress, fetch results)",
        description="Run the sweep service: POST /sweeps submits an "
                    "experiment or raw sweep (deduplicated by "
                    "content-addressed cache keys), GET /sweeps/{id}/events "
                    "streams NDJSON progress, GET /results/{key} serves "
                    "pickled results by content hash.  See "
                    "docs/architecture.md for the endpoint table.",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1; 0.0.0.0 to serve remotely)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: 7654; 0 picks an ephemeral port, "
             "printed on startup)",
    )
    serve.add_argument(
        "-w",
        "--workers",
        default="1",
        help="per-job executor fleet: 1 = in-thread serial, an integer "
             "forks that many local workers per job, and a fleet spec "
             "like 'node1:2,node2:7700:4' fronts remote "
             "`python -m repro.experiments worker` servers",
    )
    serve.add_argument(
        "--cache",
        default="disk",
        metavar="SPEC",
        help="result cache backend: none, disk[:dir], memory[:entries] "
             "or tcp://host:port (default: disk — submissions are "
             "deduplicated against it and /results serves from it)",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=2,
        metavar="N",
        help="how many jobs may run concurrently (default: 2); queued "
             "jobs start shortest-expected-work first",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="how long finished jobs stay listed (default: 3600); "
             "their results stay in the cache either way",
    )

    commands.add_parser("list", help="list the registered experiments")
    commands.add_parser(
        "workloads", help="list the registered workload patterns and injectors"
    )
    commands.add_parser(
        "topologies", help="list the registered interconnect topology families"
    )

    validate = commands.add_parser(
        "validate",
        help="validate results against the committed golden bands",
        description="Re-measure every golden case over its seed batch and "
                    "classify each metric's deviation into severity bands "
                    "(see repro.validation).",
    )
    validate.add_argument(
        "--golden",
        default=None,
        help="golden file to validate against (default: "
             "benchmarks/GOLDEN_validation.json)",
    )
    validate.add_argument(
        "--update",
        action="store_true",
        help="re-measure the default corpus and overwrite the golden file "
             "instead of validating",
    )
    validate.add_argument(
        "--report",
        default=None,
        help="where to write the JSON report (default: "
             "benchmarks/VALIDATION_report.json; 'none' skips it)",
    )
    validate.add_argument(
        "--bands",
        default=None,
        metavar="OK,MINOR,MODERATE,SEVERE",
        help="override the four band edges, e.g. '0.01,0.03,0.08,0.2'",
    )
    validate.add_argument(
        "--warn-from",
        default=None,
        metavar="SEVERITY",
        help="first severity that warns (default: from the golden file)",
    )
    validate.add_argument(
        "--reject-from",
        default=None,
        metavar="SEVERITY",
        help="first severity that rejects (default: from the golden file)",
    )

    clean = commands.add_parser("clean", help="delete every cached result")
    clean.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: {default_cache_dir()})",
    )
    return parser


def _command_list() -> int:
    for name, definition in EXPERIMENTS.items():
        settings = ExperimentSettings()
        size = definition.build_sweep(settings).size
        plural = "point" if size == 1 else "points"
        print(f"{name:<10} {size:>3} {plural}  {definition.title}")
    return 0


def _command_workloads() -> int:
    print("destination patterns:")
    for entry in pattern_catalogue():
        knobs = ", ".join(sorted(entry.params)) or "-"
        print(f"  {entry.name:<16} {entry.summary}  [knobs: {knobs}]")
    print("injection processes:")
    for entry in injector_catalogue():
        knobs = ", ".join(sorted(entry.params)) or "-"
        print(f"  {entry.name:<16} {entry.summary}  [knobs: {knobs}]")
    return 0


def _command_topologies() -> int:
    from repro.topologies import topology_catalogue

    print("interconnect topologies:")
    for entry in topology_catalogue():
        knobs = ", ".join(sorted(entry.params)) or "-"
        print(f"  {entry.name:<16} {entry.summary}  [knobs: {knobs}]")
    return 0


def _trace_record(args: argparse.Namespace) -> int:
    from repro.core.cluster import MemPoolCluster
    from repro.evaluation.traces import (
        DEFAULT_TRACE_LOAD,
        DEFAULT_TRACE_MEASURE,
        DEFAULT_TRACE_WARMUP,
    )
    from repro.traffic import TrafficSimulation
    from repro.workloads.trace import record_trace

    overrides = {}
    if args.full:
        overrides["full_scale"] = True
    for key in ("engine", "pattern", "injector", "topology"):
        value = getattr(args, key)
        if value:
            overrides[key] = value
    if args.seed is not None:
        overrides["seed"] = args.seed
    overrides["warmup_cycles"] = (
        DEFAULT_TRACE_WARMUP if args.warmup is None else args.warmup
    )
    overrides["measure_cycles"] = (
        DEFAULT_TRACE_MEASURE if args.measure is None else args.measure
    )
    try:
        settings = ExperimentSettings(**overrides)
        settings.probe_topology()
    except ValueError as error:
        print(error)
        return 1
    load = DEFAULT_TRACE_LOAD if args.load is None else args.load
    config = settings.config(
        settings.topology, topology_params=settings.topology_params
    )
    cluster = MemPoolCluster(config, engine=settings.engine)
    try:
        simulation = TrafficSimulation(
            cluster,
            load,
            pattern=settings.pattern,
            injector=settings.injector,
            seed=settings.seed,
        )
    except ValueError as error:
        # e.g. --pattern trace: replay components need a source trace.
        print(error)
        return 1
    result = simulation.run(
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
        record_flits=True,
    )
    try:
        sha = record_trace(
            result,
            config,
            args.path,
            meta={
                "source": "cli",
                "topology": settings.topology,
                "pattern": settings.pattern,
                "injector": settings.injector,
                "load": load,
                "seed": settings.seed,
            },
            force=args.force,
        )
    except FileExistsError as error:
        print(error)
        return 1
    print(
        f"recorded {len(result.flit_log)} requests "
        f"({settings.pattern} x {settings.injector} at load {load:g} on "
        f"{settings.topology}, {settings.scale_label}) to {args.path}"
    )
    print(f"sha256 {sha}")
    return 0


def _trace_info(path: str) -> int:
    from repro.workloads.trace import (
        TRACE_FORMAT,
        TRACE_VERSION,
        TraceFormatError,
        load_trace,
    )

    try:
        trace = load_trace(path)
    except (OSError, TraceFormatError) as error:
        print(error)
        return 1
    print(f"trace {path}")
    print(f"  format       {TRACE_FORMAT} v{TRACE_VERSION} (payload verified)")
    print(f"  sha256       {trace.sha256}")
    print(f"  cluster      {trace.num_cores} cores, {trace.num_banks} banks")
    print(f"  records      {trace.num_records} over {trace.cycles} cycles")
    print(f"  mean load    {trace.mean_rate:.6f} requests/core/cycle")
    for key in sorted(trace.meta):
        print(f"  meta.{key:<12} {trace.meta[key]}")
    return 0


def _trace_replay(args: argparse.Namespace) -> int:
    from repro.evaluation import traces as traces_module
    from repro.workloads.trace import TraceFormatError

    overrides: dict = {"trace": args.path}
    if args.engine:
        overrides["engine"] = args.engine
    if args.full:
        overrides["full_scale"] = True
    try:
        settings = ExperimentSettings(**overrides)
    except ValueError as error:
        print(error)
        return 1
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    topologies = (
        tuple(args.topologies) or traces_module.DEFAULT_TRACE_TOPOLOGIES
    )
    try:
        result = traces_module.run_traces(
            settings, topologies=topologies, executor=Executor(cache=cache)
        )
    except (OSError, TraceFormatError, ValueError) as error:
        # Missing/corrupt trace files and unknown topology names both
        # fail here with their own messages, before/while points run.
        print(error)
        return 1
    print(result.report())
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _trace_record(args)
    if args.trace_command == "info":
        return _trace_info(args.path)
    return _trace_replay(args)


def _command_clean(cache_dir: str | None) -> int:
    cache = ResultCache(cache_dir or default_cache_dir())
    removed = cache.clear()
    print(f"removed {removed} cached result{'s' if removed != 1 else ''} "
          f"from {cache.root}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.validation import (
        GOLDEN_PATH,
        REPORT_PATH,
        BandPolicy,
        validate_goldens,
        write_goldens,
    )

    golden_path = Path(args.golden) if args.golden else GOLDEN_PATH
    try:
        if args.update:
            policy = None
            if args.bands or args.warn_from or args.reject_from:
                policy = BandPolicy.from_spec(
                    args.bands, args.warn_from, args.reject_from
                )
            document = write_goldens(golden_path, policy=policy)
            print(
                f"committed {len(document['cases'])} golden cases to "
                f"{golden_path}"
            )
            return 0
        policy = None
        if args.bands or args.warn_from or args.reject_from:
            # Partial overrides fall back to the defaults of BandPolicy —
            # load the file's policy first so unspecified knobs keep it.
            from repro.validation import load_goldens

            _, file_policy = load_goldens(golden_path)
            base = file_policy.to_dict()
            override = BandPolicy.from_spec(
                args.bands, args.warn_from, args.reject_from
            ).to_dict()
            if args.bands is None:
                override["bands"] = base["bands"]
            if args.warn_from is None:
                override["warn_from"] = base["warn_from"]
            if args.reject_from is None:
                override["reject_from"] = base["reject_from"]
            policy = BandPolicy.from_dict(override)
        report = validate_goldens(golden_path, policy=policy)
    except ValueError as error:
        print(error)
        return 1
    print(report.report())
    if args.report != "none":
        report_path = Path(args.report) if args.report else REPORT_PATH
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {report_path}")
    return report.exit_code


def _command_run(args: argparse.Namespace) -> int:
    selected, error = resolve_selection(args.experiments)
    if error:
        print(error)
        return 1
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.dispatch:
        from repro.experiments.distributed import DistributedExecutor

        try:
            executor = DistributedExecutor(
                workers=args.workers,
                cache=cache,
                lease_s=args.lease,
                max_points=args.shard_points,
            )
        except ValueError as error:
            print(error)
            return 1
    else:
        try:
            worker_count = int(args.workers)
        except ValueError:
            print(
                f"--workers {args.workers!r} is a fleet spec; add --dispatch "
                "to distribute the run (plain runs take an integer count)"
            )
            return 1
        executor = Executor(workers=worker_count, cache=cache)
    # --full forces the paper scale; otherwise MEMPOOL_FULL still decides.
    # --engine likewise overrides MEMPOOL_ENGINE.
    overrides = {}
    if args.full:
        overrides["full_scale"] = True
    if args.engine:
        overrides["engine"] = args.engine
    if args.pattern:
        overrides["pattern"] = args.pattern
    if args.injector:
        overrides["injector"] = args.injector
    if args.topology:
        overrides["topology"] = args.topology
    if args.energy:
        overrides["energy"] = True
    if args.trace:
        overrides["trace"] = args.trace
    try:
        settings = ExperimentSettings(**overrides)
        # Probe unconditionally: the selection may also come from
        # MEMPOOL_TOPOLOGY, and structural errors (a mesh that does not
        # tile the cluster) only surface when the family is built.
        settings.probe_topology()
    except ValueError as error:
        # A typo'd --topology spec fails here, before any sweep expands.
        print(error)
        return 1
    print(f"MemPool reproduction — experiment scale: {settings.scale_label}\n")
    for name, result, _elapsed in run_experiments(selected, settings, executor):
        print(f"=== {name} ({executor.last_report.summary()}) ===")
        for line in executor.last_report.worker_lines():
            print(f"    {line}")
        print(result.report())
        print()
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from repro.experiments.distributed import (
        DEFAULT_PORT,
        WorkerServer,
        parse_cache_spec,
    )

    try:
        # Validate the spec now, at startup; the serving processes re-parse
        # it per connection (live backends must not cross the fork).
        parse_cache_spec(args.cache)
    except ValueError as error:
        print(error)
        return 1
    port = DEFAULT_PORT if args.port is None else args.port
    try:
        server = WorkerServer(host=args.host, port=port, cache_spec=args.cache)
    except OSError as error:
        print(f"cannot bind {args.host}:{port}: {error}")
        return 1
    print(f"worker serving shards on {args.host}:{server.port} "
          f"(cache: {args.cache or 'dispatcher-shared'}); Ctrl-C to stop",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("stopping")
    finally:
        server.stop()
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.experiments.distributed import parse_cache_spec, parse_workers
    from repro.service import DEFAULT_SERVICE_PORT, DEFAULT_TTL_S, SweepService

    try:
        # Validate both specs now, at startup, with CLI-grade messages.
        parse_workers(args.workers)
        cache = parse_cache_spec(args.cache)
    except ValueError as error:
        print(error)
        return 1
    port = DEFAULT_SERVICE_PORT if args.port is None else args.port
    ttl_s = DEFAULT_TTL_S if args.ttl is None else args.ttl
    service = SweepService(
        host=args.host,
        port=port,
        workers=args.workers,
        cache=cache,
        max_jobs=args.max_jobs,
        ttl_s=ttl_s,
    )
    try:
        service.start()
    except OSError as error:
        print(f"cannot bind {args.host}:{port}: {error}")
        return 1
    print(
        f"sweep service on http://{args.host}:{service.port} "
        f"(workers: {args.workers}, cache: {args.cache}, "
        f"max jobs: {args.max_jobs}); Ctrl-C to stop",
        flush=True,
    )
    try:
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        print("stopping")
    finally:
        service.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Examples
    --------
    >>> main(["list"])  # doctest: +ELLIPSIS
    fig5...
    0
    """
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "workloads":
        return _command_workloads()
    if args.command == "topologies":
        return _command_topologies()
    if args.command == "validate":
        return _command_validate(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "clean":
        return _command_clean(args.cache_dir)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "serve":
        return _command_serve(args)
    return _command_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
