"""Parallel experiment orchestration: sweeps, process pools, result caching.

The seed reproduced each figure of the paper with its own hand-rolled
nested loop.  This package replaces those loops with one engine:

* :class:`~repro.experiments.sweep.Sweep` expands a parameter grid into
  :class:`~repro.experiments.spec.ExperimentSpec` points (a runner path
  plus picklable keyword arguments);
* :class:`~repro.experiments.executor.Executor` runs the points — serially
  for ``workers=1``, across a ``multiprocessing`` pool otherwise — and
  returns the results in sweep order;
* :class:`~repro.experiments.cache.ResultCache` memoises results on disk
  under a content hash of the configuration *and* the program source, so
  re-running an unchanged sweep is near-instant while any code edit
  transparently invalidates stale entries;
* :class:`~repro.experiments.batch.BatchRunner` (selected by
  ``--engine batch`` / ``MEMPOOL_ENGINE=batch``) groups compatible
  open-loop traffic points of a sweep and advances each group as one
  :class:`repro.engine.batch.SimBatch`, amortising per-point overhead
  while remaining flit-for-flit identical to per-point execution;
* :class:`~repro.experiments.distributed.DistributedExecutor`
  (``--dispatch``) shards sweeps along the same batch-group boundaries
  and executes them on a work-stealing fleet of local processes and/or
  remote TCP workers, all sharing one content-addressed cache.

Every figure/table driver in :mod:`repro.evaluation` goes through this
engine; the registry of those drivers lives in
:mod:`repro.experiments.registry`, and ``python -m repro.experiments``
exposes ``run`` / ``list`` / ``clean`` on the command line.

Examples
--------
>>> from repro.experiments import Sweep, Executor
>>> sweep = Sweep("repro.experiments.demo:multiply",
...               grid={"a": (4, 9)}, base={"b": 6})
>>> Executor(workers=1).run(sweep)
[24, 54]
"""

from repro.experiments.batch import (
    BATCHABLE_RUNNERS,
    BatchRunner,
    TrafficAdapter,
    plan_batches,
    spec_group_key,
)
from repro.experiments.cache import (
    MISS,
    CacheBackend,
    CacheStats,
    MemoryCache,
    ResultCache,
    default_cache_dir,
)
from repro.experiments.executor import ExecutionReport, Executor, run_sweep
from repro.experiments.spec import (
    ExperimentSpec,
    canonical_json,
    execute_spec,
    program_fingerprint,
    resolve_runner,
)
from repro.experiments.sweep import Sweep

__all__ = [
    "MISS",
    "BATCHABLE_RUNNERS",
    "BatchRunner",
    "plan_batches",
    "spec_group_key",
    "TrafficAdapter",
    "CacheBackend",
    "CacheStats",
    "MemoryCache",
    "ResultCache",
    "default_cache_dir",
    "ExecutionReport",
    "Executor",
    "run_sweep",
    "ExperimentSpec",
    "canonical_json",
    "execute_spec",
    "program_fingerprint",
    "resolve_runner",
    "Sweep",
]
