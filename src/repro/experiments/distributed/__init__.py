"""Distributed sweep execution: shard scheduling, worker transport, cache sharing.

This package turns the single-host sweep engine into a horizontally
scalable one while keeping every result bit-identical to a serial run:

* :mod:`~repro.experiments.distributed.shards` — cut a sweep's cache
  misses into batch-group-aligned work units;
* :mod:`~repro.experiments.distributed.scheduler` — lease shards to
  workers with work stealing, heartbeats, and crash requeue;
* :mod:`~repro.experiments.distributed.transport` — length-prefixed
  pickle framing over pipes (forked local workers) and TCP (remote
  ``python -m repro.experiments worker`` servers);
* :mod:`~repro.experiments.distributed.worker` — the worker loop and
  the TCP worker server;
* :mod:`~repro.experiments.distributed.cacheserver` — the shared cache
  service and client, so all workers reuse one warm result cache;
* :mod:`~repro.experiments.distributed.dispatcher` — the
  :class:`DistributedExecutor` front-end that ties it all together
  behind the familiar executor contract.

Examples
--------
>>> from repro.experiments import Sweep
>>> from repro.experiments.distributed import DistributedExecutor
>>> sweep = Sweep("repro.experiments.demo:multiply",
...               grid={"a": (2, 3, 4)}, base={"b": 5})
>>> DistributedExecutor(workers=2).run(sweep.specs())
[10, 15, 20]
"""

from repro.experiments.distributed.cacheserver import (
    CacheClient,
    CacheServer,
    parse_cache_spec,
)
from repro.experiments.distributed.dispatcher import (
    DistributedExecutor,
    ShardExecutionError,
)
from repro.experiments.distributed.scheduler import Lease, ShardScheduler
from repro.experiments.distributed.shards import Shard, plan_shards
from repro.experiments.distributed.transport import (
    DEFAULT_PORT,
    PipeStream,
    SocketStream,
    StreamClosed,
    StreamTimeout,
    WorkerSpec,
    parse_workers,
)
from repro.experiments.distributed.worker import (
    WorkerServer,
    run_shard_specs,
    worker_loop,
)

__all__ = [
    "CacheClient",
    "CacheServer",
    "parse_cache_spec",
    "DistributedExecutor",
    "ShardExecutionError",
    "Lease",
    "ShardScheduler",
    "Shard",
    "plan_shards",
    "DEFAULT_PORT",
    "PipeStream",
    "SocketStream",
    "StreamClosed",
    "StreamTimeout",
    "WorkerSpec",
    "parse_workers",
    "WorkerServer",
    "run_shard_specs",
    "worker_loop",
]
