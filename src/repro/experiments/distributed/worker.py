"""Worker side of distributed sweep execution.

A worker is a loop over one message stream (a pipe from a forked local
process, or one TCP connection into ``python -m repro.experiments
worker``): receive a shard, execute it, answer with the results.  While
a shard runs, the loop emits periodic ``("heartbeat", shard_id)`` frames
so the dispatcher's lease on the shard stays alive — a worker that
crashes or hangs simply goes silent, the lease expires, and the
scheduler requeues the shard elsewhere.

Shard execution reuses the exact single-host stack: a serial
:class:`~repro.experiments.executor.Executor` fronted by a
:class:`~repro.experiments.batch.BatchRunner` when the shard's specs run
a batching engine — the shard planner cut shards along batch-group
boundaries precisely so each shard still packs into one
:class:`repro.engine.batch.SimBatch`/``CompiledSimBatch``.  Results are
therefore flit-for-flit identical to a serial run, and they land under
the same content-addressed spec keys.

Wire protocol (picklable tuples):

====================================  =========================================
dispatcher -> worker                  worker -> dispatcher
====================================  =========================================
``("shard", id, specs, cache_addr)``  ``("ready", name)`` once on connect
``("ping",)``                         ``("heartbeat", id)`` while computing
``("shutdown",)``                     ``("done", id, results)`` on success
..                                    ``("error", id, traceback)`` on failure
====================================  =========================================
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import traceback
from typing import Any, Sequence

from repro.experiments.batch import BatchRunner
from repro.experiments.cache import CacheBackend
from repro.experiments.executor import Executor
from repro.experiments.distributed.cacheserver import CacheClient, parse_cache_spec
from repro.experiments.distributed.transport import (
    DEFAULT_PORT,
    PipeStream,
    SocketStream,
    StreamClosed,
)
from repro.experiments.spec import ExperimentSpec

#: Engines whose specs profit from sweep-level SimBatch packing; mirrors
#: the dispatch in :meth:`repro.experiments.registry.ExperimentDefinition.run`.
BATCHING_ENGINES = ("batch", "compiled")


def run_shard_specs(
    specs: Sequence[ExperimentSpec], cache: CacheBackend | None = None
) -> list[Any]:
    """Execute one shard's specs in-process, batching when the engine does.

    The worker-side unit of work: a serial executor (the shard *is* the
    parallelism), fronted by a :class:`BatchRunner` when the specs carry
    a batching engine so the whole shard advances as one ``SimBatch``.
    """
    executor = Executor(workers=1, cache=cache)
    engine = next(
        (spec.params["engine"] for spec in specs if "engine" in spec.params), None
    )
    if len(specs) > 1 and engine in BATCHING_ENGINES:
        return BatchRunner(executor).run(specs)
    return executor.run(specs)


def _execute_into(specs, cache, box: dict) -> None:
    """Thread target: run the shard, leaving results or a traceback in ``box``."""
    try:
        box["results"] = run_shard_specs(specs, cache)
    except BaseException:  # noqa: BLE001 — the traceback crosses the wire
        box["error"] = traceback.format_exc()


def worker_loop(
    stream,
    cache: CacheBackend | None = None,
    heartbeat_s: float = 1.0,
    name: str | None = None,
) -> None:
    """Serve shards over ``stream`` until shutdown or stream loss.

    Parameters
    ----------
    stream : PipeStream or SocketStream
        The dispatcher connection.
    cache : CacheBackend, optional
        The worker's own cache.  When ``None``, the worker attaches a
        :class:`CacheClient` to the shared cache address advertised in
        each shard message (if any), so all workers of a run share one
        warm cache.
    heartbeat_s : float
        Interval between heartbeat frames while a shard computes.
    name : str, optional
        Worker name announced in the ready frame.
    """
    try:
        stream.send(("ready", name or f"pid-{os.getpid()}"))
    except StreamClosed:
        return
    shared_clients: dict[tuple, CacheClient] = {}
    while True:
        try:
            message = stream.recv()
        except StreamClosed:
            return
        kind = message[0]
        if kind == "shutdown":
            return
        if kind == "ping":
            try:
                stream.send(("pong",))
            except StreamClosed:
                return
            continue
        if kind != "shard":
            try:
                stream.send(("error", None, f"unknown request {kind!r}"))
            except StreamClosed:
                return
            continue
        _, shard_id, specs, cache_address = message
        effective_cache = cache
        if effective_cache is None and cache_address is not None:
            host, port = cache_address
            address = (host or stream.peer_host, port)
            if address not in shared_clients:
                shared_clients[address] = CacheClient(*address)
            effective_cache = shared_clients[address]
        box: dict = {}
        runner = threading.Thread(
            target=_execute_into, args=(specs, effective_cache, box), daemon=True
        )
        runner.start()
        abandoned = False
        while True:
            runner.join(heartbeat_s)
            if not runner.is_alive():
                break
            try:
                stream.send(("heartbeat", shard_id))
            except StreamClosed:
                abandoned = True
                break
        if abandoned:
            return
        try:
            if "error" in box:
                stream.send(("error", shard_id, box["error"]))
            else:
                stream.send(("done", shard_id, box["results"]))
        except StreamClosed:
            return


def local_worker_main(
    connection, cache_spec: str | None, heartbeat_s: float, name: str
) -> None:
    """Process target of a forked/spawned local worker.

    Module-level so every ``multiprocessing`` start method can pickle it
    by reference; the cache travels as a spec string (see
    :func:`~repro.experiments.distributed.cacheserver.parse_cache_spec`)
    because live backends must not be shared across a fork — two
    processes interleaving frames on one inherited client socket would
    corrupt the protocol.
    """
    cache = parse_cache_spec(cache_spec)
    worker_loop(
        PipeStream(connection), cache=cache, heartbeat_s=heartbeat_s, name=name
    )


def _connection_main(
    sock: socket.socket, cache_spec: str | None, heartbeat_s: float, name: str
) -> None:
    """Serve one accepted dispatcher connection (forked process or thread)."""
    cache = parse_cache_spec(cache_spec)
    stream = SocketStream(sock)
    try:
        worker_loop(stream, cache=cache, heartbeat_s=heartbeat_s, name=name)
    finally:
        stream.close()


class WorkerServer:
    """TCP worker: accept dispatcher connections, serve shards on each.

    Each accepted connection gets its own *process* when the platform
    supports the ``fork`` start method (the simulator is pure Python, so
    process isolation is the only route past the GIL — ``--workers
    host:4`` opens four connections and gets four genuinely parallel
    executors); platforms without ``fork`` fall back to threads, which
    stay protocol-correct but serialise the compute.

    Parameters
    ----------
    host, port : str, int
        Bind address.  ``port=0`` picks an ephemeral port, published in
        :attr:`port` (and printed by the CLI) for the dispatcher.
    cache_spec : str, optional
        Worker-side cache (see :func:`parse_cache_spec`); ``None`` makes
        workers adopt the dispatcher's shared cache server.
    heartbeat_s : float
        Heartbeat interval of the serving loops.
    """

    def __init__(
        self,
        host: str = "0.0.0.0",
        port: int = DEFAULT_PORT,
        cache_spec: str | None = None,
        heartbeat_s: float = 1.0,
    ) -> None:
        self.cache_spec = cache_spec
        self.heartbeat_s = heartbeat_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.host, self.port = self._listener.getsockname()[:2]
        self._running = False
        self._children: list = []
        try:
            self._fork = multiprocessing.get_context("fork")
        except ValueError:
            self._fork = None

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (the CLI entry point)."""
        self._running = True
        serial = 0
        while self._running:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            serial += 1
            name = f"{socket.gethostname()}#{serial}"
            if self._fork is not None:
                child = self._fork.Process(
                    target=_connection_main,
                    args=(sock, self.cache_spec, self.heartbeat_s, name),
                    daemon=True,
                )
                child.start()
                sock.close()  # the child owns its inherited copy
            else:
                child = threading.Thread(
                    target=_connection_main,
                    args=(sock, self.cache_spec, self.heartbeat_s, name),
                    daemon=True,
                )
                child.start()
            self._children.append(child)

    def start(self) -> "WorkerServer":
        """Run :meth:`serve_forever` on a daemon thread; returns self."""
        acceptor = threading.Thread(
            target=self.serve_forever, name="worker-server-accept", daemon=True
        )
        acceptor.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close the listener (children finish/die)."""
        self._running = False
        try:
            # Wake a thread blocked in accept(); close() alone leaves the
            # kernel socket listening while that call holds its reference.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for child in self._children:
            if isinstance(child, multiprocessing.process.BaseProcess):
                if child.is_alive():
                    child.terminate()
                child.join(timeout=2.0)
