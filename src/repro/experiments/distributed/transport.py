"""Message transport: length-prefixed pickle frames over pipes and sockets.

Both worker backends speak the same message protocol (plain picklable
tuples — see :mod:`repro.experiments.distributed.worker`); this module
hides *how* the bytes move behind one tiny stream interface:

* :class:`PipeStream` — a ``multiprocessing.Connection`` to a forked
  local worker process.  The connection pickles messages natively.
* :class:`SocketStream` — a TCP socket to a remote worker (or the cache
  server), framed as an 8-byte big-endian length prefix followed by the
  pickled payload.  Partial reads survive timeouts: the receive buffer
  persists across :meth:`SocketStream.recv` calls, so a timeout mid-frame
  never corrupts the framing.

Two exceptions classify the failure modes the dispatcher cares about:
:class:`StreamTimeout` (the peer is silent — possibly hung; the lease
machinery decides) and :class:`StreamClosed` (the peer is gone; the
shard is requeued immediately).

``--workers`` specs are parsed here too: ``"4"`` means four forked local
workers, ``"host:2"`` two TCP channels to ``host`` on the default port,
``"host:7653:2"`` an explicit port, and a comma list mixes freely.
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass
from typing import Any

#: Default TCP port of ``python -m repro.experiments worker``.
DEFAULT_PORT = 7653

#: 8-byte big-endian frame-length prefix.
_HEADER = struct.Struct("!Q")

#: Upper bound on a single frame (1 GiB): a corrupt or malicious length
#: prefix fails fast instead of attempting a giant allocation.
MAX_FRAME_BYTES = 1 << 30


class StreamClosed(ConnectionError):
    """The peer closed the stream (EOF) or the transport failed."""


class StreamTimeout(TimeoutError):
    """No complete message arrived within the allowed time."""


def dump_message(message: Any) -> bytes:
    """Pickle ``message`` into one length-prefixed frame.

    Examples
    --------
    >>> frame = dump_message(("ping",))
    >>> load_frame_length(frame[:8]) == len(frame) - 8
    True
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload)) + payload


def load_frame_length(header: bytes) -> int:
    """Decode a frame's length prefix, validating it against the bound."""
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise StreamClosed(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound "
            "(corrupt stream?)"
        )
    return length


class PipeStream:
    """Message stream over a ``multiprocessing.Connection``."""

    #: Local worker processes always share loopback with the dispatcher.
    peer_host = "127.0.0.1"

    def __init__(self, connection) -> None:
        self._connection = connection

    def send(self, message: Any) -> None:
        """Send one message; raises :class:`StreamClosed` on a dead peer."""
        try:
            self._connection.send(message)
        except (BrokenPipeError, OSError) as error:
            raise StreamClosed(str(error)) from error

    def recv(self, timeout: float | None = None) -> Any:
        """Receive one message, waiting at most ``timeout`` seconds."""
        try:
            if timeout is not None and not self._connection.poll(timeout):
                raise StreamTimeout(f"no message within {timeout} s")
            return self._connection.recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            raise StreamClosed(str(error)) from error

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()


class SocketStream:
    """Length-prefixed pickle frames over a TCP socket.

    The receive path is a resumable state machine: bytes accumulate in
    an internal buffer until a whole frame is present, so a timeout in
    the middle of a frame leaves the buffer intact and the next
    :meth:`recv` picks up exactly where the last one stopped.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock
        self._buffer = bytearray()
        try:
            peer = sock.getpeername()
        except OSError:
            peer = None
        # AF_UNIX peers (socketpair tests) report a path or "", not a
        # (host, port) tuple; anything non-TCP counts as loopback.
        self.peer_host = (
            peer[0] if isinstance(peer, tuple) and peer else "127.0.0.1"
        )

    def send(self, message: Any) -> None:
        """Send one framed message; raises :class:`StreamClosed` on failure."""
        try:
            self._socket.sendall(dump_message(message))
        except OSError as error:
            raise StreamClosed(str(error)) from error

    def recv(self, timeout: float | None = None) -> Any:
        """Receive one framed message, waiting at most ``timeout`` seconds."""
        self._fill(_HEADER.size, timeout)
        length = load_frame_length(bytes(self._buffer[: _HEADER.size]))
        self._fill(_HEADER.size + length, timeout)
        payload = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
        del self._buffer[: _HEADER.size + length]
        return pickle.loads(payload)

    def _fill(self, needed: int, timeout: float | None) -> None:
        """Grow the buffer to ``needed`` bytes (buffer survives timeouts)."""
        while len(self._buffer) < needed:
            try:
                self._socket.settimeout(timeout)
                chunk = self._socket.recv(65536)
            except socket.timeout as error:
                raise StreamTimeout(f"no message within {timeout} s") from error
            except OSError as error:
                raise StreamClosed(str(error)) from error
            if not chunk:
                raise StreamClosed("peer closed the connection")
            self._buffer.extend(chunk)

    def close(self) -> None:
        """Close the underlying socket."""
        try:
            self._socket.close()
        except OSError:
            pass


def connect(host: str, port: int, timeout: float = 10.0) -> SocketStream:
    """Open a :class:`SocketStream` to ``host:port``.

    Raises
    ------
    StreamClosed
        When the connection cannot be established within ``timeout``.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError as error:
        raise StreamClosed(f"cannot reach worker at {host}:{port}: {error}") from error
    return SocketStream(sock)


@dataclass(frozen=True)
class WorkerSpec:
    """One parsed ``--workers`` entry: where a worker lives, how many channels.

    ``host is None`` means forked local worker processes; otherwise TCP
    channels to a ``python -m repro.experiments worker`` server.
    """

    host: str | None
    port: int
    count: int

    @property
    def local(self) -> bool:
        """Whether this entry spawns local processes instead of dialing TCP."""
        return self.host is None


def parse_workers(spec: str | int) -> list[WorkerSpec]:
    """Parse a ``--workers`` value into :class:`WorkerSpec` entries.

    Accepts a bare integer (that many forked local workers), a
    ``host:n`` pair, a ``host:port:n`` triple, or a comma-separated mix.

    Examples
    --------
    >>> parse_workers(3)
    [WorkerSpec(host=None, port=0, count=3)]
    >>> parse_workers("2,node1:4,node2:7700:2")  # doctest: +NORMALIZE_WHITESPACE
    [WorkerSpec(host=None, port=0, count=2),
     WorkerSpec(host='node1', port=7653, count=4),
     WorkerSpec(host='node2', port=7700, count=2)]
    """
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(f"worker count must be positive, got {spec}")
        return [WorkerSpec(host=None, port=0, count=spec)]
    entries: list[WorkerSpec] = []
    for raw in str(spec).split(","):
        entry = raw.strip()
        if not entry:
            continue
        parts = entry.split(":")
        try:
            if len(parts) == 1:
                entries.append(WorkerSpec(None, 0, int(parts[0])))
            elif len(parts) == 2:
                entries.append(WorkerSpec(parts[0], DEFAULT_PORT, int(parts[1])))
            elif len(parts) == 3:
                entries.append(WorkerSpec(parts[0], int(parts[1]), int(parts[2])))
            else:
                raise ValueError(entry)
        except ValueError:
            raise ValueError(
                f"bad --workers entry {entry!r}: expected N, host:n or "
                f"host:port:n (e.g. '4' or 'node1:2,node2:7700:4')"
            ) from None
        if entries[-1].count < 1:
            raise ValueError(
                f"bad --workers entry {entry!r}: channel count must be positive"
            )
    if not entries:
        raise ValueError(f"--workers spec {spec!r} names no workers")
    return entries
