"""The dispatcher: a drop-in executor that farms shards out to workers.

:class:`DistributedExecutor` keeps the single-host
:class:`~repro.experiments.executor.Executor` contract — ``run(specs)``
returns results in input order, consults/fills the attached cache under
unchanged content-addressed spec keys, and leaves an
:class:`~repro.experiments.executor.ExecutionReport` in ``last_report``
— but computes the cache misses on a fleet of workers:

1. the cache scan partitions the sweep into hits and misses;
2. :func:`~repro.experiments.distributed.shards.plan_shards` cuts the
   misses into batch-group-aligned shards;
3. a :class:`~repro.experiments.distributed.scheduler.ShardScheduler`
   leases shards to worker channels — forked local processes and/or TCP
   connections to remote ``python -m repro.experiments worker`` servers
   (``--workers 4`` / ``--workers node1:2,node2:7700:4``) — with
   work-stealing between queues and lease-expiry requeue on crash;
4. when a cache is attached, it is also served over TCP
   (:class:`~repro.experiments.distributed.cacheserver.CacheServer`) and
   its address advertised with every shard, so cache-less workers share
   one warm store and never recompute each other's points;
5. shards nobody could finish (all channels dead, or a shard past its
   requeue budget) fall back to a final serial attempt in-process, so a
   deterministic failure surfaces as a real traceback.

Results are identical to a serial run — same spec keys, same values —
because workers execute the very same point functions through the very
same executor/batch stack; the test-suite pins this byte for byte.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Iterable

from repro.experiments.cache import CacheBackend, ResultCache
from repro.experiments.executor import ExecutionReport, Executor
from repro.experiments.distributed.cacheserver import CacheServer
from repro.experiments.distributed.scheduler import ShardScheduler
from repro.experiments.distributed.shards import Shard, plan_shards
from repro.experiments.distributed.transport import (
    PipeStream,
    StreamClosed,
    StreamTimeout,
    WorkerSpec,
    connect,
    parse_workers,
)
from repro.experiments.distributed.worker import BATCHING_ENGINES, local_worker_main
from repro.experiments.spec import ExperimentSpec


class ShardExecutionError(RuntimeError):
    """A worker reported an exception while executing a shard."""


class _Channel:
    """One worker channel: a name, an open stream, and its local process."""

    def __init__(self, name: str, spec: WorkerSpec) -> None:
        self.name = name
        self.spec = spec
        self.stream = None
        self.process = None


class DistributedExecutor:
    """Executor front-end that distributes sweeps over worker channels.

    Parameters
    ----------
    workers : int or str
        Worker fleet: an integer forks that many local worker processes;
        a string like ``"node1:2,node2:7700:4"`` (or a mixed
        ``"2,node1:4"``) adds TCP channels to remote worker servers.
    cache : CacheBackend, optional
        Result cache consulted before sharding and updated as results
        arrive; also served to the workers (see ``serve_cache``).
    lease_s : float
        Seconds a shard lease survives without a heartbeat before the
        scheduler requeues it (the crash-detection latency).
    heartbeat_s : float
        Heartbeat interval the local workers are asked to use.
    max_requeues : int
        Requeue budget per shard before it is poisoned to the serial
        fallback path.
    max_points : int, optional
        Shard-size bound passed to the planner.  Default: keep batch
        groups whole when the sweep runs a batching engine, else split
        to roughly four shards per channel for stealing granularity.
    serve_cache : bool
        Serve ``cache`` over TCP and advertise it to the workers
        (default True; loopback-only unless TCP workers are present).
    mp_context : multiprocessing context, optional
        Context for the forked local workers.
    observer : callable, optional
        Called as ``observer(event_dict)`` with live run events: a
        ``"scan"`` event after the cache scan (total/hits/misses), a
        ``"plan"`` event once shards are cut, and the scheduler's
        ``"steal"``/``"shard_done"``/``"requeue"``/``"poisoned"``
        transitions as they happen.  This is the feed behind the sweep
        service's NDJSON event streams; observer exceptions are
        swallowed, never failing the run.

    Examples
    --------
    >>> from repro.experiments import Sweep
    >>> sweep = Sweep("repro.experiments.demo:multiply",
    ...               grid={"a": (4, 9)}, base={"b": 6})
    >>> executor = DistributedExecutor(workers=2, lease_s=60.0)
    >>> executor.run(sweep.specs())
    [24, 54]
    >>> executor.last_report.shards
    2
    """

    #: Seen by :meth:`repro.experiments.registry.ExperimentDefinition.run`:
    #: shards are already batch-group aligned and workers pack them into
    #: SimBatches, so wrapping this executor in a BatchRunner would be
    #: redundant.
    handles_batching = True

    def __init__(
        self,
        workers: int | str = 2,
        cache: CacheBackend | None = None,
        lease_s: float = 30.0,
        heartbeat_s: float = 1.0,
        max_requeues: int = 3,
        max_points: int | None = None,
        serve_cache: bool = True,
        mp_context=None,
        connect_timeout: float = 10.0,
        observer: Callable[[dict], None] | None = None,
    ) -> None:
        import multiprocessing

        self.observer = observer
        self.worker_specs = parse_workers(workers)
        self.workers = sum(entry.count for entry in self.worker_specs)
        self.cache = cache
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s
        self.max_requeues = max_requeues
        self.max_points = max_points
        self.serve_cache = serve_cache
        self.connect_timeout = connect_timeout
        self._mp_context = mp_context or multiprocessing.get_context()
        self._local = Executor(workers=1, cache=cache)
        self.last_report = ExecutionReport()

    # ------------------------------------------------------------------ #
    # The executor contract
    # ------------------------------------------------------------------ #

    def run(
        self,
        specs: Iterable[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None = None,
    ) -> list[Any]:
        """Execute every spec across the fleet; results in input order.

        Raises
        ------
        ShardExecutionError
            When a worker reports an exception from a point function;
            the original worker-side traceback is in the message.
        """
        spec_list = list(specs)
        started = time.perf_counter()
        results, miss_indices = self._local.scan_cache(spec_list)
        self._observe(
            {
                "kind": "scan",
                "points": len(spec_list),
                "cache_hits": len(spec_list) - len(miss_indices),
                "misses": len(miss_indices),
            }
        )
        if not miss_indices:
            self.last_report = self._local.make_report(len(spec_list), 0, started)
            return results

        channels = self._make_channels()
        shards = plan_shards(
            spec_list, miss_indices, self._resolve_max_points(spec_list, miss_indices)
        )
        self._observe(
            {
                "kind": "plan",
                "shards": len(shards),
                "channels": len(channels),
                "misses": len(miss_indices),
            }
        )
        scheduler = ShardScheduler(
            shards,
            [channel.name for channel in channels],
            lease_s=self.lease_s,
            max_requeues=self.max_requeues,
            observer=self.observer,
        )

        cache_server, cache_address = self._start_cache_server()
        state_lock = threading.Lock()
        computed: set[int] = set()
        errors: list[str] = []
        stop = threading.Event()

        def store(shard: Shard, values: list) -> None:
            with state_lock:
                for index, value in zip(shard.indices, values):
                    if index in computed:
                        continue
                    computed.add(index)
                    results[index] = value
                    if self.cache is not None:
                        self.cache.put(spec_list[index].key, value)
                    if progress is not None:
                        progress(spec_list[index], value)

        threads = [
            threading.Thread(
                target=self._channel_main,
                args=(channel, scheduler, spec_list, cache_address, store, errors, stop),
                name=f"dispatch-{channel.name}",
                daemon=True,
            )
            for channel in channels
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if cache_server is not None:
            cache_server.stop()

        if errors:
            raise ShardExecutionError(
                "a worker failed while executing a shard:\n" + "\n".join(errors)
            )

        # Whatever nobody finished — every channel died, or a shard burned
        # its requeue budget — gets one serial attempt here, where a real
        # failure raises with its own traceback instead of looping.
        leftover = [index for index in miss_indices if index not in computed]
        if leftover:
            fresh = self._local.compute(
                [spec_list[index] for index in leftover], progress
            )
            for index, value in zip(leftover, fresh):
                results[index] = value

        self.last_report = self._local.make_report(
            len(spec_list), len(miss_indices), started
        )
        self.last_report.workers = self.workers
        self.last_report.shards = len(shards)
        self.last_report.steals = scheduler.steals
        self.last_report.requeues = scheduler.requeues
        self.last_report.per_worker = scheduler.per_worker
        return results

    def scan_cache(self, spec_list):
        """Partition specs into cached results and miss indices (delegated)."""
        return self._local.scan_cache(spec_list)

    def _observe(self, event: dict) -> None:
        """Deliver one run event to the observer; observer errors are inert."""
        if self.observer is None:
            return
        try:
            self.observer(event)
        except Exception:
            pass  # progress reporting must never fail the run

    # ------------------------------------------------------------------ #
    # Fleet plumbing
    # ------------------------------------------------------------------ #

    def _make_channels(self) -> list[_Channel]:
        channels: list[_Channel] = []
        local_serial = 0
        for entry in self.worker_specs:
            for slot in range(entry.count):
                if entry.local:
                    name = f"local-{local_serial}"
                    local_serial += 1
                else:
                    name = f"{entry.host}:{entry.port}#{slot}"
                channels.append(_Channel(name, entry))
        return channels

    def _resolve_max_points(self, spec_list, miss_indices) -> int | None:
        if self.max_points is not None:
            return self.max_points
        batching = any(
            spec_list[index].params.get("engine") in BATCHING_ENGINES
            for index in miss_indices
        )
        if batching:
            return None  # keep SimBatch groups whole
        # Roughly four shards per channel: fine enough for stealing to
        # balance, coarse enough to amortise the per-shard round trip.
        return max(1, math.ceil(len(miss_indices) / (4 * max(self.workers, 1))))

    def _local_cache_spec(self) -> str | None:
        """Cache spec forked local workers start with (disk shares by path)."""
        if isinstance(self.cache, ResultCache):
            return f"disk:{self.cache.root}"
        return None  # fall back to the served shared cache, if any

    def _start_cache_server(self):
        """Serve the dispatcher's cache to workers; returns (server, address).

        Disk caches are only served when TCP workers are present (local
        workers already share the directory); memory caches are served
        whenever there is a cache to share.  The advertised address
        carries ``None`` as host — each worker substitutes the peer
        address of its own dispatcher connection, which is reachable by
        construction.
        """
        if self.cache is None or not self.serve_cache:
            return None, None
        any_remote = any(not entry.local for entry in self.worker_specs)
        if isinstance(self.cache, ResultCache) and not any_remote:
            return None, None
        host = "0.0.0.0" if any_remote else "127.0.0.1"
        server = CacheServer(self.cache, host=host).start()
        return server, (None, server.port)

    def _open_channel(self, channel: _Channel):
        if channel.spec.local:
            parent, child = self._mp_context.Pipe()
            process = self._mp_context.Process(
                target=local_worker_main,
                args=(
                    child,
                    self._local_cache_spec(),
                    self.heartbeat_s,
                    channel.name,
                ),
                daemon=True,
            )
            process.start()
            child.close()
            channel.process = process
            channel.stream = PipeStream(parent)
        else:
            channel.stream = connect(
                channel.spec.host, channel.spec.port, self.connect_timeout
            )
        return channel.stream

    def _channel_main(
        self,
        channel: _Channel,
        scheduler: ShardScheduler,
        spec_list: list[ExperimentSpec],
        cache_address,
        store: Callable[[Shard, list], None],
        errors: list[str],
        stop: threading.Event,
    ) -> None:
        """Drive one worker channel until the run finishes or the worker dies."""
        try:
            stream = self._open_channel(channel)
            ready = stream.recv(timeout=self.connect_timeout)
            if ready[0] != "ready":
                raise StreamClosed(f"expected ready frame, got {ready!r}")
        except (StreamClosed, StreamTimeout, OSError):
            # Unreachable worker: its home queue drains through stealing.
            self._close_channel(channel)
            return
        try:
            while not stop.is_set():
                shard = scheduler.lease(channel.name)
                if shard is None:
                    if scheduler.finished:
                        break
                    time.sleep(0.02)
                    continue
                if not self._run_shard_on_channel(
                    channel, scheduler, shard, spec_list, cache_address, store,
                    errors, stop,
                ):
                    return  # channel is gone; lease already requeued
            self._send_shutdown(channel)
        finally:
            self._close_channel(channel)

    def _run_shard_on_channel(
        self, channel, scheduler, shard, spec_list, cache_address, store,
        errors, stop,
    ) -> bool:
        """Ship one shard, pump heartbeats, land the results.

        Returns False when the channel died (the shard has been handed
        back to the scheduler).
        """
        stream = channel.stream
        shard_specs = [spec_list[index] for index in shard.indices]
        try:
            stream.send(("shard", shard.shard_id, shard_specs, cache_address))
            while True:
                message = stream.recv(timeout=self.lease_s)
                kind = message[0]
                if kind == "heartbeat":
                    scheduler.heartbeat(shard.shard_id, channel.name)
                    continue
                if kind == "done":
                    if scheduler.complete(shard.shard_id, channel.name):
                        store(shard, message[2])
                    return True
                if kind == "error":
                    scheduler.complete(shard.shard_id, channel.name)
                    errors.append(message[2])
                    stop.set()
                    return True
                # Unknown frame: treat as protocol corruption.
                raise StreamClosed(f"unexpected frame {kind!r}")
        except (StreamTimeout, StreamClosed):
            # Crash (closed) or hang (timeout without heartbeats): requeue
            # everything this worker held and retire the channel.
            scheduler.fail(channel.name)
            return False

    def _send_shutdown(self, channel: _Channel) -> None:
        try:
            if channel.stream is not None:
                channel.stream.send(("shutdown",))
        except StreamClosed:
            pass

    def _close_channel(self, channel: _Channel) -> None:
        if channel.stream is not None:
            channel.stream.close()
            channel.stream = None
        if channel.process is not None:
            channel.process.join(timeout=2.0)
            if channel.process.is_alive():
                channel.process.terminate()
                channel.process.join(timeout=2.0)
            channel.process = None
