"""Work-stealing shard scheduler with a lease/heartbeat/requeue protocol.

The scheduler is pure bookkeeping — it never talks to a socket or spawns
a process.  The dispatcher's channel threads drive it:

* :meth:`ShardScheduler.lease` hands an idle worker its next shard —
  from the worker's own queue first, else *stolen* from the back of the
  longest other queue (classic work stealing: owners pop from the front,
  thieves steal from the back, so the two rarely contend for the same
  shard).
* :meth:`ShardScheduler.heartbeat` extends a running shard's lease; a
  lease that is neither completed nor renewed within ``lease_s`` is
  considered lost (worker crash, hang, or network partition) and
  :meth:`ShardScheduler.expire` requeues the shard at the front of its
  home queue.
* :meth:`ShardScheduler.complete` is **idempotent**: results land under
  content-addressed spec keys, so a late completion from a presumed-dead
  worker is simply ignored when the requeued copy already finished (and
  accepted when it has not — whichever copy finishes first wins, both
  compute identical values).

A shard requeued more than ``max_requeues`` times is *poisoned* — handed
back to the dispatcher for a final serial attempt in-process, where a
deterministic failure surfaces as a real traceback instead of an
infinite requeue loop.

Every transition feeds the observability counters (``steals``,
``requeues``, per-worker shard/point tallies) that
:class:`repro.experiments.executor.ExecutionReport` surfaces on the CLI.
An optional ``observer`` callback additionally receives one dict per
transition (``steal`` / ``shard_done`` / ``requeue`` / ``poisoned``) as
it happens — the live feed behind the sweep service's NDJSON event
streams.  The clock is injectable so the lease state machine is
unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.experiments.distributed.shards import Shard


@dataclass
class Lease:
    """One outstanding shard assignment: who runs it and until when."""

    shard: Shard
    worker: str
    deadline: float


class ShardScheduler:
    """Thread-safe work-stealing scheduler over a fixed set of shards.

    Parameters
    ----------
    shards : iterable of Shard
        The planned work units; assigned round-robin to worker home
        queues in the given (largest-first) order.
    workers : sequence of str
        Worker names; each gets a home queue.
    lease_s : float
        Seconds a lease stays valid without a heartbeat or completion.
    max_requeues : int
        Requeues after which a shard is poisoned instead of retried.
    clock : callable
        Monotonic time source (injectable for tests).
    observer : callable, optional
        Called as ``observer(event_dict)`` on every scheduler transition
        (kinds ``"steal"``, ``"shard_done"``, ``"requeue"``,
        ``"poisoned"``), outside the scheduler lock.  Exceptions from the
        observer are swallowed — progress reporting must never be able
        to wedge a run.

    Examples
    --------
    >>> shards = [Shard(0, (0, 1)), Shard(1, (2,))]
    >>> scheduler = ShardScheduler(shards, workers=["a", "b"])
    >>> scheduler.lease("a").shard_id
    0
    >>> scheduler.lease("b").shard_id
    1
    >>> scheduler.complete(0, "a"), scheduler.complete(0, "a")
    (True, False)
    """

    def __init__(
        self,
        shards: Iterable[Shard],
        workers: Sequence[str],
        lease_s: float = 30.0,
        max_requeues: int = 3,
        clock: Callable[[], float] = time.monotonic,
        observer: Callable[[dict], None] | None = None,
    ) -> None:
        if not workers:
            raise ValueError("scheduler needs at least one worker")
        self.lease_s = lease_s
        self.max_requeues = max_requeues
        self._clock = clock
        self._observer = observer
        self._pending_events: list[dict] = []
        self._lock = threading.Lock()
        self._queues: dict[str, deque[Shard]] = {name: deque() for name in workers}
        for position, shard in enumerate(shards):
            home = list(workers)[position % len(workers)]
            self._queues[home].append(shard)
        self._leases: dict[int, Lease] = {}
        self._completed: set[int] = set()
        self._requeue_counts: dict[int, int] = {}
        self._poisoned: list[Shard] = []
        self.steals = 0
        self.requeues = 0
        self.per_worker: dict[str, dict] = {
            name: {"shards": 0, "points": 0} for name in workers
        }

    # ------------------------------------------------------------------ #
    # Worker-facing transitions
    # ------------------------------------------------------------------ #

    def lease(self, worker: str) -> Shard | None:
        """Hand ``worker`` its next shard, stealing when its queue is dry.

        Returns ``None`` when no shard is currently available — which
        means either the run is finishing (check :attr:`finished`) or
        every remaining shard is leased out and might yet be requeued.
        """
        with self._lock:
            self._expire_locked()
            own = self._queues.get(worker)
            if own is None:
                raise KeyError(f"unknown worker {worker!r}")
            shard = self._pop_next(own)
            if shard is None:
                victim = max(
                    (queue for name, queue in self._queues.items() if name != worker),
                    key=len,
                    default=None,
                )
                if victim:
                    shard = self._pop_next(victim, from_back=True)
                    if shard is not None:
                        self.steals += 1
                        self._queue_event_locked(
                            {
                                "kind": "steal",
                                "worker": worker,
                                "shard": shard.shard_id,
                                "points": shard.size,
                            }
                        )
            if shard is not None:
                self._leases[shard.shard_id] = Lease(
                    shard=shard,
                    worker=worker,
                    deadline=self._clock() + self.lease_s,
                )
        self._flush_events()
        return shard

    def heartbeat(self, shard_id: int, worker: str) -> bool:
        """Renew the lease on ``shard_id``; False when it is no longer held.

        A False return tells the channel its worker lost the shard (the
        lease expired and the shard was requeued) — the eventual result
        may still be accepted by :meth:`complete` if it arrives first.
        """
        with self._lock:
            lease = self._leases.get(shard_id)
            if lease is None or lease.worker != worker:
                return False
            lease.deadline = self._clock() + self.lease_s
            return True

    def complete(self, shard_id: int, worker: str) -> bool:
        """Record ``shard_id`` as done; returns False for duplicates.

        First writer wins: the completion is accepted even when the
        lease has expired or moved to another worker (the results are
        deterministic and land under content-addressed keys, so any
        copy is as good as any other).  A second completion of the same
        shard — the *other* copy of a requeued shard finishing later —
        is reported as a duplicate and must not be double-counted.
        """
        with self._lock:
            if shard_id in self._completed:
                return False
            lease = self._leases.pop(shard_id, None)
            shard = lease.shard if lease is not None else None
            if shard is None:
                shard = self._remove_queued_locked(shard_id)
            if shard is None:
                # Unknown id: never planned — a protocol error, not a race.
                raise KeyError(f"completion for unknown shard {shard_id}")
            self._completed.add(shard_id)
            tally = self.per_worker.setdefault(worker, {"shards": 0, "points": 0})
            tally["shards"] += 1
            tally["points"] += shard.size
            self._queue_event_locked(
                {
                    "kind": "shard_done",
                    "worker": worker,
                    "shard": shard_id,
                    "points": shard.size,
                    "completed": len(self._completed),
                }
            )
        self._flush_events()
        return True

    def fail(self, worker: str) -> list[Shard]:
        """Requeue every shard leased to a dead ``worker``; return them."""
        with self._lock:
            lost = [
                lease for lease in self._leases.values() if lease.worker == worker
            ]
            for lease in lost:
                del self._leases[lease.shard.shard_id]
                self._requeue_locked(lease.shard)
        self._flush_events()
        return [lease.shard for lease in lost]

    # ------------------------------------------------------------------ #
    # Dispatcher-facing state
    # ------------------------------------------------------------------ #

    def expire(self) -> list[Shard]:
        """Requeue every lease past its deadline; return the shards."""
        with self._lock:
            expired = self._expire_locked()
        self._flush_events()
        return expired

    def take_poisoned(self) -> list[Shard]:
        """Drain the shards that exhausted their requeue budget."""
        with self._lock:
            poisoned, self._poisoned = self._poisoned, []
            return poisoned

    @property
    def finished(self) -> bool:
        """True once every planned shard is completed or poisoned.

        Poisoned shards count as terminal here — they are out of the
        scheduler's hands (the dispatcher gives them a final serial
        attempt after the channels drain); keeping them in would leave
        idle channels polling forever for work that will never requeue.
        """
        with self._lock:
            return (
                not self._leases
                and all(not queue for queue in self._queues.values())
            )

    @property
    def completed_count(self) -> int:
        """Number of shards completed so far."""
        with self._lock:
            return len(self._completed)

    # ------------------------------------------------------------------ #
    # Internals (all called with the lock held)
    # ------------------------------------------------------------------ #

    def _pop_next(self, queue: deque, from_back: bool = False) -> Shard | None:
        while queue:
            shard = queue.pop() if from_back else queue.popleft()
            if shard.shard_id not in self._completed:
                return shard
        return None

    def _remove_queued_locked(self, shard_id: int) -> Shard | None:
        for queue in self._queues.values():
            for shard in queue:
                if shard.shard_id == shard_id:
                    queue.remove(shard)
                    return shard
        return None

    def _queue_event_locked(self, event: dict) -> None:
        if self._observer is not None:
            self._pending_events.append(event)

    def _flush_events(self) -> None:
        """Deliver queued events outside the lock; observer errors are inert."""
        if self._observer is None or not self._pending_events:
            return
        with self._lock:
            events, self._pending_events = self._pending_events, []
        for event in events:
            try:
                self._observer(event)
            except Exception:
                pass  # observers report progress; they never fail a run

    def _requeue_locked(self, shard: Shard) -> None:
        count = self._requeue_counts.get(shard.shard_id, 0) + 1
        self._requeue_counts[shard.shard_id] = count
        self.requeues += 1
        self._queue_event_locked(
            {
                "kind": "poisoned" if count > self.max_requeues else "requeue",
                "shard": shard.shard_id,
                "points": shard.size,
                "count": count,
            }
        )
        if count > self.max_requeues:
            self._poisoned.append(shard)
            return
        # Front of the *shortest* queue: the lost shard already waited a
        # full lease, so it should restart as soon as any worker idles.
        shortest = min(self._queues.values(), key=len)
        shortest.appendleft(shard)

    def _expire_locked(self) -> list[Shard]:
        now = self._clock()
        expired = [
            lease for lease in self._leases.values() if lease.deadline < now
        ]
        for lease in expired:
            del self._leases[lease.shard.shard_id]
            self._requeue_locked(lease.shard)
        return [lease.shard for lease in expired]
