"""Shard planning: split an expanded sweep into distributable work units.

A :class:`Shard` is the unit the work-stealing scheduler hands to a
worker: a set of indices into the dispatcher's spec list.  Shards are cut
along :func:`repro.experiments.batch.spec_group_key` boundaries, so every
spec inside a shard shares a compiled network and cycle loop and the
worker can still run the whole shard as one
:class:`repro.engine.batch.SimBatch` / ``CompiledSimBatch`` — sharding
never gives up the batching speedup, it only bounds how much of a group
travels together.

Groups larger than ``max_points`` are chopped into consecutive chunks
(each chunk still packs internally); unbatchable specs become singleton
shards so the scheduler can balance them at point granularity.  Shards
are emitted largest first — the classic longest-processing-time
heuristic, which keeps the final stretch of a sweep from waiting on one
giant shard that started last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.batch import spec_group_key
from repro.experiments.spec import ExperimentSpec


@dataclass(frozen=True)
class Shard:
    """One distributable work unit: indices into the dispatcher's spec list.

    Parameters
    ----------
    shard_id : int
        Stable identifier within one run; lease bookkeeping and the
        wire protocol refer to shards by this id.
    indices : tuple of int
        Positions of the member specs in the dispatcher's spec list,
        in original sweep order.
    group : tuple or None
        The batch-group key the members share, or ``None`` for an
        unbatchable singleton (observability only — never compared).
    """

    shard_id: int
    indices: tuple
    group: tuple | None = None

    @property
    def size(self) -> int:
        """Number of specs in the shard."""
        return len(self.indices)


def plan_shards(
    spec_list: Sequence[ExperimentSpec],
    miss_indices: Sequence[int] | None = None,
    max_points: int | None = None,
) -> list[Shard]:
    """Cut the cache misses of a sweep into scheduler-ready shards.

    Parameters
    ----------
    spec_list : sequence of ExperimentSpec
        The fully expanded sweep.
    miss_indices : sequence of int, optional
        Indices that actually need computing (the cache scan's misses);
        defaults to every index.
    max_points : int, optional
        Upper bound on specs per shard.  Batch groups larger than the
        bound are split into consecutive chunks that still pack
        internally; ``None`` keeps groups whole.

    Returns
    -------
    list of Shard
        Largest shard first; ids are dense and stable for a given input.

    Examples
    --------
    >>> specs = [ExperimentSpec("repro.experiments.demo:multiply", {"a": a})
    ...          for a in range(3)]
    >>> [shard.size for shard in plan_shards(specs)]
    [1, 1, 1]
    """
    if miss_indices is None:
        miss_indices = range(len(spec_list))
    groups: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    singles: list[int] = []
    for index in miss_indices:
        key = spec_group_key(spec_list[index])
        if key is None:
            singles.append(index)
            continue
        if key not in groups:
            order.append(key)
        groups.setdefault(key, []).append(index)

    chunks: list[tuple[tuple | None, list[int]]] = []
    for key in order:
        members = groups[key]
        bound = max_points if max_points and max_points > 0 else len(members)
        for start in range(0, len(members), max(bound, 1)):
            chunks.append((key, members[start:start + bound]))
    chunks.extend((None, [index]) for index in singles)

    # Largest first (stable for equal sizes): long shards start early so
    # the tail of the run is short shards that balance well.
    chunks.sort(key=lambda chunk: -len(chunk[1]))
    return [
        Shard(shard_id=shard_id, indices=tuple(members), group=key)
        for shard_id, (key, members) in enumerate(chunks)
    ]
