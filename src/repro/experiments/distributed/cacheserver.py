"""Client/server cache backend: one warm result cache shared by all workers.

The dispatcher wraps its local cache (disk or memory) in a
:class:`CacheServer` — a tiny threaded TCP service speaking the same
length-prefixed-pickle framing as the worker transport — and advertises
the port inside every shard message.  Workers without a cache of their
own attach a :class:`CacheClient`, so every ``get``/``put`` lands in the
*dispatcher's* cache: a point computed by one worker is a cache hit for
every other worker (and for the requeued copy of a crashed shard), and
remote machines never recompute each other's points.

The client degrades instead of failing: if the server becomes
unreachable mid-run, ``get`` returns a miss and ``put`` becomes a no-op
— the worker recomputes a little more but the sweep still finishes.  An
outage is loud, not silent: the first failure logs one warning, and the
client keeps retrying the connection with capped exponential backoff, so
a restarted server is picked up again mid-run (logged at info).
Protocol: ``("get", key)`` -> ``("hit", value)`` | ``("miss",)``;
``("put", key, value)`` -> ``("ok",)``; ``("len",)`` -> ``("len", n)``;
``("ping",)`` -> ``("pong",)``.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.experiments.cache import (
    MISS,
    CacheBackend,
    CacheStats,
    MemoryCache,
    ResultCache,
    default_cache_dir,
)
from repro.experiments.distributed.transport import (
    SocketStream,
    StreamClosed,
    connect,
)

logger = logging.getLogger(__name__)


class CacheServer:
    """Serve a :class:`~repro.experiments.cache.CacheBackend` over TCP.

    Parameters
    ----------
    backend : CacheBackend
        The store every connection reads and writes (must be safe for
        concurrent use: :class:`MemoryCache` locks internally,
        :class:`ResultCache` relies on atomic replace).
    host : str
        Bind address; ``"0.0.0.0"`` to serve remote machines,
        ``"127.0.0.1"`` (the default) for loopback-only runs.
    port : int
        Bind port; ``0`` (the default) picks an ephemeral port —
        read the chosen one back from :attr:`port`.

    Examples
    --------
    >>> server = CacheServer(MemoryCache()).start()
    >>> client = CacheClient("127.0.0.1", server.port)
    >>> client.put("k" * 64, {"cycles": 7})
    >>> client.get("k" * 64)
    {'cycles': 7}
    >>> server.stop()
    """

    def __init__(
        self,
        backend: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backend = backend
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.host, self.port = self._listener.getsockname()[:2]
        self._running = False
        self._threads: list[threading.Thread] = []

    def start(self) -> "CacheServer":
        """Begin accepting connections on a daemon thread; returns self."""
        self._running = True
        acceptor = threading.Thread(
            target=self._accept_loop, name="cache-server-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        self._running = False
        try:
            # shutdown() wakes the thread blocked in accept(); close()
            # alone would leave the kernel socket listening until that
            # thread returns (its accept call holds a reference).
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            handler = threading.Thread(
                target=self._serve_connection,
                args=(SocketStream(sock),),
                name="cache-server-conn",
                daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _serve_connection(self, stream: SocketStream) -> None:
        try:
            while True:
                message = stream.recv()
                kind = message[0]
                if kind == "get":
                    value = self.backend.get(message[1])
                    if value is MISS:
                        stream.send(("miss",))
                    else:
                        stream.send(("hit", value))
                elif kind == "put":
                    self.backend.put(message[1], message[2])
                    stream.send(("ok",))
                elif kind == "len":
                    stream.send(("len", len(self.backend)))  # type: ignore[arg-type]
                elif kind == "ping":
                    stream.send(("pong",))
                else:
                    stream.send(("error", f"unknown request {kind!r}"))
        except (StreamClosed, EOFError):
            pass  # client went away; nothing to clean up
        finally:
            stream.close()


class CacheClient:
    """A :class:`CacheBackend` talking to a remote :class:`CacheServer`.

    One persistent connection, opened lazily and guarded by a lock (the
    protocol is strict request/response).  Transport failures flip the
    client into a degraded mode — misses and dropped puts — rather than
    failing the shard that was only trying to use the cache.  Degradation
    is temporary and audible: the first failure of an outage logs one
    warning, then the client retries the connection with exponential
    backoff (``retry_initial_s`` doubling up to ``retry_max_s``), so a
    cache server restarted mid-run is reattached automatically.

    Parameters
    ----------
    host, port : str, int
        The :class:`CacheServer` address.
    timeout : float
        Per-request socket timeout in seconds.
    retry_initial_s : float
        First backoff window after a transport failure; doubles on every
        consecutive failure.
    retry_max_s : float
        Backoff cap — reconnect attempts never space out further than
        this, no matter how long the outage lasts.
    clock : callable
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        retry_initial_s: float = 0.5,
        retry_max_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_initial_s = retry_initial_s
        self.retry_max_s = retry_max_s
        self.stats = CacheStats()
        self._clock = clock
        self._stream: SocketStream | None = None
        self._lock = threading.Lock()
        self._backoff_s = 0.0  # 0 while healthy
        self._retry_at = 0.0  # next reconnect attempt (monotonic)
        self._outage_warned = False

    @property
    def degraded(self) -> bool:
        """Whether the client is currently inside a failed-server outage."""
        return self._backoff_s > 0.0

    def _request(self, message: tuple) -> tuple | None:
        """One request/response round trip; ``None`` while degraded.

        During an outage, calls inside the current backoff window return
        ``None`` immediately (no connection attempt, so a dead server
        costs a worker almost nothing); the first call past the window
        retries the connection, doubling the window on failure up to
        ``retry_max_s``.
        """
        with self._lock:
            if self._backoff_s and self._clock() < self._retry_at:
                return None
            try:
                if self._stream is None:
                    self._stream = connect(self.host, self.port, self.timeout)
                    if self._outage_warned:
                        logger.info(
                            "cache server %s:%d is back; reconnected",
                            self.host,
                            self.port,
                        )
                    self._backoff_s = 0.0
                    self._outage_warned = False
                self._stream.send(message)
                return self._stream.recv(timeout=self.timeout)
            except (StreamClosed, TimeoutError, OSError) as error:
                if self._stream is not None:
                    self._stream.close()
                    self._stream = None
                if not self._outage_warned:
                    logger.warning(
                        "cache server %s:%d unreachable (%s); degrading to "
                        "cache misses and retrying with backoff up to %.0f s",
                        self.host,
                        self.port,
                        error,
                        self.retry_max_s,
                    )
                    self._outage_warned = True
                self._backoff_s = min(
                    self._backoff_s * 2 or self.retry_initial_s,
                    self.retry_max_s,
                )
                self._retry_at = self._clock() + self._backoff_s
                return None

    def get(self, key: str) -> Any:
        """Return the server's value for ``key``, or :data:`MISS`."""
        reply = self._request(("get", key))
        if reply is not None and reply[0] == "hit":
            self.stats.hits += 1
            return reply[1]
        self.stats.misses += 1
        return MISS

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` on the server (dropped when degraded)."""
        if self._request(("put", key, value)) is not None:
            self.stats.stores += 1

    def ping(self) -> bool:
        """Whether the server currently answers."""
        reply = self._request(("ping",))
        return reply is not None and reply[0] == "pong"

    def __len__(self) -> int:
        """Number of entries the server reports (0 when degraded)."""
        reply = self._request(("len",))
        return reply[1] if reply is not None and reply[0] == "len" else 0

    def close(self) -> None:
        """Close the connection (the client can reconnect on next use)."""
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None


def parse_cache_spec(spec: str | None) -> CacheBackend | None:
    """Build a cache backend from a ``--cache`` CLI spec.

    Accepted forms: ``"none"`` (no cache), ``"disk"`` (default
    directory), ``"disk:/path"``, ``"memory"``, ``"memory:512"``
    (capacity), and ``"tcp://host:port"`` (a :class:`CacheClient`).

    Examples
    --------
    >>> parse_cache_spec("none") is None
    True
    >>> parse_cache_spec("memory:64").max_entries
    64
    """
    if spec is None or spec == "none":
        return None
    if spec == "disk":
        return ResultCache(default_cache_dir())
    if spec.startswith("disk:"):
        return ResultCache(Path(spec[len("disk:"):]))
    if spec == "memory":
        return MemoryCache()
    if spec.startswith("memory:"):
        return MemoryCache(max_entries=int(spec[len("memory:"):]))
    if spec.startswith("tcp://"):
        address = spec[len("tcp://"):]
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"bad cache spec {spec!r}: expected tcp://host:port"
            )
        return CacheClient(host, int(port))
    raise ValueError(
        f"bad cache spec {spec!r}: expected none, disk[:dir], "
        f"memory[:entries] or tcp://host:port"
    )
