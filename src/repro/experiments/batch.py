"""Sweep-level batching: group compatible specs into SimBatch runs.

The :class:`~repro.experiments.executor.Executor` runs sweep points one by
one (or across processes); :class:`BatchRunner` sits in front of it and
recognises points that are *open-loop traffic measurements on the same
cluster configuration* — the fig5/fig6/workloads families — and runs each
such group as one :class:`repro.engine.batch.TrafficBatch` over a shared
:class:`repro.engine.batch.SimBatch`, instead of one engine per point.
Everything else (kernel benchmarks, power/physical tables, singleton
groups, unknown runners) falls through to the wrapped executor unchanged.

Results are flit-for-flit identical to per-point execution (the batch
members keep their own seeds, patterns, injectors and windows — see
:mod:`repro.engine.batch`) and are fed back through the executor's
:class:`~repro.experiments.cache.ResultCache` under the very same spec
keys, so cached batch results and cached per-point results are mutually
interchangeable at the cache layer.

Batchable runners are registered in :data:`BATCHABLE_RUNNERS`: an adapter
maps a spec's parameters to the batch *group key* (everything that must
match for two sims to share a compiled network and cycle loop) and to the
member's :class:`~repro.traffic.simulation.TrafficSimulation`.  New
traffic-style point functions opt in by registering an adapter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.experiments.executor import ExecutionReport, Executor
from repro.experiments.spec import ExperimentSpec


@dataclass(frozen=True)
class TrafficAdapter:
    """How to batch one family of traffic point functions.

    Parameters
    ----------
    topology : callable
        Maps spec params to the topology name the point runs on.
    build_simulation : callable
        Maps ``(params, cluster)`` to the member
        :class:`~repro.traffic.simulation.TrafficSimulation` — it must
        construct pattern/injector/seed exactly as the point function
        does, so batched RNG streams match per-point streams.
    """

    topology: Callable[[dict], str]
    build_simulation: Callable[[dict, Any], Any]

    def group_key(self, params: dict) -> tuple:
        """Hashable key of the batch group a spec belongs to.

        Two specs share a group only when they agree on everything that
        the shared engine state depends on: the cluster configuration
        (topology name + family parameters + scale).  The caller prefixes
        the runner path, and measurement windows stay per-member
        (:meth:`repro.engine.batch.TrafficBatch.run` supports per-sim
        horizons), so neither is part of this key.
        """
        return (
            self.topology(params),
            tuple(sorted((params.get("topology_params") or {}).items())),
            bool(params.get("full_scale", False)),
        )


def _default_seed() -> int:
    """The evaluation layer's shared default seed (imported lazily).

    The adapters must fall back to exactly the defaults of the point
    functions they mirror — re-hardcoding the value here would let the
    two silently drift apart and poison the shared cache.  Lazy because
    ``repro.evaluation`` imports ``repro.experiments`` at package level.
    """
    from repro.evaluation.settings import DEFAULT_SEED

    return DEFAULT_SEED


def _fig5_simulation(params: dict, cluster) -> Any:
    """Member builder mirroring :func:`repro.evaluation.fig5.simulate_fig5_point`."""
    from repro.traffic.simulation import TrafficSimulation

    return TrafficSimulation(
        cluster,
        params["load"],
        pattern=params.get("pattern", "uniform"),
        seed=params.get("seed", _default_seed()),
        injector=params.get("injector", "poisson"),
    )


def _fig6_simulation(params: dict, cluster) -> Any:
    """Member builder mirroring :func:`repro.evaluation.fig6.simulate_fig6_point`."""
    from repro.traffic.simulation import TrafficSimulation
    from repro.workloads.patterns import LocalBiasedPattern

    seed = params.get("seed", _default_seed())
    pattern = LocalBiasedPattern(cluster.config, params["p_local"], seed=seed)
    return TrafficSimulation(
        cluster,
        params["load"],
        pattern=pattern,
        seed=seed,
        injector=params.get("injector", "poisson"),
    )


def _workload_simulation(params: dict, cluster) -> Any:
    """Member builder mirroring :func:`repro.evaluation.workloads.simulate_workload_point`."""
    from repro.traffic.simulation import TrafficSimulation

    return TrafficSimulation(
        cluster,
        params["load"],
        pattern=params["pattern"],
        seed=params.get("seed", _default_seed()),
        injector=params["injector"],
    )


#: Adapters of the batchable point functions, keyed by runner path.
def _topology_simulation(params: dict, cluster) -> Any:
    """Member builder mirroring :func:`repro.evaluation.topologies.simulate_topology_point`."""
    from repro.traffic.simulation import TrafficSimulation

    return TrafficSimulation(
        cluster,
        params["load"],
        pattern=params.get("pattern", "uniform"),
        seed=params.get("seed", _default_seed()),
        injector=params.get("injector", "poisson"),
    )


def _trace_simulation(params: dict, cluster) -> Any:
    """Member builder mirroring :func:`repro.evaluation.traces.simulate_trace_point`."""
    from repro.traffic.simulation import TrafficSimulation

    replay = {"path": params["trace"], "sha": params["trace_sha"]}
    return TrafficSimulation(
        cluster,
        params["load"],
        pattern="trace",
        pattern_params=dict(replay),
        seed=params.get("seed", _default_seed()),
        injector="trace",
        injector_params=dict(replay),
    )


BATCHABLE_RUNNERS: dict[str, TrafficAdapter] = {
    "repro.evaluation.fig5:simulate_fig5_point": TrafficAdapter(
        topology=lambda params: params["topology"],
        build_simulation=_fig5_simulation,
    ),
    "repro.evaluation.fig6:simulate_fig6_point": TrafficAdapter(
        topology=lambda params: "toph",
        build_simulation=_fig6_simulation,
    ),
    "repro.evaluation.workloads:simulate_workload_point": TrafficAdapter(
        topology=lambda params: params["topology"],
        build_simulation=_workload_simulation,
    ),
    "repro.evaluation.topologies:simulate_topology_point": TrafficAdapter(
        topology=lambda params: params["topology"],
        build_simulation=_topology_simulation,
    ),
    "repro.evaluation.traces:simulate_trace_point": TrafficAdapter(
        topology=lambda params: params["topology"],
        build_simulation=_trace_simulation,
    ),
}


def spec_group_key(spec: ExperimentSpec) -> tuple | None:
    """The batch-group key of ``spec``, or ``None`` when unbatchable.

    Two specs with equal (non-``None``) keys can share one compiled
    network and cycle loop — the contract both :class:`BatchRunner` and
    the distributed shard planner
    (:func:`repro.experiments.distributed.shards.plan_shards`) group by,
    so a shard shipped to a remote worker still gets per-shard
    ``SimBatch``/``CompiledSimBatch`` packing.
    """
    adapter = BATCHABLE_RUNNERS.get(spec.runner)
    if adapter is None:
        return None
    return (spec.runner,) + adapter.group_key(spec.params)


def plan_batches(specs: Iterable[ExperimentSpec]) -> list[list[int]]:
    """The index groups a :class:`BatchRunner` would form over ``specs``.

    Pure planning — no cache consultation, no execution: specs sharing a
    batchable runner and a compatible cluster configuration (same
    topology, family parameters and scale) group together in first-seen
    order; every non-batchable spec is its own singleton group.  At run
    time singleton groups fall through to the plain executor, so this is
    also the cheap way for tests (and curious users) to see how a
    heterogeneous sweep will actually batch.
    """
    groups: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for index, spec in enumerate(specs):
        key = spec_group_key(spec)
        if key is None:
            key = ("__unbatchable__", index)
        if key not in groups:
            order.append(key)
        groups.setdefault(key, []).append(index)
    return [groups[key] for key in order]


class BatchRunner:
    """Executor front-end that batches compatible traffic specs.

    Parameters
    ----------
    executor : Executor
        The executor whose cache is consulted/updated and which computes
        every spec the runner cannot batch.

    Examples
    --------
    >>> from repro.evaluation.fig5 import fig5_sweep
    >>> from repro.evaluation.settings import ExperimentSettings
    >>> settings = ExperimentSettings(
    ...     engine="batch", warmup_cycles=40, measure_cycles=80)
    >>> specs = fig5_sweep(settings, loads=(0.05, 0.1), topologies=("toph",)).specs()
    >>> results = BatchRunner(Executor()).run(specs)
    >>> [0.0 < result.throughput <= 2 * load for result, load in zip(results, (0.05, 0.1))]
    [True, True]
    """

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self.last_report = ExecutionReport()

    def run(
        self,
        specs: Iterable[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None = None,
    ) -> list[Any]:
        """Execute every spec, batching what can be batched.

        Same contract as :meth:`repro.experiments.executor.Executor.run`:
        results come back in input order, cache hits are served from (and
        fresh results stored into) the executor's cache under unchanged
        spec keys.
        """
        started = time.perf_counter()
        spec_list = list(specs)
        cache = self.executor.cache
        results, miss_indices = self.executor.scan_cache(spec_list)

        groups: dict[tuple, list[int]] = {}
        leftovers: list[int] = []
        for index in miss_indices:
            key = spec_group_key(spec_list[index])
            if key is None:
                leftovers.append(index)
            else:
                groups.setdefault(key, []).append(index)

        for key, indices in groups.items():
            if len(indices) < 2:
                # A batch of one amortises nothing; the executor's plain
                # path is simpler and byte-identical.
                leftovers.extend(indices)
                continue
            for index, value in zip(indices, self._run_group(spec_list, indices)):
                results[index] = value
                if cache is not None:
                    cache.put(spec_list[index].key, value)
                if progress is not None:
                    progress(spec_list[index], value)

        if leftovers:
            leftover_specs = [spec_list[index] for index in leftovers]
            computed = self.executor.compute(leftover_specs, progress)
            for index, value in zip(leftovers, computed):
                results[index] = value

        self.last_report = self.executor.make_report(
            len(spec_list), len(miss_indices), started
        )
        return results

    def _run_group(self, spec_list: list[ExperimentSpec], indices: list[int]) -> list:
        """Run one compatible group as a single TrafficBatch."""
        from repro.core.cluster import MemPoolCluster
        from repro.engine.batch import TrafficBatch
        from repro.evaluation.settings import (
            DEFAULT_MEASURE_CYCLES,
            DEFAULT_WARMUP_CYCLES,
            ExperimentSettings,
        )

        first = spec_list[indices[0]]
        adapter = BATCHABLE_RUNNERS[first.runner]
        # The group inherits the sweep's engine (every spec of a run
        # carries the same one): "batch" members run the deque-based
        # SimBatch, "compiled" members the kernel-backed CompiledSimBatch —
        # TrafficBatch picks the batched engine off the cluster kind.
        engine = first.params.get("engine", "batch")
        settings = ExperimentSettings(
            full_scale=bool(first.params.get("full_scale", False)), engine=engine
        )
        cluster = MemPoolCluster(
            settings.config(
                adapter.topology(first.params),
                topology_params=first.params.get("topology_params") or {},
            ),
            engine=engine,
        )
        simulations = []
        warmups = []
        measures = []
        for index in indices:
            params = spec_list[index].params
            simulations.append(adapter.build_simulation(params, cluster))
            warmups.append(params.get("warmup_cycles", DEFAULT_WARMUP_CYCLES))
            measures.append(params.get("measure_cycles", DEFAULT_MEASURE_CYCLES))
        results = TrafficBatch(simulations).run(warmups, measures)
        # Mirror the point functions' energy attach (same helper, same
        # cluster configuration), so batched and per-point results stay
        # byte-identical under the shared cache keys.
        from repro.energy.traffic import attach_energy

        for index, result in zip(indices, results):
            attach_energy(
                cluster, result, bool(spec_list[index].params.get("energy", False))
            )
        return results
