"""Executes experiment specs — serially or across a process pool — with caching.

The :class:`Executor` is the single code path every evaluation driver runs
through.  Given a list of :class:`~repro.experiments.spec.ExperimentSpec`,
it:

1. looks each spec up in the :class:`~repro.experiments.cache.ResultCache`
   (when one is attached),
2. computes the misses — in-process when ``workers <= 1``, otherwise over a
   ``multiprocessing`` pool (one task per point; the simulator is pure
   Python, so process-level parallelism is the only way past the GIL), and
3. stores fresh results back into the cache and returns everything in the
   original spec order.

Experiment points are independent by construction (each builds its own
cluster and RNGs from the spec parameters), so serial and parallel
execution produce identical results — a property the test-suite asserts.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.cache import MISS, ResultCache
from repro.experiments.spec import ExperimentSpec, execute_spec


@dataclass
class ExecutionReport:
    """What one :meth:`Executor.run` call did: hits, misses, timing."""

    total: int = 0
    cache_hits: int = 0
    computed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    def summary(self) -> str:
        """One-line summary for CLI output.

        Examples
        --------
        >>> ExecutionReport(total=4, cache_hits=3, computed=1, workers=2,
        ...                 elapsed_s=0.5).summary()
        '4 points: 3 cached, 1 computed on 2 workers in 0.5 s'
        """
        return (
            f"{self.total} point{'s' if self.total != 1 else ''}: "
            f"{self.cache_hits} cached, {self.computed} computed on "
            f"{self.workers} worker{'s' if self.workers != 1 else ''} "
            f"in {self.elapsed_s:.1f} s"
        )


class Executor:
    """Runs experiment specs with optional caching and process parallelism.

    Parameters
    ----------
    workers : int
        Number of worker processes.  ``1`` (the default) runs everything
        in-process with no ``multiprocessing`` involvement at all — the
        serial fallback used by tests and library callers.  ``0`` or a
        negative value selects ``os.cpu_count()``.
    cache : ResultCache, optional
        Result cache consulted before computing and updated after.
        ``None`` (the default) disables caching entirely.
    mp_context : multiprocessing context, optional
        Context used to create the pool (e.g.
        ``multiprocessing.get_context("spawn")``).  Defaults to the
        platform default (``fork`` on Linux, which is also the fastest).

    Examples
    --------
    >>> from repro.experiments import ExperimentSpec, Executor
    >>> executor = Executor()
    >>> executor.run([ExperimentSpec("repro.experiments.demo:multiply", {"a": 6, "b": 7})])
    [42]
    >>> executor.last_report.total
    1
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        mp_context=None,
    ) -> None:
        if workers <= 0:
            workers = multiprocessing.cpu_count()
        self.workers = workers
        self.cache = cache
        self._mp_context = mp_context or multiprocessing.get_context()
        self.last_report = ExecutionReport()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        specs: Iterable[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None = None,
    ) -> list[Any]:
        """Execute every spec and return the results in input order.

        Parameters
        ----------
        specs : iterable of ExperimentSpec
            The points to run; a :class:`~repro.experiments.sweep.Sweep`
            works directly since it iterates over its specs.
        progress : callable, optional
            Called as ``progress(spec, result)`` once per *computed* point
            (cache hits are not reported; with multiple workers the call
            order follows completion, not submission).

        Returns
        -------
        list
            One result per spec, aligned with the input order regardless
            of caching or parallel completion order.
        """
        spec_list = list(specs)
        started = time.perf_counter()
        results, miss_indices = self.scan_cache(spec_list)

        if miss_indices:
            fresh = self._compute(
                [spec_list[index] for index in miss_indices], progress
            )
            for index, value in zip(miss_indices, fresh):
                results[index] = value
                if self.cache is not None:
                    self.cache.put(spec_list[index].key, value)

        self.last_report = self.make_report(
            len(spec_list), len(miss_indices), started
        )
        return results

    def scan_cache(
        self, spec_list: Sequence[ExperimentSpec]
    ) -> tuple[list[Any], list[int]]:
        """Partition specs into cached results and cache-miss indices.

        Returns ``(results, miss_indices)``: one slot per spec, filled for
        hits and ``None`` for misses (every index, when no cache is
        attached).  Shared by :meth:`run` and by front-ends that compute
        misses their own way (:class:`repro.experiments.batch.BatchRunner`).
        """
        results: list[Any] = [None] * len(spec_list)
        if self.cache is None:
            return results, list(range(len(spec_list)))
        miss_indices: list[int] = []
        for index, spec in enumerate(spec_list):
            value = self.cache.get(spec.key)
            if value is MISS:
                miss_indices.append(index)
            else:
                results[index] = value
        return results, miss_indices

    def compute(
        self,
        specs: Sequence[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None = None,
    ) -> list[Any]:
        """Compute ``specs`` unconditionally and store fresh results.

        The no-scan half of :meth:`run`: callers that already know these
        specs are cache misses (:class:`repro.experiments.batch.BatchRunner`
        partitioned them via :meth:`scan_cache`) skip the second round of
        cache probes.  Does not touch :attr:`last_report`.
        """
        spec_list = list(specs)
        outputs = self._compute(spec_list, progress)
        if self.cache is not None:
            for spec, value in zip(spec_list, outputs):
                self.cache.put(spec.key, value)
        return outputs

    def make_report(
        self, total: int, computed: int, started: float
    ) -> ExecutionReport:
        """The :class:`ExecutionReport` of a run that began at ``started``."""
        return ExecutionReport(
            total=total,
            cache_hits=total - computed,
            computed=computed,
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
        )

    def _compute(
        self,
        specs: Sequence[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None,
    ) -> list[Any]:
        """Run the cache misses, serially or on the pool."""
        if self.workers <= 1 or len(specs) <= 1:
            outputs = []
            for spec in specs:
                value = execute_spec(spec)
                if progress is not None:
                    progress(spec, value)
                outputs.append(value)
            return outputs
        processes = min(self.workers, len(specs))
        with self._mp_context.Pool(processes=processes) as pool:
            outputs = [None] * len(specs)
            pending = [
                (index, pool.apply_async(execute_spec, (spec,)))
                for index, spec in enumerate(specs)
            ]
            for index, handle in pending:
                value = handle.get()
                outputs[index] = value
                if progress is not None:
                    progress(specs[index], value)
        return outputs


def run_sweep(
    sweep,
    workers: int = 1,
    cache: ResultCache | None = None,
) -> list[Any]:
    """Convenience wrapper: expand ``sweep`` and run it on a fresh executor.

    Examples
    --------
    >>> from repro.experiments import Sweep
    >>> run_sweep(Sweep("repro.experiments.demo:multiply",
    ...                 grid={"a": (4, 9)}, base={"b": 6}))
    [24, 54]
    """
    return Executor(workers=workers, cache=cache).run(sweep)
