"""Executes experiment specs — serially or across a process pool — with caching.

The :class:`Executor` is the single code path every evaluation driver runs
through.  Given a list of :class:`~repro.experiments.spec.ExperimentSpec`,
it:

1. looks each spec up in the attached
   :class:`~repro.experiments.cache.CacheBackend` (when one is attached),
2. computes the misses — in-process when ``workers <= 1``, otherwise over a
   ``multiprocessing`` pool (one task per point; the simulator is pure
   Python, so process-level parallelism is the only way past the GIL), and
3. stores fresh results back into the cache and returns everything in the
   original spec order.

Experiment points are independent by construction (each builds its own
cluster and RNGs from the spec parameters), so serial and parallel
execution produce identical results — a property the test-suite asserts.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.cache import MISS, CacheBackend
from repro.experiments.spec import ExperimentSpec, execute_spec


@dataclass
class ExecutionReport:
    """What one :meth:`Executor.run` call did: hits, misses, timing.

    Distributed runs (:class:`repro.experiments.distributed.DistributedExecutor`)
    additionally fill the scheduler counters: how many shards the sweep
    split into, how many leases were stolen from another worker's queue,
    how many shards were requeued after a crash or an expired lease, and
    the per-worker shard/point tallies.
    """

    total: int = 0
    cache_hits: int = 0
    computed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0
    #: Work units the sweep was split into (0 for non-distributed runs).
    shards: int = 0
    #: Shards a worker pulled from another worker's queue.
    steals: int = 0
    #: Shards put back on a queue after a crash or an expired lease.
    requeues: int = 0
    #: Per-worker tallies: worker name -> {"shards": n, "points": m}.
    per_worker: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line summary for CLI output.

        Examples
        --------
        >>> ExecutionReport(total=4, cache_hits=3, computed=1, workers=2,
        ...                 elapsed_s=0.5).summary()
        '4 points: 3 cached, 1 computed on 2 workers in 0.5 s'
        >>> ExecutionReport(total=4, computed=4, workers=2, elapsed_s=1.0,
        ...                 shards=3, steals=1, requeues=0).summary()
        '4 points: 0 cached, 4 computed on 2 workers in 1.0 s (3 shards, 1 steal, 0 requeues)'
        """
        line = (
            f"{self.total} point{'s' if self.total != 1 else ''}: "
            f"{self.cache_hits} cached, {self.computed} computed on "
            f"{self.workers} worker{'s' if self.workers != 1 else ''} "
            f"in {self.elapsed_s:.1f} s"
        )
        if self.shards:
            line += (
                f" ({self.shards} shard{'s' if self.shards != 1 else ''}, "
                f"{self.steals} steal{'s' if self.steals != 1 else ''}, "
                f"{self.requeues} requeue{'s' if self.requeues != 1 else ''})"
            )
        return line

    def worker_lines(self) -> list[str]:
        """Per-worker shard/point tallies for CLI output, one line each.

        Examples
        --------
        >>> report = ExecutionReport(per_worker={
        ...     "local-0": {"shards": 2, "points": 8}})
        >>> report.worker_lines()
        ['local-0: 2 shards, 8 points']
        """
        return [
            f"{name}: {tally.get('shards', 0)} shard"
            f"{'s' if tally.get('shards', 0) != 1 else ''}, "
            f"{tally.get('points', 0)} point"
            f"{'s' if tally.get('points', 0) != 1 else ''}"
            for name, tally in sorted(self.per_worker.items())
        ]


class Executor:
    """Runs experiment specs with optional caching and process parallelism.

    Parameters
    ----------
    workers : int
        Number of worker processes.  ``1`` (the default) runs everything
        in-process with no ``multiprocessing`` involvement at all — the
        serial fallback used by tests and library callers.  ``0`` or a
        negative value selects ``os.cpu_count()``.
    cache : CacheBackend, optional
        Result cache consulted before computing and updated after — any
        :class:`~repro.experiments.cache.CacheBackend` (on-disk
        :class:`~repro.experiments.cache.ResultCache`, in-memory
        :class:`~repro.experiments.cache.MemoryCache`, or a remote
        :class:`~repro.experiments.distributed.cacheserver.CacheClient`).
        ``None`` (the default) disables caching entirely.
    mp_context : multiprocessing context, optional
        Context used to create the pool (e.g.
        ``multiprocessing.get_context("spawn")``).  Defaults to the
        platform default (``fork`` on Linux, which is also the fastest).

    Examples
    --------
    >>> from repro.experiments import ExperimentSpec, Executor
    >>> executor = Executor()
    >>> executor.run([ExperimentSpec("repro.experiments.demo:multiply", {"a": 6, "b": 7})])
    [42]
    >>> executor.last_report.total
    1
    """

    def __init__(
        self,
        workers: int = 1,
        cache: CacheBackend | None = None,
        mp_context=None,
    ) -> None:
        if workers <= 0:
            workers = multiprocessing.cpu_count()
        self.workers = workers
        self.cache = cache
        self._mp_context = mp_context or multiprocessing.get_context()
        self.last_report = ExecutionReport()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        specs: Iterable[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None = None,
    ) -> list[Any]:
        """Execute every spec and return the results in input order.

        Parameters
        ----------
        specs : iterable of ExperimentSpec
            The points to run; a :class:`~repro.experiments.sweep.Sweep`
            works directly since it iterates over its specs.
        progress : callable, optional
            Called as ``progress(spec, result)`` once per *computed* point
            (cache hits are not reported; with multiple workers the call
            order follows completion, not submission).

        Returns
        -------
        list
            One result per spec, aligned with the input order regardless
            of caching or parallel completion order.
        """
        spec_list = list(specs)
        started = time.perf_counter()
        results, miss_indices = self.scan_cache(spec_list)

        if miss_indices:
            fresh = self._compute(
                [spec_list[index] for index in miss_indices], progress
            )
            for index, value in zip(miss_indices, fresh):
                results[index] = value
                if self.cache is not None:
                    self.cache.put(spec_list[index].key, value)

        self.last_report = self.make_report(
            len(spec_list), len(miss_indices), started
        )
        return results

    def scan_cache(
        self, spec_list: Sequence[ExperimentSpec]
    ) -> tuple[list[Any], list[int]]:
        """Partition specs into cached results and cache-miss indices.

        Returns ``(results, miss_indices)``: one slot per spec, filled for
        hits and ``None`` for misses (every index, when no cache is
        attached).  Shared by :meth:`run` and by front-ends that compute
        misses their own way (:class:`repro.experiments.batch.BatchRunner`).
        """
        results: list[Any] = [None] * len(spec_list)
        if self.cache is None:
            return results, list(range(len(spec_list)))
        miss_indices: list[int] = []
        for index, spec in enumerate(spec_list):
            value = self.cache.get(spec.key)
            if value is MISS:
                miss_indices.append(index)
            else:
                results[index] = value
        return results, miss_indices

    def compute(
        self,
        specs: Sequence[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None = None,
    ) -> list[Any]:
        """Compute ``specs`` unconditionally and store fresh results.

        The no-scan half of :meth:`run`: callers that already know these
        specs are cache misses (:class:`repro.experiments.batch.BatchRunner`
        partitioned them via :meth:`scan_cache`) skip the second round of
        cache probes.  Does not touch :attr:`last_report`.
        """
        spec_list = list(specs)
        outputs = self._compute(spec_list, progress)
        if self.cache is not None:
            for spec, value in zip(spec_list, outputs):
                self.cache.put(spec.key, value)
        return outputs

    def make_report(
        self, total: int, computed: int, started: float
    ) -> ExecutionReport:
        """The :class:`ExecutionReport` of a run that began at ``started``."""
        return ExecutionReport(
            total=total,
            cache_hits=total - computed,
            computed=computed,
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
        )

    def _compute(
        self,
        specs: Sequence[ExperimentSpec],
        progress: Callable[[ExperimentSpec, Any], None] | None,
    ) -> list[Any]:
        """Run the cache misses, serially or on the pool.

        Parallel results are collected in *completion* order through the
        pool's result callbacks — a slow first task can no longer stall
        the ``progress`` callbacks of every faster task behind it
        (head-of-line blocking) — while the returned list stays aligned
        with the input order.
        """
        if self.workers <= 1 or len(specs) <= 1:
            outputs = []
            for spec in specs:
                value = execute_spec(spec)
                if progress is not None:
                    progress(spec, value)
                outputs.append(value)
            return outputs
        processes = min(self.workers, len(specs))
        with self._mp_context.Pool(processes=processes) as pool:
            outputs = [None] * len(specs)
            completions: queue.Queue = queue.Queue()
            for index, spec in enumerate(specs):
                pool.apply_async(
                    execute_spec,
                    (spec,),
                    callback=lambda value, index=index: completions.put(
                        (index, value, None)
                    ),
                    error_callback=lambda error, index=index: completions.put(
                        (index, None, error)
                    ),
                )
            for _ in range(len(specs)):
                index, value, error = completions.get()
                if error is not None:
                    raise error
                outputs[index] = value
                if progress is not None:
                    progress(specs[index], value)
        return outputs


def run_sweep(
    sweep,
    workers: int = 1,
    cache: CacheBackend | None = None,
) -> list[Any]:
    """Convenience wrapper: expand ``sweep`` and run it on a fresh executor.

    Examples
    --------
    >>> from repro.experiments import Sweep
    >>> run_sweep(Sweep("repro.experiments.demo:multiply",
    ...                 grid={"a": (4, 9)}, base={"b": 6}))
    [24, 54]
    """
    return Executor(workers=workers, cache=cache).run(sweep)
