"""Floorplan and routing-congestion model (Section VI-C).

The cluster places its tiles on a regular grid (8x8 for the full system).
The model estimates, for each topology, how much top-level wiring the global
interconnect needs and how much of it has to funnel through the centre of the
design — the congestion mechanism that makes Top4 physically infeasible and
drives the whitespace around the centre of the Top1/TopH macros:

* Top1 / Top4: every remote port of every tile connects to the centralised
  64x64 butterfly, so every connection is drawn towards the centre of the
  die.  Top4 replicates this four times.
* TopH: the local-group crossbars keep 1/4 of the connections inside the
  group quadrants; only the inter-group butterflies cross the centre, and the
  two diagonal group pairs dominate the central channel.

The absolute numbers are estimates; what the model reproduces is the paper's
qualitative result — Top4 roughly four times as congested as Top1, TopH
distributing its wiring across the cluster and being the only
high-performance topology that is physically feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.physical.area import AreaModel, AreaParameters


@dataclass
class CongestionReport:
    """Wiring demand summary of one topology."""

    topology: str
    num_tiles: int
    total_wire_mm: float
    centre_crossing_wires: int
    centre_channel_capacity: int

    @property
    def centre_utilisation(self) -> float:
        """Demand on the central routing channel relative to its capacity."""
        if self.centre_channel_capacity == 0:
            return 0.0
        return self.centre_crossing_wires / self.centre_channel_capacity

    @property
    def feasible(self) -> bool:
        """True if the central channel demand fits its capacity."""
        return self.centre_utilisation <= 1.0


class FloorplanModel:
    """Places tiles on a grid and estimates top-level wiring per topology."""

    #: Data width of one request or response channel (address+data+metadata).
    CHANNEL_BITS = 78
    #: Routing tracks available per millimetre of channel per metal layer.
    TRACKS_PER_MM = 2500
    #: Metal layers available for top-level routing.
    ROUTING_LAYERS = 4

    def __init__(
        self, cluster: MemPoolCluster, area_parameters: AreaParameters | None = None
    ) -> None:
        self.cluster = cluster
        self.config = cluster.config
        self.area_model = AreaModel(cluster, area_parameters)
        tile = self.area_model.tile_breakdown()
        self.tile_pitch_mm = tile.macro_side_um / 1000.0
        side = int(round(self.config.num_tiles**0.5))
        if side * side != self.config.num_tiles:
            # Fall back to the closest rectangular grid.
            side = max(1, side)
        self.grid_side = side

    # ------------------------------------------------------------------ #
    # Placement helpers
    # ------------------------------------------------------------------ #

    def tile_position_mm(self, tile: int) -> tuple[float, float]:
        """Centre coordinates of ``tile`` in the grid floorplan.

        Groups are placed as quadrants (Figure 3b): group 0 top-left, group 1
        top-right, group 2 bottom-left, group 3 bottom-right, with each
        group's tiles forming a sub-grid inside its quadrant.  Configurations
        whose group count is not four fall back to row-major placement.
        """
        config = self.config
        if config.num_groups == 4 and config.tiles_per_group >= 1:
            group = config.group_of_tile(tile)
            local = tile % config.tiles_per_group
            group_side = max(1, int(round(config.tiles_per_group**0.5)))
            if group_side * group_side == config.tiles_per_group:
                quadrant_x = group % 2
                quadrant_y = group // 2
                local_row, local_column = divmod(local, group_side)
                column = quadrant_x * group_side + local_column
                row = quadrant_y * group_side + local_row
                return (
                    (column + 0.5) * self.tile_pitch_mm,
                    (row + 0.5) * self.tile_pitch_mm,
                )
        row, column = divmod(tile, self.grid_side)
        return (
            (column + 0.5) * self.tile_pitch_mm,
            (row + 0.5) * self.tile_pitch_mm,
        )

    def _centre_mm(self) -> tuple[float, float]:
        extent = self.grid_side * self.tile_pitch_mm
        return extent / 2.0, extent / 2.0

    def _group_centre_mm(self, group: int) -> tuple[float, float]:
        tiles = [
            tile
            for tile in range(self.config.num_tiles)
            if self.config.group_of_tile(tile) == group
        ]
        positions = [self.tile_position_mm(tile) for tile in tiles]
        return (
            sum(x for x, _ in positions) / len(positions),
            sum(y for _, y in positions) / len(positions),
        )

    @staticmethod
    def _manhattan(a: tuple[float, float], b: tuple[float, float]) -> float:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    # ------------------------------------------------------------------ #
    # Congestion estimate
    # ------------------------------------------------------------------ #

    def congestion(self) -> CongestionReport:
        topology = self.config.topology
        num_tiles = self.config.num_tiles
        centre = self._centre_mm()
        channel_bits = self.CHANNEL_BITS * 2  # request + response networks

        total_wire_mm = 0.0
        centre_wires = 0

        if topology in ("top1", "top4"):
            ports_per_tile = 1 if topology == "top1" else self.config.cores_per_tile
            for tile in range(num_tiles):
                distance = self._manhattan(self.tile_position_mm(tile), centre)
                total_wire_mm += distance * ports_per_tile * channel_bits / 1000.0
                centre_wires += ports_per_tile * channel_bits
        elif topology == "toph":
            groups = self.config.num_groups
            # Local-group wiring: tiles to their group centre (never crosses
            # the cluster centre).
            for tile in range(num_tiles):
                group_centre = self._group_centre_mm(self.config.group_of_tile(tile))
                distance = self._manhattan(self.tile_position_mm(tile), group_centre)
                total_wire_mm += distance * channel_bits / 1000.0
            # Inter-group wiring: one channel per tile per remote group, routed
            # between group centres; only diagonal group pairs cross the centre.
            tiles_per_group = self.config.tiles_per_group
            for src_group in range(groups):
                for dst_group in range(groups):
                    if src_group == dst_group:
                        continue
                    src_centre = self._group_centre_mm(src_group)
                    dst_centre = self._group_centre_mm(dst_group)
                    distance = self._manhattan(src_centre, dst_centre)
                    total_wire_mm += distance * tiles_per_group * channel_bits / 1000.0
                    if self._is_diagonal_pair(src_group, dst_group):
                        centre_wires += tiles_per_group * channel_bits
        else:  # topx: the idealised crossbar has no physical implementation
            for tile in range(num_tiles):
                distance = self._manhattan(self.tile_position_mm(tile), centre)
                total_wire_mm += (
                    distance * self.config.cores_per_tile * channel_bits / 1000.0
                ) * self.config.banks_per_tile
                centre_wires += (
                    self.config.cores_per_tile * self.config.banks_per_tile * channel_bits
                )

        capacity = int(
            self.grid_side * self.tile_pitch_mm * self.TRACKS_PER_MM * self.ROUTING_LAYERS
        )
        return CongestionReport(
            topology=topology,
            num_tiles=num_tiles,
            total_wire_mm=total_wire_mm,
            centre_crossing_wires=centre_wires,
            centre_channel_capacity=capacity,
        )

    def _is_diagonal_pair(self, src_group: int, dst_group: int) -> bool:
        """True if the two groups sit diagonally (their channel crosses the centre)."""
        src = self._group_centre_mm(src_group)
        dst = self._group_centre_mm(dst_group)
        return src[0] != dst[0] and src[1] != dst[1]

    def compare_topologies(self) -> dict[str, CongestionReport]:
        """Congestion reports of every implementable topology at this size."""
        from repro.core.cluster import MemPoolCluster as _Cluster

        reports = {}
        for topology in ("top1", "top4", "toph"):
            config = self.config.with_topology(topology)
            reports[topology] = FloorplanModel(
                _Cluster(config), self.area_model.parameters
            ).congestion()
        return reports
