"""Analytical physical models: area, timing and floorplan/congestion (Section VI)."""

from repro.physical.area import AreaModel, AreaParameters, TileAreaBreakdown, ClusterAreaReport
from repro.physical.timing import CriticalPath, TimingModel, TimingParametersPhysical
from repro.physical.floorplan import CongestionReport, FloorplanModel

__all__ = [
    "AreaModel",
    "AreaParameters",
    "TileAreaBreakdown",
    "ClusterAreaReport",
    "TimingModel",
    "TimingParametersPhysical",
    "CriticalPath",
    "FloorplanModel",
    "CongestionReport",
]
