"""Critical-path timing model (Section VI-B / VI-C).

The paper reports two critical paths:

* inside the tile: 53 gates from a register after the instruction cache,
  through the second Snitch core and the request interconnect, into an SPM
  bank;
* at the cluster level (TopH): 36 gates of which 27 are buffers or inverter
  pairs, with wire propagation accounting for 37 % of the path delay — the
  path starts at a local-group boundary, crosses the centre of the cluster
  and ends at the ROB of a Snitch core.

The TopH cluster closes timing at 500 MHz in the worst case corner
(SS / 0.72 V / 125 C) and runs at 700 MHz in typical conditions
(TT / 0.80 V / 25 C); worst-case operation reaches 480 MHz.

The model keeps per-corner gate and wire delays (calibrated for GF 22FDX) and
evaluates named paths made of logic gates, buffers and millimetres of
buffered wire, reproducing those headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingParametersPhysical:
    """Per-corner delay coefficients."""

    #: Average delay of a logic gate on the critical path, per corner (ns).
    gate_delay_ns: dict[str, float] = None  # type: ignore[assignment]
    #: Average delay of a buffer / inverter-pair stage, per corner (ns).
    buffer_delay_ns: dict[str, float] = None  # type: ignore[assignment]
    #: Delay of one millimetre of buffered top-level wire, per corner (ns).
    wire_delay_ns_per_mm: dict[str, float] = None  # type: ignore[assignment]
    #: Clock uncertainty + setup margin (ns).
    margin_ns: float = 0.08

    def __post_init__(self) -> None:
        if self.gate_delay_ns is None:
            object.__setattr__(self, "gate_delay_ns", {"typical": 0.025, "worst": 0.036})
        if self.buffer_delay_ns is None:
            object.__setattr__(self, "buffer_delay_ns", {"typical": 0.022, "worst": 0.033})
        if self.wire_delay_ns_per_mm is None:
            object.__setattr__(
                self, "wire_delay_ns_per_mm", {"typical": 0.115, "worst": 0.16}
            )


@dataclass(frozen=True)
class CriticalPath:
    """A named critical path: logic gates, buffer stages and wire length."""

    name: str
    logic_gates: int
    buffer_gates: int
    wire_mm: float

    @property
    def total_gates(self) -> int:
        return self.logic_gates + self.buffer_gates

    @property
    def buffer_fraction(self) -> float:
        return self.buffer_gates / self.total_gates if self.total_gates else 0.0


#: The tile-level critical path: I$ output register -> Snitch core 2 ->
#: request interconnect -> SPM bank (53 gates, negligible top-level wire).
TILE_CRITICAL_PATH = CriticalPath("tile", logic_gates=44, buffer_gates=9, wire_mm=0.30)

#: The TopH cluster critical path: group boundary -> centre of the cluster ->
#: another group -> ROB of a Snitch core (36 gates, 27 of them buffers).
CLUSTER_CRITICAL_PATH = CriticalPath("cluster", logic_gates=9, buffer_gates=27, wire_mm=4.5)


class TimingModel:
    """Evaluates critical paths and achievable frequencies per corner."""

    CORNERS = ("typical", "worst")

    def __init__(self, parameters: TimingParametersPhysical | None = None) -> None:
        self.parameters = parameters or TimingParametersPhysical()

    def path_delay_ns(self, path: CriticalPath, corner: str) -> float:
        """Total delay of ``path`` at ``corner`` (including margin)."""
        self._check_corner(corner)
        parameters = self.parameters
        logic = path.logic_gates * parameters.gate_delay_ns[corner]
        buffers = path.buffer_gates * parameters.buffer_delay_ns[corner]
        wire = path.wire_mm * parameters.wire_delay_ns_per_mm[corner]
        return logic + buffers + wire + parameters.margin_ns

    def wire_fraction(self, path: CriticalPath, corner: str) -> float:
        """Fraction of the path delay spent in wire propagation."""
        self._check_corner(corner)
        total = self.path_delay_ns(path, corner) - self.parameters.margin_ns
        wire = path.wire_mm * self.parameters.wire_delay_ns_per_mm[corner]
        return wire / total if total else 0.0

    def frequency_mhz(self, path: CriticalPath, corner: str) -> float:
        """Maximum clock frequency the path allows at ``corner``."""
        return 1000.0 / self.path_delay_ns(path, corner)

    def cluster_frequencies(self) -> dict[str, float]:
        """Achievable cluster frequency (MHz) per corner, limited by the slower path."""
        frequencies = {}
        for corner in self.CORNERS:
            frequencies[corner] = min(
                self.frequency_mhz(TILE_CRITICAL_PATH, corner),
                self.frequency_mhz(CLUSTER_CRITICAL_PATH, corner),
            )
        return frequencies

    def _check_corner(self, corner: str) -> None:
        if corner not in self.CORNERS:
            raise ValueError(f"unknown corner {corner!r}; expected one of {self.CORNERS}")
