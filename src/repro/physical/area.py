"""Area model of the MemPool tile and cluster (Section VI-B / VI-C).

The paper implements the tile as a 425 um x 425 um macro (908 kGE) with a
standard-cell utilisation of 72.8 %, dominated by the L1 SPM (40.2 % of the
placed area) and the instruction cache (23.6 %).  The full cluster is a
4.6 mm x 4.6 mm macro in which the 64 tiles cover 55 % of the area, the rest
being consumed by the global interconnect and the congestion-driven
whitespace around the centre of the design.

The model computes component areas bottom-up — SRAM macros from their
capacity, logic blocks from gate-equivalent counts, interconnect from the
crosspoint counts of the instantiated topology — and derives the same summary
figures the paper reports.  The technology coefficients are calibrated for
GLOBALFOUNDRIES 22FDX.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.interconnect.topology import Top1Topology, Top4Topology, TopHTopology


@dataclass(frozen=True)
class AreaParameters:
    """Technology and microarchitecture area coefficients (GF 22FDX)."""

    #: Area of one gate equivalent (a NAND2) in um^2.
    ge_um2: float = 0.199
    #: Gate-equivalent count of one Snitch core (Section III-B).
    snitch_core_kge: float = 21.0
    #: SPM SRAM density in um^2 per bit (macro, including periphery).
    spm_um2_per_bit: float = 0.40
    #: Instruction-cache data-array density in um^2 per bit.
    icache_um2_per_bit: float = 0.55
    #: Instruction-cache control/tag/lookup logic per tile, in kGE.
    icache_control_kge: float = 110.0
    #: Gate equivalents per 32-bit crossbar crosspoint (mux + arbitration).
    crosspoint_ge: float = 150.0
    #: Gate equivalents per 32-bit elastic-buffer/register boundary.
    register_ge: float = 700.0
    #: Other per-tile logic (ROBs, AXI plumbing, address scrambler), in kGE.
    tile_misc_kge: float = 110.0
    #: Standard-cell utilisation achieved inside the tile macro.
    tile_utilisation: float = 0.728
    #: Fraction of the cluster area the tiles cover (congestion-driven).
    cluster_tile_coverage: dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cluster_tile_coverage is None:
            # Calibrated per topology: TopH is the physically feasible design
            # with 55 % coverage; Top1 routes everything through the centre;
            # Top4 is four times as congested and infeasible at speed.
            object.__setattr__(
                self,
                "cluster_tile_coverage",
                {"top1": 0.58, "top4": 0.42, "toph": 0.55, "topx": 0.70},
            )


@dataclass
class TileAreaBreakdown:
    """Component areas of one tile, in um^2."""

    cores_um2: float
    spm_um2: float
    icache_um2: float
    interconnect_um2: float
    misc_um2: float
    utilisation: float
    ge_um2: float

    @property
    def placed_um2(self) -> float:
        return (
            self.cores_um2
            + self.spm_um2
            + self.icache_um2
            + self.interconnect_um2
            + self.misc_um2
        )

    @property
    def macro_um2(self) -> float:
        return self.placed_um2 / self.utilisation

    @property
    def macro_side_um(self) -> float:
        return self.macro_um2**0.5

    @property
    def total_kge(self) -> float:
        return self.macro_um2 / self.ge_um2 / 1000.0

    def share(self, component_um2: float) -> float:
        """Fraction of the *placed* area used by one component."""
        return component_um2 / self.placed_um2 if self.placed_um2 else 0.0

    def rows(self) -> list[tuple[str, float, float]]:
        return [
            ("snitch cores (4x)", self.cores_um2, self.share(self.cores_um2)),
            ("l1 spm (16 banks)", self.spm_um2, self.share(self.spm_um2)),
            ("instruction cache", self.icache_um2, self.share(self.icache_um2)),
            ("tile interconnect", self.interconnect_um2, self.share(self.interconnect_um2)),
            ("other logic", self.misc_um2, self.share(self.misc_um2)),
        ]


@dataclass
class ClusterAreaReport:
    """Cluster-level area summary."""

    topology: str
    num_tiles: int
    tile_macro_um2: float
    tile_coverage: float
    global_interconnect_um2: float

    @property
    def tiles_um2(self) -> float:
        return self.tile_macro_um2 * self.num_tiles

    @property
    def cluster_um2(self) -> float:
        return self.tiles_um2 / self.tile_coverage

    @property
    def cluster_side_mm(self) -> float:
        return (self.cluster_um2**0.5) / 1000.0


class AreaModel:
    """Computes tile and cluster area figures for one configuration."""

    def __init__(
        self, cluster: MemPoolCluster, parameters: AreaParameters | None = None
    ) -> None:
        self.cluster = cluster
        self.parameters = parameters or AreaParameters()

    # ------------------------------------------------------------------ #
    # Tile
    # ------------------------------------------------------------------ #

    def _tile_interconnect_crosspoints(self) -> int:
        """Crosspoints of the request/response crossbars inside one tile."""
        config = self.cluster.config
        remote_ports = self.cluster.topology.remote_ports_per_tile()
        cores = config.cores_per_tile
        banks = config.banks_per_tile
        # Request crossbar: local cores + remote slave ports to every bank;
        # response crossbar mirrors it; plus the core-to-remote-port router.
        request = (cores + remote_ports) * banks
        response = banks * (cores + remote_ports)
        router = cores * remote_ports * 2
        return request + response + router

    def _tile_register_count(self) -> int:
        """Register boundaries per tile (master request + response ports)."""
        return 2 * self.cluster.topology.remote_ports_per_tile()

    def tile_breakdown(self) -> TileAreaBreakdown:
        parameters = self.parameters
        config = self.cluster.config
        cores_um2 = (
            config.cores_per_tile * parameters.snitch_core_kge * 1000.0 * parameters.ge_um2
        )
        spm_um2 = config.spm_bytes_per_tile * 8 * parameters.spm_um2_per_bit
        icache_um2 = (
            config.icache_bytes_per_tile * 8 * parameters.icache_um2_per_bit
            + parameters.icache_control_kge * 1000.0 * parameters.ge_um2
        )
        interconnect_ge = (
            self._tile_interconnect_crosspoints() * parameters.crosspoint_ge
            + self._tile_register_count() * parameters.register_ge
        )
        interconnect_um2 = interconnect_ge * parameters.ge_um2
        misc_um2 = parameters.tile_misc_kge * 1000.0 * parameters.ge_um2
        return TileAreaBreakdown(
            cores_um2=cores_um2,
            spm_um2=spm_um2,
            icache_um2=icache_um2,
            interconnect_um2=interconnect_um2,
            misc_um2=misc_um2,
            utilisation=parameters.tile_utilisation,
            ge_um2=parameters.ge_um2,
        )

    # ------------------------------------------------------------------ #
    # Cluster
    # ------------------------------------------------------------------ #

    def _global_interconnect_crosspoints(self) -> int:
        """Crosspoints of the cluster-level networks (outside the tiles)."""
        topology = self.cluster.topology
        crosspoints = 0
        if isinstance(topology, Top1Topology):
            crosspoints += topology.request_butterfly.crosspoints
            crosspoints += topology.response_butterfly.crosspoints
        elif isinstance(topology, Top4Topology):
            for butterfly in topology.request_butterflies + topology.response_butterflies:
                crosspoints += butterfly.crosspoints
        elif isinstance(topology, TopHTopology):
            for xbar in topology.local_request_xbars + topology.local_response_xbars:
                crosspoints += xbar.crosspoints
            for butterfly in list(topology.group_request_butterflies.values()) + list(
                topology.group_response_butterflies.values()
            ):
                crosspoints += butterfly.crosspoints
        return crosspoints

    def cluster_report(self) -> ClusterAreaReport:
        parameters = self.parameters
        config = self.cluster.config
        tile = self.tile_breakdown()
        coverage = parameters.cluster_tile_coverage.get(config.topology, 0.55)
        global_ic_um2 = (
            self._global_interconnect_crosspoints() * parameters.crosspoint_ge
            * parameters.ge_um2
        )
        return ClusterAreaReport(
            topology=config.topology,
            num_tiles=config.num_tiles,
            tile_macro_um2=tile.macro_um2,
            tile_coverage=coverage,
            global_interconnect_um2=global_ic_um2,
        )
