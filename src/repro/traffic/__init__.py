"""Synthetic traffic generation and measurement (Section V-A / V-B)."""

from repro.traffic.generator import (
    LocalBiasedPattern,
    PoissonInjector,
    TrafficPattern,
    UniformRandomPattern,
)
from repro.traffic.simulation import TrafficResult, TrafficSimulation, run_load_sweep

__all__ = [
    "TrafficPattern",
    "UniformRandomPattern",
    "LocalBiasedPattern",
    "PoissonInjector",
    "TrafficSimulation",
    "TrafficResult",
    "run_load_sweep",
]
