"""Synthetic traffic generation and measurement (Section V-A / V-B).

Workload selection (destination patterns, injection processes) lives in
:mod:`repro.workloads`; this package drives a selected workload through a
cluster open-loop and measures throughput and latency.
"""

from repro.traffic.generator import (
    LocalBiasedPattern,
    PoissonInjector,
    TrafficPattern,
    UniformRandomPattern,
)
from repro.traffic.simulation import TrafficResult, TrafficSimulation, run_load_sweep

__all__ = [
    "TrafficPattern",
    "UniformRandomPattern",
    "LocalBiasedPattern",
    "PoissonInjector",
    "TrafficSimulation",
    "TrafficResult",
    "run_load_sweep",
]
