"""Synthetic traffic generators (compatibility shim over :mod:`repro.workloads`).

Section V-A: *"Each core is replaced by a synthetic traffic generator, which
generates new requests following a Poisson process of rate lambda.  The
requests have a random uniformly distributed destination memory bank."*
Section V-B adds the locality knob (``p_local``) used to evaluate the
hybrid addressing scheme.

The implementations moved to the pluggable workload subsystem:

* :class:`repro.workloads.base.DestinationPattern` (historically named
  ``TrafficPattern`` here — the alias is kept for subclasses in the wild),
* :class:`repro.workloads.patterns.UniformRandomPattern` /
  :class:`~repro.workloads.patterns.LocalBiasedPattern`,
* :class:`repro.workloads.injection.PoissonInjector`.

RNG hygiene: these three legacy components are *grandfathered* onto the
seed repository's shared streams — ``random.Random(seed)`` for the
patterns, ``random.Random(seed ^ 0x5EED)`` for the injector, same draw
order — so fixed-seed figure outputs stay bit-identical.  Everything else
in the catalogue draws from per-core substreams; the full reproducibility
contract is documented in :mod:`repro.workloads.rng`.
"""

from __future__ import annotations

from repro.workloads.base import DestinationPattern
from repro.workloads.injection import PoissonInjector
from repro.workloads.patterns import LocalBiasedPattern, UniformRandomPattern

#: Historical name of the destination-pattern base class; kept so existing
#: subclasses (and the equivalence tests' ad-hoc patterns) keep working.
TrafficPattern = DestinationPattern

__all__ = [
    "TrafficPattern",
    "UniformRandomPattern",
    "LocalBiasedPattern",
    "PoissonInjector",
]
