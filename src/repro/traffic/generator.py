"""Synthetic traffic generators.

Section V-A: *"Each core is replaced by a synthetic traffic generator, which
generates new requests following a Poisson process of rate lambda.  The
requests have a random uniformly distributed destination memory bank."*

Section V-B adds the locality knob used to evaluate the hybrid addressing
scheme: a request targets the core's own tile (its sequential region) with
probability ``p_local`` and any bank of the cluster otherwise.
"""

from __future__ import annotations

import random

from repro.core.config import MemPoolConfig
from repro.utils.validation import check_in_range, check_non_negative


class TrafficPattern:
    """Chooses the destination bank of each generated request."""

    def __init__(self, config: MemPoolConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = random.Random(seed)

    def destination(self, core_id: int) -> int:
        """Return the global bank index targeted by a new request of ``core_id``."""
        raise NotImplementedError


class UniformRandomPattern(TrafficPattern):
    """Uniformly random destination over every bank of the cluster (Figure 5)."""

    def destination(self, core_id: int) -> int:
        """A uniformly random destination bank for ``core_id``."""
        return self.rng.randrange(self.config.num_banks)


class LocalBiasedPattern(TrafficPattern):
    """Destination in the core's own tile with probability ``p_local`` (Figure 6).

    With probability ``p_local`` the request goes to a uniformly chosen bank
    of the issuing core's tile — modelling an access to the tile's sequential
    region under the hybrid addressing scheme.  Otherwise the destination is
    uniform over the whole cluster, as in the interleaved regime.
    """

    def __init__(self, config: MemPoolConfig, p_local: float, seed: int = 0) -> None:
        super().__init__(config, seed)
        check_in_range("p_local", p_local, 0.0, 1.0)
        self.p_local = p_local

    def destination(self, core_id: int) -> int:
        """A bank in the core's own tile with probability ``p_local``, else uniform."""
        config = self.config
        if self.rng.random() < self.p_local:
            tile = config.tile_of_core(core_id)
            return tile * config.banks_per_tile + self.rng.randrange(config.banks_per_tile)
        return self.rng.randrange(config.num_banks)


class PoissonInjector:
    """Per-core Poisson arrival process with rate ``injection_rate`` req/cycle."""

    def __init__(self, num_cores: int, injection_rate: float, seed: int = 0) -> None:
        check_non_negative("injection_rate", injection_rate)
        self.injection_rate = injection_rate
        self.rng = random.Random(seed ^ 0x5EED)
        self._next_arrival = [
            self._first_arrival() for _ in range(num_cores)
        ]

    def _first_arrival(self) -> float:
        if self.injection_rate == 0.0:
            return float("inf")
        # Desynchronise the cores by starting each process at a random phase.
        return self.rng.uniform(0.0, 1.0 / self.injection_rate)

    def _interarrival(self) -> float:
        return self.rng.expovariate(self.injection_rate)

    def arrivals(self, core_id: int, cycle: int) -> int:
        """Number of new requests core ``core_id`` generates during ``cycle``."""
        if self.injection_rate == 0.0:
            return 0
        count = 0
        next_arrival = self._next_arrival[core_id]
        while next_arrival <= cycle:
            count += 1
            next_arrival += self._interarrival()
        self._next_arrival[core_id] = next_arrival
        return count

    def arrivals_batch(self, cycle: int) -> list[tuple[int, int]]:
        """Arrival counts of every core for ``cycle``, as ``(core, count)`` pairs.

        Equivalent to calling :meth:`arrivals` for every core in ascending
        order — the shared random stream is consumed in exactly the same
        sequence, so mixing the two APIs across cycles is safe — but cores
        with no due arrival cost a single comparison instead of a method
        call.  Only cores with at least one arrival appear in the result.
        Used by the vector traffic driver (:mod:`repro.engine.traffic`).
        """
        if self.injection_rate == 0.0:
            return []
        batch: list[tuple[int, int]] = []
        next_arrival = self._next_arrival
        interarrival = self._interarrival
        for core_id, due in enumerate(next_arrival):
            if due > cycle:
                continue
            count = 0
            while due <= cycle:
                count += 1
                due += interarrival()
            next_arrival[core_id] = due
            batch.append((core_id, count))
        return batch
