"""Open-loop traffic simulation used for the network analysis of Section V.

Each core is replaced by a synthetic generator feeding an unbounded source
queue; the head of each queue is injected into the interconnect whenever the
first register stage of its path can accept it.  Accepted throughput and
average round-trip latency (including source queueing) are measured over a
window that starts after a warm-up period, which is how the saturation
behaviour shown in Figures 5 and 6 emerges.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.traffic.generator import PoissonInjector, TrafficPattern, UniformRandomPattern
from repro.utils.rotation import PermutationSchedule
from repro.utils.stats import Histogram, OnlineStats
from repro.workloads.base import InjectionProcess
from repro.workloads.registry import make_injector, make_pattern


@dataclass
class TrafficResult:
    """Outcome of one traffic-simulation point (one injected-load value).

    Raises
    ------
    ValueError
        At construction, when ``measured_cycles`` or ``num_cores`` is not
        positive — such a point has no defined throughput, and failing
        early beats a ``ZeroDivisionError`` deep inside a report table.
    """

    topology: str
    injected_load: float
    measured_cycles: int
    num_cores: int
    generated_requests: int
    injected_requests: int
    completed_requests: int
    average_latency: float
    p95_latency: int
    max_latency: int
    local_fraction: float
    #: Optional per-flit completion log, ``(flit_id, core, bank, created,
    #: injected, completed)`` tuples in completion order; populated only
    #: when the simulation ran with ``record_flits=True`` (used by the
    #: engine-equivalence tests).
    flit_log: list[tuple[int, int, int, int, int, int]] | None = None
    #: Optional wire-energy summary of the measurement window
    #: (:class:`repro.energy.traffic.TrafficEnergySummary`), attached by
    #: the point functions when they run with ``energy=True``.  Derived
    #: deterministically from the result's own counters, so equivalent
    #: runs on different engines carry identical summaries.
    energy: object | None = None

    def __post_init__(self) -> None:
        if self.measured_cycles <= 0:
            raise ValueError(
                "TrafficResult needs a positive measurement window to define "
                f"throughput; got measured_cycles={self.measured_cycles}"
            )
        if self.num_cores <= 0:
            raise ValueError(
                "TrafficResult needs at least one core to define throughput; "
                f"got num_cores={self.num_cores}"
            )

    @property
    def throughput(self) -> float:
        """Accepted throughput in requests per core per cycle."""
        return self.completed_requests / (self.num_cores * self.measured_cycles)

    @property
    def offered_load(self) -> float:
        """Offered load in requests per core per cycle (alias of injected_load)."""
        return self.injected_load

    def as_row(self) -> list[float]:
        """Row used by the textual figure reports."""
        return [
            self.injected_load,
            self.throughput,
            self.average_latency,
            float(self.p95_latency),
        ]


class TrafficSimulation:
    """Drives synthetic traffic through one cluster configuration.

    Parameters
    ----------
    cluster : MemPoolCluster
        The cluster under test (either engine).
    injection_rate : float
        Offered load in requests per core per cycle.
    pattern : TrafficPattern or str, optional
        The destination pattern, as an instance or a registry name from
        :func:`repro.workloads.available_patterns`; uniform random by
        default.
    seed : int
        Experiment seed shared by pattern, injector and injection
        schedule (workload components derive disjoint substreams from
        it, see :mod:`repro.workloads.rng`).
    injector : InjectionProcess or str, optional
        The injection process, as an instance or a registry name from
        :func:`repro.workloads.available_injectors`; Poisson (the
        paper's process) by default.
    pattern_params, injector_params : dict, optional
        Registry parameters (e.g. ``{"p_local": 0.25}``) applied when
        the corresponding component is given by name; rejected with an
        instance, which is already fully constructed.
    """

    def __init__(
        self,
        cluster: MemPoolCluster,
        injection_rate: float,
        pattern: TrafficPattern | str | None = None,
        seed: int = 0,
        injector: InjectionProcess | str | None = None,
        pattern_params: dict | None = None,
        injector_params: dict | None = None,
    ) -> None:
        self.cluster = cluster
        if isinstance(pattern, str):
            pattern = make_pattern(
                pattern, cluster.config, seed=seed, **(pattern_params or {})
            )
        elif pattern_params:
            raise ValueError(
                "pattern_params only apply when the pattern is given by "
                "registry name; got an already-built pattern instance"
            )
        self.pattern = pattern or UniformRandomPattern(cluster.config, seed=seed)
        self.injection_rate = injection_rate
        if isinstance(injector, str):
            injector = make_injector(
                injector,
                cluster.config.num_cores,
                injection_rate,
                seed=seed,
                **(injector_params or {}),
            )
        elif injector_params:
            raise ValueError(
                "injector_params only apply when the injector is given by "
                "registry name; got an already-built injector instance"
            )
        if injector is not None and injector.injection_rate != injection_rate:
            raise ValueError(
                f"injector rate {injector.injection_rate} disagrees with the "
                f"simulation's injection_rate {injection_rate}; the result "
                "would be labelled with the wrong offered load"
            )
        self.injector = injector or PoissonInjector(
            cluster.config.num_cores, injection_rate, seed=seed
        )
        self._queues: list[deque] = [deque() for _ in range(cluster.config.num_cores)]
        #: Source queues of engine rows used by the vector and batch fast
        #: paths — persistent across run() calls, mirroring ``self._queues``
        #: on the legacy path, so back-to-back measurement windows see the
        #: same backlog on every engine.
        self._row_queues: list[deque] | None = (
            [deque() for _ in range(cluster.config.num_cores)]
            if getattr(cluster, "engine_kind", "legacy")
            in ("vector", "batch", "compiled")
            else None
        )
        #: Single-member batch context of the ``batch`` engine, built
        #: lazily on the first run() and reused so repeated windows keep
        #: the engine state, like the other engines do.
        self._traffic_batch = None
        self._injection_schedule = PermutationSchedule(
            cluster.config.num_cores, seed=seed + 1
        )
        self._local_requests = 0
        self._total_requests = 0

    # ------------------------------------------------------------------ #
    # Per-cycle behaviour
    # ------------------------------------------------------------------ #

    def _generate(self, cycle: int) -> int:
        cluster = self.cluster
        generated = 0
        for core_id, queue in enumerate(self._queues):
            for _ in range(self.injector.arrivals(core_id, cycle)):
                bank_id = self.pattern.destination(core_id)
                flit = cluster.make_bank_flit(
                    core_id, bank_id, is_write=False, cycle=cycle
                )
                queue.append(flit)
                generated += 1
                self._total_requests += 1
                if cluster.is_local_bank(core_id, bank_id):
                    self._local_requests += 1
        return generated

    def _inject(self, cycle: int) -> int:
        network = self.cluster.network
        injected = 0
        queues = self._queues
        for index in self._injection_schedule.order(cycle):
            queue = queues[index]
            if queue and network.try_inject(queue[0], cycle):
                queue.popleft()
                injected += 1
        return injected

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def run(
        self,
        warmup_cycles: int = 500,
        measure_cycles: int = 1500,
        record_flits: bool = False,
    ) -> TrafficResult:
        """Warm the network up, then measure throughput and latency.

        On a cluster built with ``engine="vector"`` the whole loop runs on
        the structure-of-arrays engine (:mod:`repro.engine.traffic`) — same
        random streams, flit-for-flit identical results, several times
        faster.  ``engine="compiled"`` runs the same loop over the
        ring-buffer kernel engine (:mod:`repro.engine.compiled`, JIT-built
        when numba is installed).  ``engine="batch"`` runs the same loop as
        a single-member :class:`~repro.engine.batch.TrafficBatch` (whole
        sweeps batch their members through
        :class:`~repro.experiments.batch.BatchRunner`).  ``record_flits``
        attaches the per-flit completion log to the result (see
        :attr:`TrafficResult.flit_log`).
        """
        engine_kind = getattr(self.cluster, "engine_kind", "legacy")
        if engine_kind in ("vector", "compiled"):
            from repro.engine.traffic import run_vector_traffic

            return run_vector_traffic(
                self, warmup_cycles, measure_cycles, record_flits=record_flits
            )
        if engine_kind == "batch":
            from repro.engine.batch import TrafficBatch

            if self._traffic_batch is None:
                self._traffic_batch = TrafficBatch([self])
            return self._traffic_batch.run(
                warmup_cycles, measure_cycles, record_flits=record_flits
            )[0]
        network = self.cluster.network
        latency = OnlineStats()
        histogram = Histogram()
        flit_log: list[tuple[int, int, int, int, int, int]] = []
        completed_in_window = 0
        generated_in_window = 0
        injected_in_window = 0
        total_cycles = warmup_cycles + measure_cycles
        for cycle in range(total_cycles):
            completions = network.advance(cycle)
            measuring = cycle >= warmup_cycles
            if measuring:
                completed_in_window += len(completions)
                for flit in completions:
                    latency.add(flit.latency)
                    histogram.add(flit.latency)
            if record_flits:
                for flit in completions:
                    flit_log.append(
                        (
                            flit.flit_id,
                            flit.core_id,
                            flit.bank_id,
                            flit.created_cycle,
                            flit.injected_cycle,
                            flit.completed_cycle,
                        )
                    )
            generated = self._generate(cycle)
            injected = self._inject(cycle)
            if measuring:
                generated_in_window += generated
                injected_in_window += injected
        local_fraction = (
            self._local_requests / self._total_requests if self._total_requests else 0.0
        )
        return TrafficResult(
            topology=self.cluster.config.topology,
            injected_load=self.injection_rate,
            measured_cycles=measure_cycles,
            num_cores=self.cluster.config.num_cores,
            generated_requests=generated_in_window,
            injected_requests=injected_in_window,
            completed_requests=completed_in_window,
            average_latency=latency.mean,
            p95_latency=histogram.percentile(0.95),
            max_latency=int(latency.maximum) if latency.count else 0,
            local_fraction=local_fraction,
            flit_log=flit_log if record_flits else None,
        )


def run_load_sweep(
    make_cluster,
    loads,
    pattern_factory=None,
    warmup_cycles: int = 500,
    measure_cycles: int = 1500,
    seed: int = 0,
    pattern: str | None = None,
    injector: str | None = None,
) -> list[TrafficResult]:
    """Run one traffic simulation per injected load value.

    ``make_cluster`` is a zero-argument callable building a fresh cluster for
    each point (the stage network keeps state, so points must not share one).
    ``pattern_factory`` maps a cluster to a :class:`TrafficPattern`; the
    default is uniform random traffic.  Alternatively ``pattern`` /
    ``injector`` select registered workloads by name (mutually exclusive
    with ``pattern_factory``).
    """
    if pattern_factory is not None and pattern is not None:
        raise ValueError("pass either pattern_factory or pattern, not both")
    results = []
    for load in loads:
        cluster = make_cluster()
        chosen = pattern_factory(cluster) if pattern_factory else pattern
        simulation = TrafficSimulation(
            cluster, load, pattern=chosen, seed=seed, injector=injector
        )
        results.append(
            simulation.run(warmup_cycles=warmup_cycles, measure_cycles=measure_cycles)
        )
    return results
