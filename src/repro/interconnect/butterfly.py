"""Radix-r butterfly (omega) networks built from crossbar switches.

Figure 1 of the paper shows the 16x16 radix-4 butterfly used between tiles:
``log4(N)`` layers of ``N/4`` fully connected 4x4 switches.  MemPool uses the
minimal, oblivious variant — there is exactly one path between every
master/slave pair, selected digit-by-digit from the destination index.

The implementation uses the omega-network formulation: before each switching
layer the ports undergo a radix-``r`` perfect shuffle (a left-rotation of the
base-``r`` digit string), and each layer's switch forwards the request to the
output selected by the next most-significant digit of the destination.
"""

from __future__ import annotations

from repro.interconnect.crossbar import CrossbarSwitch
from repro.interconnect.resources import Resource
from repro.utils.validation import log_base_int


class ButterflyNetwork:
    """An N x N radix-``r`` butterfly network made of r x r crossbar switches."""

    def __init__(
        self,
        name: str,
        num_ports: int,
        radix: int = 4,
        registered_layers: tuple[int, ...] = (),
        buffer_depth: int = 2,
        registered_level: int = 0,
        data_width_bits: int = 32,
    ) -> None:
        self.name = name
        self.num_ports = num_ports
        self.radix = radix
        self.registered_layers = tuple(sorted(set(registered_layers)))
        self.data_width_bits = data_width_bits
        if num_ports == 1:
            # Degenerate single-port network: a plain wire, no switches.
            self.num_layers = 0
            self.switches: list[list[CrossbarSwitch]] = []
        else:
            self.num_layers = log_base_int(num_ports, radix)
            for layer in self.registered_layers:
                if not 0 <= layer < self.num_layers:
                    raise ValueError(
                        f"registered layer {layer} out of range "
                        f"[0, {self.num_layers}) for {name!r}"
                    )
            switches_per_layer = num_ports // radix
            self.switches = [
                [
                    CrossbarSwitch(
                        f"{name}.l{layer}.s{switch}",
                        num_inputs=radix,
                        num_outputs=radix,
                        registered_outputs=layer in self.registered_layers,
                        buffer_depth=buffer_depth,
                        level=registered_level,
                        data_width_bits=data_width_bits,
                    )
                    for switch in range(switches_per_layer)
                ]
                for layer in range(self.num_layers)
            ]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def _shuffle(self, port: int) -> int:
        """Radix-``r`` perfect shuffle: rotate the base-r digit string left."""
        most_significant_digit = port // (self.num_ports // self.radix)
        return (port * self.radix) % self.num_ports + most_significant_digit

    def _destination_digit(self, destination: int, layer: int) -> int:
        """Base-r digit of ``destination`` consumed at ``layer`` (MSB first)."""
        shift = self.num_layers - 1 - layer
        return (destination // (self.radix**shift)) % self.radix

    def route_hops(self, source: int, destination: int) -> list[tuple[int, int, int]]:
        """Return the (layer, switch, output) hops from ``source`` to ``destination``."""
        self._check_port(source)
        self._check_port(destination)
        hops: list[tuple[int, int, int]] = []
        line = source
        for layer in range(self.num_layers):
            line = self._shuffle(line)
            switch = line // self.radix
            out_digit = self._destination_digit(destination, layer)
            hops.append((layer, switch, out_digit))
            line = switch * self.radix + out_digit
        if self.num_layers and line != destination:
            raise RuntimeError(
                f"butterfly routing error in {self.name!r}: "
                f"{source} -> {destination} ended at {line}"
            )
        return hops

    def route(self, source: int, destination: int) -> list[Resource]:
        """Return the timing resources traversed from ``source`` to ``destination``."""
        return [
            self.switches[layer][switch].output(out_digit)
            for layer, switch, out_digit in self.route_hops(source, destination)
        ]

    def output_resource(self, destination: int) -> Resource | None:
        """The final-layer output resource feeding ``destination`` (None if no switches)."""
        self._check_port(destination)
        if self.num_layers == 0:
            return None
        last_layer = self.num_layers - 1
        switch = destination // self.radix
        return self.switches[last_layer][switch].output(destination % self.radix)

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise ValueError(
                f"port {port} out of range [0, {self.num_ports}) for {self.name!r}"
            )

    # ------------------------------------------------------------------ #
    # Structural figures used by the physical models
    # ------------------------------------------------------------------ #

    @property
    def num_switches(self) -> int:
        return sum(len(layer) for layer in self.switches)

    @property
    def crosspoints(self) -> int:
        return sum(switch.crosspoints for layer in self.switches for switch in layer)

    @property
    def all_switches(self) -> list[CrossbarSwitch]:
        return [switch for layer in self.switches for switch in layer]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ButterflyNetwork({self.name!r}, {self.num_ports}x{self.num_ports}, "
            f"radix={self.radix}, layers={self.num_layers})"
        )
