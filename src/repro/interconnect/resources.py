"""Cycle-driven timing resources: flits, register stages, arbitration points.

The timing model represents every path from a core to a memory bank and back
as a sequence of *resources*:

* :class:`RegisterStage` — a register boundary (tile master request/response
  ports, the pipeline register in the middle of the 64x64 butterflies, the
  group-boundary registers of TopH, and the memory banks themselves).
  Crossing a register stage costs exactly one cycle.  Each stage has a small
  elastic buffer and accepts/releases at most one flit per cycle, which
  applies backpressure upstream when the buffer fills.
* :class:`ArbitrationPoint` — a combinational crossbar output (tile port
  multiplexers, butterfly switch outputs, local-group crossbar outputs).  It
  adds no latency but grants at most one flit per cycle; losing flits retry
  on the next cycle.

A :class:`Flit` carries a single-word memory request (and its response) along
its precomputed resource path.  The :class:`StageNetwork` advances all flits
by one cycle, processing register stages from the most downstream level to
the most upstream one so that a flit vacating a buffer frees space for the
flit behind it within the same cycle (store-and-forward pipelining).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence

from repro.utils.rotation import PermutationSchedule

#: Pipeline levels used to order register-stage processing (downstream first).
#: These five are the levels of the paper's four topologies; levels are not
#: restricted to them — any integer is a valid stage level, and the network
#: always processes levels in descending numeric order.  Multi-hop topology
#: families (:mod:`repro.topologies.families`) allocate their own level
#: ranges below :data:`LEVEL_MASTER_REQ` (request hops) and above
#: :data:`LEVEL_MASTER_RESP` (response hops); the bank level is shared by
#: every topology.
LEVEL_MASTER_REQ = 1
LEVEL_BOUNDARY_REQ = 2
LEVEL_BANK = 3
LEVEL_BOUNDARY_RESP = 4
LEVEL_MASTER_RESP = 5

#: Processing order of :meth:`StageNetwork.advance` for the paper's levels:
#: most downstream level first, so a buffer slot freed this cycle can be
#: reused by the flit behind it.  The vectorized engine (:mod:`repro.engine`)
#: compiles its level-ordered passes from the same descending-level order,
#: so the two engines stay cycle-equivalent.
PIPELINE_LEVELS = (
    LEVEL_MASTER_RESP,
    LEVEL_BOUNDARY_RESP,
    LEVEL_BANK,
    LEVEL_BOUNDARY_REQ,
    LEVEL_MASTER_REQ,
)

_ALL_LEVELS = PIPELINE_LEVELS


class Resource:
    """Base class for anything a flit traverses."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r})"


class ArbitrationPoint(Resource):
    """A combinational arbitration point granting at most one flit per cycle."""

    __slots__ = ("_granted_cycle", "grants")

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._granted_cycle = -1
        #: Total number of grants issued (for utilisation statistics).
        self.grants = 0

    def available(self, cycle: int) -> bool:
        """True if this point has not yet granted a flit during ``cycle``."""
        return self._granted_cycle != cycle

    def grant(self, cycle: int) -> None:
        """Consume this cycle's grant."""
        self._granted_cycle = cycle
        self.grants += 1


class RegisterStage(Resource):
    """A registered pipeline stage with a small elastic buffer."""

    __slots__ = ("depth", "level", "queue", "_accepted_cycle", "accepts", "releases")

    def __init__(self, name: str, level: int, depth: int = 2) -> None:
        super().__init__(name)
        if depth < 1:
            raise ValueError(f"register stage depth must be >= 1, got {depth}")
        self.depth = depth
        self.level = level
        self.queue: deque[Flit] = deque()
        self._accepted_cycle = -1
        #: Total number of flits accepted (for utilisation statistics).
        self.accepts = 0
        #: Total number of flits released downstream.
        self.releases = 0

    @property
    def occupancy(self) -> int:
        """Number of flits currently buffered in this stage."""
        return len(self.queue)

    def can_accept(self, cycle: int) -> bool:
        """True if a flit may enter this stage during ``cycle``."""
        return len(self.queue) < self.depth and self._accepted_cycle != cycle

    def accept(self, flit: "Flit", cycle: int) -> None:
        """Buffer ``flit``; the caller must have checked :meth:`can_accept`."""
        self.queue.append(flit)
        self._accepted_cycle = cycle
        self.accepts += 1

    def head(self) -> "Flit | None":
        """The flit next in line to leave this stage, if any."""
        return self.queue[0] if self.queue else None

    def release_head(self) -> "Flit":
        """Remove and return the head flit."""
        self.releases += 1
        return self.queue.popleft()


class Flit:
    """A single-word memory transaction travelling through the network."""

    __slots__ = (
        "flit_id",
        "core_id",
        "bank_id",
        "is_write",
        "path",
        "position",
        "created_cycle",
        "injected_cycle",
        "completed_cycle",
        "tag",
    )

    def __init__(
        self,
        flit_id: int,
        core_id: int,
        bank_id: int,
        path: Sequence[Resource],
        is_write: bool = False,
        created_cycle: int = 0,
        tag: object = None,
    ) -> None:
        self.flit_id = flit_id
        self.core_id = core_id
        self.bank_id = bank_id
        self.is_write = is_write
        self.path = path
        #: Index (in ``path``) of the register stage currently holding the
        #: flit, or -1 while it is still waiting in the core's injection queue.
        self.position = -1
        self.created_cycle = created_cycle
        self.injected_cycle = -1
        self.completed_cycle = -1
        #: Opaque handle used by core models to match responses (e.g. the
        #: destination register of a load).
        self.tag = tag

    @property
    def is_read(self) -> bool:
        return not self.is_write

    @property
    def latency(self) -> int:
        """Round-trip latency in cycles (valid once the flit completed)."""
        if self.completed_cycle < 0:
            raise ValueError("flit has not completed yet")
        return self.completed_cycle - self.created_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Flit(id={self.flit_id}, core={self.core_id}, bank={self.bank_id}, "
            f"{'write' if self.is_write else 'read'}, pos={self.position})"
        )


class StageNetwork:
    """The cycle engine that advances flits through their resource paths."""

    def __init__(self, arbitration_seed: int = 0) -> None:
        self._stages_by_level: dict[int, list[RegisterStage]] = {
            level: [] for level in _ALL_LEVELS
        }
        #: Registered levels in processing order (descending).  Seeded with
        #: the paper's five levels; :meth:`add_stage` extends it on demand,
        #: keeping the descending order, so topologies with custom level
        #: ranges (:mod:`repro.topologies.families`) slot in transparently
        #: while the paper topologies keep the exact historical order.
        self._level_order: tuple[int, ...] = _ALL_LEVELS
        self._all_stages: list[RegisterStage] = []
        self._all_arbiters: list[ArbitrationPoint] = []
        self._arbitration_seed = arbitration_seed
        self._schedules: dict[int, PermutationSchedule] = {}
        #: Number of flits currently inside the network (between injection
        #: and completion).
        self.in_flight = 0
        #: Totals for sanity checking and statistics.
        self.total_injected = 0
        self.total_completed = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_stage(self, stage: RegisterStage) -> RegisterStage:
        """Register a stage with the engine (done by the topology builder).

        Any integer level is accepted: levels outside the paper's five are
        added to the processing order at their descending-sorted position,
        which is what lets arbitrary topology families define per-hop
        register boundaries (see :mod:`repro.topologies.families`).
        """
        if stage.level not in self._stages_by_level:
            self._stages_by_level[stage.level] = []
            self._level_order = tuple(
                sorted(self._stages_by_level, reverse=True)
            )
        self._stages_by_level[stage.level].append(stage)
        self._all_stages.append(stage)
        return stage

    def add_arbiter(self, arbiter: ArbitrationPoint) -> ArbitrationPoint:
        """Register an arbitration point (kept for statistics only)."""
        self._all_arbiters.append(arbiter)
        return arbiter

    @property
    def stages(self) -> tuple[RegisterStage, ...]:
        return tuple(self._all_stages)

    @property
    def arbiters(self) -> tuple[ArbitrationPoint, ...]:
        return tuple(self._all_arbiters)

    @property
    def arbitration_seed(self) -> int:
        """Seed of the per-level arbitration permutation schedules."""
        return self._arbitration_seed

    def stages_at_level(self, level: int) -> tuple[RegisterStage, ...]:
        """The register stages of one pipeline level, in registration order.

        The order matters: per-cycle arbitration permutes *indices into this
        tuple*, so an alternative engine that wants to replay the exact same
        arbitration decisions (see :mod:`repro.engine`) must enumerate the
        stages of each level through this accessor.
        """
        if level not in self._stages_by_level:
            raise ValueError(f"unknown pipeline level {level}")
        return tuple(self._stages_by_level[level])

    @property
    def active_levels(self) -> tuple[int, ...]:
        """Levels that hold at least one stage, most downstream first.

        This is the level iteration order of :meth:`advance`, and the order
        an alternative engine must compile its passes in
        (:class:`repro.engine.compile.CompiledNetwork` consumes it).  For
        the paper's four topologies it is exactly :data:`PIPELINE_LEVELS`.
        """
        return tuple(
            level for level in self._level_order if self._stages_by_level[level]
        )

    # ------------------------------------------------------------------ #
    # Per-cycle operation
    # ------------------------------------------------------------------ #

    def _schedule(self, level: int, count: int) -> PermutationSchedule:
        schedule = self._schedules.get(level)
        if schedule is None or schedule.count != count:
            schedule = PermutationSchedule(count, seed=self._arbitration_seed + level)
            self._schedules[level] = schedule
        return schedule

    def advance(self, cycle: int) -> list[Flit]:
        """Advance all buffered flits by one cycle; return completed flits.

        Register stages are processed from the most downstream level
        (master response ports) to the most upstream one (master request
        ports) so a buffer slot freed this cycle can be reused by the flit
        directly behind it.  Within a level the visiting order follows a
        per-cycle random permutation, which approximates unbiased round-robin
        arbitration between equally-placed contenders.
        """
        completed: list[Flit] = []
        for level in self._level_order:
            stages = self._stages_by_level[level]
            count = len(stages)
            if count == 0:
                continue
            order = self._schedule(level, count).order(cycle)
            for index in order:
                stage = stages[index]
                flit = stage.head()
                if flit is None:
                    continue
                if self._try_move(flit, cycle, from_stage=stage):
                    if flit.completed_cycle >= 0:
                        completed.append(flit)
        return completed

    def try_inject(self, flit: Flit, cycle: int) -> bool:
        """Try to move ``flit`` from its core into the first register stage.

        Returns True on success.  Called by core models after
        :meth:`advance`, so that a buffer slot freed this cycle can receive
        the new flit, but an injected flit never moves twice in one cycle.
        """
        if flit.position != -1:
            raise ValueError("flit was already injected")
        moved = self._try_move(flit, cycle, from_stage=None)
        if moved:
            flit.injected_cycle = cycle
            self.total_injected += 1
            if flit.completed_cycle < 0:
                self.in_flight += 1
            else:
                # Degenerate zero-register path (not used by real topologies,
                # but keeps the engine total counters consistent).
                self.total_completed += 1
        return moved

    # ------------------------------------------------------------------ #
    # Flit movement
    # ------------------------------------------------------------------ #

    def _try_move(
        self, flit: Flit, cycle: int, from_stage: RegisterStage | None
    ) -> bool:
        """Try to advance ``flit`` to its next register stage (or completion)."""
        path = flit.path
        start = flit.position + 1
        arbiters: list[ArbitrationPoint] = []
        target: RegisterStage | None = None
        target_index = -1
        for index in range(start, len(path)):
            resource = path[index]
            if isinstance(resource, RegisterStage):
                target = resource
                target_index = index
                break
            arbiters.append(resource)  # type: ignore[arg-type]

        if target is not None and not target.can_accept(cycle):
            return False
        for arbiter in arbiters:
            if not arbiter.available(cycle):
                return False

        # All checks passed: consume grants and move.
        for arbiter in arbiters:
            arbiter.grant(cycle)
        if from_stage is not None:
            released = from_stage.release_head()
            if released is not flit:
                raise RuntimeError(
                    "internal error: released flit does not match moving flit"
                )
        if target is not None:
            target.accept(flit, cycle)
            flit.position = target_index
        else:
            flit.position = len(path)
            flit.completed_cycle = cycle
            if from_stage is not None:
                self.in_flight -= 1
                self.total_completed += 1
        return True

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def occupancy(self) -> int:
        """Total number of flits buffered in register stages."""
        return sum(stage.occupancy for stage in self._all_stages)

    def drain(self, max_cycles: int, start_cycle: int) -> int:
        """Advance until the network is empty; return the cycle reached.

        Used by execution-driven simulations to flush outstanding traffic at
        the end of a program.  Raises ``RuntimeError`` if the network does not
        drain within ``max_cycles``.
        """
        cycle = start_cycle
        while self.in_flight > 0:
            if cycle - start_cycle > max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight} flits in flight)"
                )
            self.advance(cycle)
            cycle += 1
        return cycle


def make_completion_callback(sink: list[Flit]) -> Callable[[Flit], None]:
    """Small helper returning a callback that appends completed flits to ``sink``."""

    def _on_complete(flit: Flit) -> None:
        sink.append(flit)

    return _on_complete
