"""Single-stage m x n crossbar switch — the basic interconnect building block.

Section III-A: *"The basic element of both interconnects is a single-stage
m x n crossbar switch, connecting m masters to n slaves.  An optional elastic
buffer can be inserted at each output of the switch, after address decoding
and round-robin arbitration, to break any combinational paths crossing the
switch."*

The timing behaviour of a crossbar is fully captured by its per-output
resources: a :class:`~repro.interconnect.resources.RegisterStage` when the
output carries an elastic buffer (registered output), otherwise an
:class:`~repro.interconnect.resources.ArbitrationPoint`.  The switch object
itself records the structural information (port counts, data width) that the
area, power and congestion models consume.
"""

from __future__ import annotations

from repro.interconnect.resources import ArbitrationPoint, RegisterStage, Resource


class CrossbarSwitch:
    """An m x n single-stage crossbar with round-robin output arbitration."""

    def __init__(
        self,
        name: str,
        num_inputs: int,
        num_outputs: int,
        registered_outputs: bool = False,
        buffer_depth: int = 2,
        level: int = 0,
        data_width_bits: int = 32,
    ) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ValueError(
                f"crossbar {name!r} needs at least one input and one output, "
                f"got {num_inputs}x{num_outputs}"
            )
        self.name = name
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.registered_outputs = registered_outputs
        self.buffer_depth = buffer_depth
        self.data_width_bits = data_width_bits
        self._outputs: list[Resource] = []
        for index in range(num_outputs):
            output_name = f"{name}.out{index}"
            if registered_outputs:
                self._outputs.append(
                    RegisterStage(output_name, level=level, depth=buffer_depth)
                )
            else:
                self._outputs.append(ArbitrationPoint(output_name))

    def output(self, index: int) -> Resource:
        """The timing resource guarding output port ``index``."""
        if not 0 <= index < self.num_outputs:
            raise ValueError(
                f"output index {index} out of range [0, {self.num_outputs}) "
                f"for crossbar {self.name!r}"
            )
        return self._outputs[index]

    @property
    def outputs(self) -> tuple[Resource, ...]:
        return tuple(self._outputs)

    # ------------------------------------------------------------------ #
    # Structural figures used by the physical models
    # ------------------------------------------------------------------ #

    @property
    def crosspoints(self) -> int:
        """Number of input-to-output crosspoints (area/congestion proxy)."""
        return self.num_inputs * self.num_outputs

    @property
    def wire_bits(self) -> int:
        """Total number of data wires entering and leaving the switch."""
        return (self.num_inputs + self.num_outputs) * self.data_width_bits

    def utilisation(self, cycles: int) -> float:
        """Average fraction of output capacity used over ``cycles`` cycles."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        total = 0
        for resource in self._outputs:
            if isinstance(resource, RegisterStage):
                total += resource.accepts
            else:
                total += resource.grants
        return total / (cycles * self.num_outputs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "registered" if self.registered_outputs else "combinational"
        return (
            f"CrossbarSwitch({self.name!r}, {self.num_inputs}x{self.num_outputs}, "
            f"{kind})"
        )
