"""Interconnect substrate: flits, crossbars, butterflies and cluster topologies."""

from repro.interconnect.resources import (
    ArbitrationPoint,
    Flit,
    RegisterStage,
    Resource,
    StageNetwork,
)
from repro.interconnect.crossbar import CrossbarSwitch
from repro.interconnect.butterfly import ButterflyNetwork
from repro.interconnect.topology import (
    ClusterTopology,
    IdealTopology,
    Top1Topology,
    Top4Topology,
    TopHTopology,
    build_topology,
)

__all__ = [
    "Resource",
    "RegisterStage",
    "ArbitrationPoint",
    "Flit",
    "StageNetwork",
    "CrossbarSwitch",
    "ButterflyNetwork",
    "ClusterTopology",
    "Top1Topology",
    "Top4Topology",
    "TopHTopology",
    "IdealTopology",
    "build_topology",
]
