"""Cluster-level interconnect topologies (Section III-C).

Four topologies are modelled:

* ``Top1``  — one 64x64 radix-4 butterfly; each tile has a single remote port
  shared by its four cores (K=1).
* ``Top4``  — four parallel 64x64 radix-4 butterflies; each core owns a
  dedicated remote port (K=4).
* ``TopH``  — the hierarchical topology: a fully connected 16x16 crossbar
  inside each group of 16 tiles plus dedicated 16x16 radix-4 butterflies
  between every ordered pair of groups (K=4: one local port and three
  directional ports per tile).
* ``TopX``  — the ideal, physically infeasible full crossbar used as the
  paper's baseline: every bank reachable in one cycle with no network
  contention (bank conflicts remain).

Every topology exposes :meth:`ClusterTopology.build_path`, which returns the
ordered list of timing resources a request crosses from a given core to a
given bank and (for loads) back.  Zero-load round-trip latencies equal the
number of register stages on the path and match the paper: 1 cycle for local
banks, 3 cycles inside a TopH group, 5 cycles for everything else remote.
"""

from __future__ import annotations

from repro.core.config import MemPoolConfig
from repro.interconnect.butterfly import ButterflyNetwork
from repro.interconnect.crossbar import CrossbarSwitch
from repro.interconnect.resources import (
    LEVEL_BANK,
    LEVEL_BOUNDARY_REQ,
    LEVEL_BOUNDARY_RESP,
    LEVEL_MASTER_REQ,
    LEVEL_MASTER_RESP,
    ArbitrationPoint,
    RegisterStage,
    Resource,
    StageNetwork,
)

#: Logical names of the TopH tile ports, in routing order.
TOPH_DIRECTIONS = ("local", "north", "northeast", "east")


class ClusterTopology:
    """Base class: owns the stage network and the per-bank / per-core resources."""

    name = "abstract"

    def __init__(self, config: MemPoolConfig) -> None:
        self.config = config
        self.network = StageNetwork()
        depth = config.timing.elastic_buffer_depth
        # One register stage per SPM bank: the one-cycle bank access itself.
        self.bank_stages = [
            self.network.add_stage(
                RegisterStage(f"tile{b // config.banks_per_tile}."
                              f"bank{b % config.banks_per_tile}",
                              level=LEVEL_BANK, depth=depth)
            )
            for b in range(config.num_banks)
        ]
        # One response arbitration point per core: the tile response crossbar
        # delivers at most one response per core per cycle.
        self.core_response_ports = [
            self.network.add_arbiter(ArbitrationPoint(f"core{c}.resp"))
            for c in range(config.num_cores)
        ]
        self._path_cache: dict[tuple[int, int], tuple[list[Resource], list[Resource]]] = {}

    # ------------------------------------------------------------------ #
    # Path construction
    # ------------------------------------------------------------------ #

    def build_path(self, core_id: int, bank_id: int, needs_response: bool) -> list[Resource]:
        """Resources crossed by a request from ``core_id`` to ``bank_id``.

        The returned list interleaves arbitration points and register stages
        in traversal order; it ends at the bank for stores
        (``needs_response=False``) and continues back to the core for loads.
        """
        config = self.config
        src_tile = config.tile_of_core(core_id)
        dst_tile = config.tile_of_bank(bank_id)
        if src_tile == dst_tile:
            request: list[Resource] = []
            response: list[Resource] = [self.core_response_ports[core_id]]
        else:
            key = (core_id, dst_tile)
            cached = self._path_cache.get(key)
            if cached is None:
                cached = (
                    self._remote_request_path(core_id, src_tile, dst_tile),
                    self._remote_response_path(core_id, src_tile, dst_tile),
                )
                self._path_cache[key] = cached
            request = cached[0]
            response = cached[1] + [self.core_response_ports[core_id]]
        path = list(request)
        path.append(self.bank_stages[bank_id])
        if needs_response:
            path.extend(response)
        return path

    def _remote_request_path(
        self, core_id: int, src_tile: int, dst_tile: int
    ) -> list[Resource]:
        raise NotImplementedError

    def _remote_response_path(
        self, core_id: int, src_tile: int, dst_tile: int
    ) -> list[Resource]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def zero_load_latency(self, core_id: int, bank_id: int) -> int:
        """Round-trip latency of a load in the absence of any contention."""
        path = self.build_path(core_id, bank_id, needs_response=True)
        return sum(1 for resource in path if isinstance(resource, RegisterStage))

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """Closed-form zero-load round-trip latency of an uncontended load.

        Every registered topology implements this from coordinates alone
        (no path construction); the test suite asserts it equals
        :meth:`zero_load_latency` — the register count of the built path —
        for every topology in the registry, which pins the paper's
        1/3/5-cycle invariants and the distance formulas of the new
        families alike.
        """
        raise NotImplementedError

    def remote_ports_per_tile(self) -> int:
        """Number of remote (master) request ports per tile — ``K`` in the paper."""
        raise NotImplementedError

    def structural_summary(self) -> dict[str, int]:
        """Counts consumed by the area / congestion models."""
        return {
            "register_stages": len(self.network.stages),
            "arbitration_points": len(self.network.arbiters),
            "banks": len(self.bank_stages),
            "remote_ports_per_tile": self.remote_ports_per_tile(),
        }

    # -- helpers for subclasses ------------------------------------------ #

    def _add_stage(self, name: str, level: int) -> RegisterStage:
        return self.network.add_stage(
            RegisterStage(name, level=level, depth=self.config.timing.elastic_buffer_depth)
        )

    def _add_arbiter(self, name: str) -> ArbitrationPoint:
        return self.network.add_arbiter(ArbitrationPoint(name))


class IdealTopology(ClusterTopology):
    """TopX: the ideal single-cycle full crossbar baseline (Section V-C)."""

    name = "topx"

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        return []

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        return []

    def remote_ports_per_tile(self) -> int:
        # Every core reaches every bank directly: conceptually one port per
        # core towards the whole memory pool.
        return self.config.cores_per_tile

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """Always the single bank cycle: the ideal crossbar adds nothing."""
        return 1


class Top1Topology(ClusterTopology):
    """Top1: a single NxN radix-4 butterfly shared by all remote traffic (K=1)."""

    name = "top1"

    def __init__(self, config: MemPoolConfig) -> None:
        super().__init__(config)
        tiles = config.num_tiles
        radix = config.butterfly_radix
        depth = config.timing.elastic_buffer_depth
        middle_layer = self._middle_layer(tiles, radix)
        self.request_butterfly = ButterflyNetwork(
            "top1.req", tiles, radix=radix,
            registered_layers=middle_layer, buffer_depth=depth,
            registered_level=LEVEL_BOUNDARY_REQ,
        )
        self.response_butterfly = ButterflyNetwork(
            "top1.resp", tiles, radix=radix,
            registered_layers=middle_layer, buffer_depth=depth,
            registered_level=LEVEL_BOUNDARY_RESP,
        )
        self._register_butterfly(self.request_butterfly)
        self._register_butterfly(self.response_butterfly)
        self.master_request_ports = [
            self._add_stage(f"tile{t}.master_req", LEVEL_MASTER_REQ)
            for t in range(tiles)
        ]
        self.master_response_ports = [
            self._add_stage(f"tile{t}.master_resp", LEVEL_MASTER_RESP)
            for t in range(tiles)
        ]

    @staticmethod
    def _middle_layer(num_ports: int, radix: int) -> tuple[int, ...]:
        """The single pipelined layer 'midway through' the butterfly."""
        if num_ports <= 1:
            return ()
        layers = 0
        ports = num_ports
        while ports > 1:
            ports //= radix
            layers += 1
        return ((layers - 1) // 2,)

    def _register_butterfly(self, butterfly: ButterflyNetwork) -> None:
        for switch in butterfly.all_switches:
            for output in switch.outputs:
                if isinstance(output, RegisterStage):
                    self.network.add_stage(output)
                else:
                    self.network.add_arbiter(output)

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        return [self.master_request_ports[src_tile]] + self.request_butterfly.route(
            src_tile, dst_tile
        )

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        return self.response_butterfly.route(dst_tile, src_tile) + [
            self.master_response_ports[src_tile]
        ]

    def remote_ports_per_tile(self) -> int:
        return 1

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """1 cycle local, 5 cycles remote (master + middle + bank + back)."""
        if self.config.tile_of_core(core_id) == self.config.tile_of_bank(bank_id):
            return 1
        return 5


class Top4Topology(ClusterTopology):
    """Top4: four parallel NxN butterflies, one per core of each tile (K=4)."""

    name = "top4"

    def __init__(self, config: MemPoolConfig) -> None:
        super().__init__(config)
        tiles = config.num_tiles
        radix = config.butterfly_radix
        depth = config.timing.elastic_buffer_depth
        middle_layer = Top1Topology._middle_layer(tiles, radix)
        self.request_butterflies = []
        self.response_butterflies = []
        for lane in range(config.cores_per_tile):
            request = ButterflyNetwork(
                f"top4.req{lane}", tiles, radix=radix,
                registered_layers=middle_layer, buffer_depth=depth,
                registered_level=LEVEL_BOUNDARY_REQ,
            )
            response = ButterflyNetwork(
                f"top4.resp{lane}", tiles, radix=radix,
                registered_layers=middle_layer, buffer_depth=depth,
                registered_level=LEVEL_BOUNDARY_RESP,
            )
            self._register_butterfly(request)
            self._register_butterfly(response)
            self.request_butterflies.append(request)
            self.response_butterflies.append(response)
        # One master request/response register per core: the remote request
        # interconnect is effectively a point-to-point connection.
        self.master_request_ports = [
            self._add_stage(f"core{c}.master_req", LEVEL_MASTER_REQ)
            for c in range(config.num_cores)
        ]
        self.master_response_ports = [
            self._add_stage(f"core{c}.master_resp", LEVEL_MASTER_RESP)
            for c in range(config.num_cores)
        ]

    def _register_butterfly(self, butterfly: ButterflyNetwork) -> None:
        for switch in butterfly.all_switches:
            for output in switch.outputs:
                if isinstance(output, RegisterStage):
                    self.network.add_stage(output)
                else:
                    self.network.add_arbiter(output)

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        lane = self.config.local_core_index(core_id)
        return [self.master_request_ports[core_id]] + self.request_butterflies[
            lane
        ].route(src_tile, dst_tile)

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        lane = self.config.local_core_index(core_id)
        return self.response_butterflies[lane].route(dst_tile, src_tile) + [
            self.master_response_ports[core_id]
        ]

    def remote_ports_per_tile(self) -> int:
        return self.config.cores_per_tile

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """1 cycle local, 5 cycles remote (same shape as Top1, K lanes)."""
        if self.config.tile_of_core(core_id) == self.config.tile_of_bank(bank_id):
            return 1
        return 5


class TopHTopology(ClusterTopology):
    """TopH: hierarchical topology with local groups (Figure 3)."""

    name = "toph"

    def __init__(self, config: MemPoolConfig) -> None:
        super().__init__(config)
        tiles_per_group = config.tiles_per_group
        groups = config.num_groups
        radix = config.butterfly_radix
        depth = config.timing.elastic_buffer_depth

        # Per-tile master ports: one per direction (local + one per remote group).
        self.num_directions = min(groups, len(TOPH_DIRECTIONS))
        self.master_request_ports: list[list[RegisterStage]] = []
        self.master_response_ports: list[list[RegisterStage]] = []
        for tile in range(config.num_tiles):
            self.master_request_ports.append(
                [
                    self._add_stage(
                        f"tile{tile}.master_req.{TOPH_DIRECTIONS[d]}", LEVEL_MASTER_REQ
                    )
                    for d in range(self.num_directions)
                ]
            )
            self.master_response_ports.append(
                [
                    self._add_stage(
                        f"tile{tile}.master_resp.{TOPH_DIRECTIONS[d]}", LEVEL_MASTER_RESP
                    )
                    for d in range(self.num_directions)
                ]
            )

        # Local-group fully connected crossbars (request and response).
        self.local_request_xbars = [
            CrossbarSwitch(
                f"group{g}.req_local", tiles_per_group, tiles_per_group,
                registered_outputs=False,
            )
            for g in range(groups)
        ]
        self.local_response_xbars = [
            CrossbarSwitch(
                f"group{g}.resp_local", tiles_per_group, tiles_per_group,
                registered_outputs=False,
            )
            for g in range(groups)
        ]
        for xbar in self.local_request_xbars + self.local_response_xbars:
            for output in xbar.outputs:
                self.network.add_arbiter(output)

        # Inter-group butterflies: one request and one response network per
        # ordered pair of distinct groups, with a register boundary at the
        # group's master interface (one register per source tile).
        self.group_request_butterflies: dict[tuple[int, int], ButterflyNetwork] = {}
        self.group_response_butterflies: dict[tuple[int, int], ButterflyNetwork] = {}
        self.group_request_boundaries: dict[tuple[int, int], list[RegisterStage]] = {}
        self.group_response_boundaries: dict[tuple[int, int], list[RegisterStage]] = {}
        for src_group in range(groups):
            for dst_group in range(groups):
                if src_group == dst_group:
                    continue
                key = (src_group, dst_group)
                request = ButterflyNetwork(
                    f"g{src_group}to{dst_group}.req", tiles_per_group, radix=radix,
                    buffer_depth=depth,
                )
                response = ButterflyNetwork(
                    f"g{src_group}to{dst_group}.resp", tiles_per_group, radix=radix,
                    buffer_depth=depth,
                )
                for butterfly in (request, response):
                    for switch in butterfly.all_switches:
                        for output in switch.outputs:
                            self.network.add_arbiter(output)
                self.group_request_butterflies[key] = request
                self.group_response_butterflies[key] = response
                self.group_request_boundaries[key] = [
                    self._add_stage(
                        f"g{src_group}to{dst_group}.req_boundary.t{t}",
                        LEVEL_BOUNDARY_REQ,
                    )
                    for t in range(tiles_per_group)
                ]
                self.group_response_boundaries[key] = [
                    self._add_stage(
                        f"g{src_group}to{dst_group}.resp_boundary.t{t}",
                        LEVEL_BOUNDARY_RESP,
                    )
                    for t in range(tiles_per_group)
                ]

    # -- helpers ---------------------------------------------------------- #

    def _direction(self, src_group: int, dst_group: int) -> int:
        """Tile port index used to reach ``dst_group`` from ``src_group``."""
        if src_group == dst_group:
            return 0
        offset = (dst_group - src_group) % self.config.num_groups
        return min(offset, self.num_directions - 1)

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        config = self.config
        src_group = config.group_of_tile(src_tile)
        dst_group = config.group_of_tile(dst_tile)
        src_local = src_tile % config.tiles_per_group
        dst_local = dst_tile % config.tiles_per_group
        if src_group == dst_group:
            port = self.master_request_ports[src_tile][0]
            xbar_output = self.local_request_xbars[src_group].output(dst_local)
            return [port, xbar_output]
        direction = self._direction(src_group, dst_group)
        key = (src_group, dst_group)
        port = self.master_request_ports[src_tile][direction]
        boundary = self.group_request_boundaries[key][src_local]
        hops = self.group_request_butterflies[key].route(src_local, dst_local)
        return [port, boundary] + hops

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        config = self.config
        src_group = config.group_of_tile(src_tile)
        dst_group = config.group_of_tile(dst_tile)
        src_local = src_tile % config.tiles_per_group
        dst_local = dst_tile % config.tiles_per_group
        if src_group == dst_group:
            xbar_output = self.local_response_xbars[src_group].output(src_local)
            port = self.master_response_ports[src_tile][0]
            return [xbar_output, port]
        direction = self._direction(src_group, dst_group)
        key = (src_group, dst_group)
        boundary = self.group_response_boundaries[key][dst_local]
        hops = self.group_response_butterflies[key].route(dst_local, src_local)
        port = self.master_response_ports[src_tile][direction]
        return [boundary] + hops + [port]

    def remote_ports_per_tile(self) -> int:
        return self.num_directions

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """The paper's headline latencies: 1 local, 3 in-group, 5 remote."""
        config = self.config
        src_tile = config.tile_of_core(core_id)
        dst_tile = config.tile_of_bank(bank_id)
        if src_tile == dst_tile:
            return 1
        if config.group_of_tile(src_tile) == config.group_of_tile(dst_tile):
            return 3
        return 5


def build_topology(config: MemPoolConfig) -> ClusterTopology:
    """Instantiate the topology selected by ``config.topology``.

    Resolution goes through the topology registry
    (:mod:`repro.topologies.registry`), so any registered family — the
    four paper topologies above or the parameterized families of
    :mod:`repro.topologies.families` — builds here, with
    ``config.topology_params`` forwarded as the family's constructor
    parameters.  Imported lazily: the registry module imports this one
    for the paper classes.
    """
    from repro.topologies.registry import make_topology

    return make_topology(
        config.topology, config, **dict(config.topology_params)
    )
