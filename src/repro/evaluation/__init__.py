"""Experiment drivers reproducing every figure and table of the paper."""

from repro.evaluation.settings import ExperimentSettings
from repro.evaluation.fig5 import Fig5Result, run_fig5
from repro.evaluation.fig6 import Fig6Result, run_fig6
from repro.evaluation.fig7 import Fig7Result, run_fig7
from repro.evaluation.fig10 import Fig10Result, run_fig10
from repro.evaluation.physical_tables import (
    PhysicalTablesResult,
    run_physical_tables,
)
from repro.evaluation.power_table import PowerTableResult, run_power_table

__all__ = [
    "ExperimentSettings",
    "run_fig5",
    "Fig5Result",
    "run_fig6",
    "Fig6Result",
    "run_fig7",
    "Fig7Result",
    "run_fig10",
    "Fig10Result",
    "run_power_table",
    "PowerTableResult",
    "run_physical_tables",
    "PhysicalTablesResult",
]
