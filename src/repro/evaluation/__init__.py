"""Experiment drivers reproducing every figure and table of the paper.

Each ``figX``/table module contributes three layers to the shared sweep
engine of :mod:`repro.experiments`:

* a module-level *point function* (``simulate_*_point`` / ``compute_*``)
  that runs one parameter combination from picklable arguments,
* a *sweep builder* (``figX_sweep``) describing the figure's parameter
  grid, and an *assembler* (``assemble_figX``) folding per-point results
  back into the figure's result object, and
* the classic ``run_figX`` convenience entry point, which wires the three
  together on a (by default serial, uncached) executor.
"""

from repro.evaluation.settings import ExperimentSettings
from repro.evaluation.fig5 import Fig5Result, fig5_sweep, run_fig5
from repro.evaluation.fig6 import Fig6Result, fig6_sweep, run_fig6
from repro.evaluation.fig7 import Fig7Result, fig7_sweep, run_fig7
from repro.evaluation.fig10 import Fig10Result, fig10_sweep, run_fig10
from repro.evaluation.physical_tables import (
    PhysicalTablesResult,
    physical_sweep,
    run_physical_tables,
)
from repro.evaluation.power_table import (
    PowerTableResult,
    power_sweep,
    run_power_table,
)
from repro.evaluation.topologies import (
    TopologyCatalogueResult,
    run_topologies,
    topologies_sweep,
)
from repro.evaluation.workloads import (
    WorkloadCatalogueResult,
    run_workloads,
    workloads_sweep,
)

__all__ = [
    "ExperimentSettings",
    "run_fig5",
    "Fig5Result",
    "fig5_sweep",
    "run_fig6",
    "Fig6Result",
    "fig6_sweep",
    "run_fig7",
    "Fig7Result",
    "fig7_sweep",
    "run_fig10",
    "Fig10Result",
    "fig10_sweep",
    "run_power_table",
    "PowerTableResult",
    "power_sweep",
    "run_physical_tables",
    "PhysicalTablesResult",
    "physical_sweep",
    "run_workloads",
    "WorkloadCatalogueResult",
    "workloads_sweep",
    "run_topologies",
    "TopologyCatalogueResult",
    "topologies_sweep",
]
