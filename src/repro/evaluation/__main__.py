"""Run every experiment of the paper and print the figure/table reports.

Usage::

    python -m repro.evaluation              # scaled 64-core cluster (fast)
    MEMPOOL_FULL=1 python -m repro.evaluation   # full 256-core cluster

Individual experiments can be selected by name::

    python -m repro.evaluation fig5 fig7
"""

from __future__ import annotations

import sys
import time

from repro.evaluation import (
    ExperimentSettings,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig10,
    run_physical_tables,
    run_power_table,
)

EXPERIMENTS = {
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig10": run_fig10,
    "power": run_power_table,
    "physical": run_physical_tables,
}


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    selected = arguments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 1
    settings = ExperimentSettings()
    print(f"MemPool reproduction — experiment scale: {settings.scale_label}\n")
    for name in selected:
        start = time.time()
        result = EXPERIMENTS[name](settings)
        elapsed = time.time() - start
        print(f"=== {name} ({elapsed:.1f} s) ===")
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
