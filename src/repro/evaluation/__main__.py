"""Run every experiment of the paper and print the figure/table reports.

Usage::

    python -m repro.evaluation                    # scaled 64-core cluster
    MEMPOOL_FULL=1 python -m repro.evaluation     # full 256-core cluster
    python -m repro.evaluation fig5 fig7          # a subset, by name
    python -m repro.evaluation --workers 8        # parallel sweep points
    python -m repro.evaluation --cache            # reuse cached results

All experiments are driven through the :mod:`repro.experiments` engine:
one shared sweep/executor code path instead of per-figure loops.  This
entry point stays serial and uncached by default (matching the seed
behaviour exactly); ``python -m repro.experiments run`` is the
cache-by-default front-end.
"""

from __future__ import annotations

import argparse

from repro.core.cluster import ENGINES
from repro.evaluation.settings import ExperimentSettings
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.executor import Executor
from repro.experiments.registry import (
    EXPERIMENTS,
    resolve_selection,
    run_experiments,
)
from repro.workloads import available_injectors, available_patterns


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments and print their reports.

    Examples
    --------
    >>> main(["fig10"])  # doctest: +ELLIPSIS
    MemPool reproduction...
    0
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"names to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "-w", "--workers", type=int, default=1,
        help="worker processes for the sweep points (1 = serial, 0 = all CPUs)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help=f"read/write the on-disk result cache ({default_cache_dir()})",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="timing engine for the simulating experiments (default: "
             "MEMPOOL_ENGINE or 'legacy'; 'vector' is the faster "
             "structure-of-arrays engine, 'batch' additionally advances "
             "compatible traffic points as one SimBatch, 'compiled' runs "
             "the ring-buffer kernel engine, JIT-compiled when numba is "
             "installed — results are identical for all four)",
    )
    parser.add_argument(
        "--pattern", choices=available_patterns(), default=None,
        help="destination pattern of the synthetic-traffic experiments "
             "(default: MEMPOOL_PATTERN or 'uniform')",
    )
    parser.add_argument(
        "--injector", choices=available_injectors(), default=None,
        help="injection process of the synthetic-traffic experiments "
             "(default: MEMPOOL_INJECTOR or 'poisson')",
    )
    parser.add_argument(
        "--topology", metavar="NAME[:K=V,...]", default=None,
        help="topology of the single-topology experiments (the workload "
             "catalogue), as a topology registry name with optional "
             "parameters, e.g. 'mesh:width=8,height=2' (default: "
             "MEMPOOL_TOPOLOGY or 'toph'; figure sweeps keep their own "
             "topology axes)",
    )
    parser.add_argument(
        "--energy", action="store_true",
        help="attach the Figure 10 wire-energy summary to every traffic "
             "result (like MEMPOOL_ENERGY=1; the traces catalogue always "
             "reports energy)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="trace file the traces experiment replays (like MEMPOOL_TRACE; "
             "default: a small deterministic recording made on first use)",
    )
    args = parser.parse_args(argv)

    selected, error = resolve_selection(args.experiments)
    if error:
        print(error)
        return 1
    executor = Executor(
        workers=args.workers,
        cache=ResultCache() if args.cache else None,
    )
    overrides = {}
    if args.engine:
        overrides["engine"] = args.engine
    if args.pattern:
        overrides["pattern"] = args.pattern
    if args.injector:
        overrides["injector"] = args.injector
    if args.topology:
        overrides["topology"] = args.topology
    if args.energy:
        overrides["energy"] = True
    if args.trace:
        overrides["trace"] = args.trace
    try:
        settings = ExperimentSettings(**overrides)
        # Probe unconditionally: the selection may also come from
        # MEMPOOL_TOPOLOGY, and structural errors (a mesh that does not
        # tile the cluster) only surface when the family is built.
        settings.probe_topology()
    except ValueError as error:
        # A typo'd --topology spec fails here, before any sweep expands.
        print(error)
        return 1
    print(f"MemPool reproduction — experiment scale: {settings.scale_label}\n")
    for name, result, elapsed in run_experiments(selected, settings, executor):
        print(f"=== {name} ({elapsed:.1f} s) ===")
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
