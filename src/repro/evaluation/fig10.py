"""Figure 10: energy-per-instruction breakdown of the TopH tile.

Reports, for the selected cluster configuration, the energy of an ``add``, a
``mul``, a local load and a remote load split into core / interconnect /
memory-bank contributions, plus the derived ratios the paper quotes:

* a local load costs about as much as a ``mul`` and ~2.3x an ``add``;
* a remote load costs ~2x a local load (interconnect portion ~2.9x) and only
  ~4.5x an ``add``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.energy import EnergyModel, InstructionEnergy
from repro.evaluation.settings import ExperimentSettings
from repro.experiments import Executor, Sweep
from repro.utils.tables import format_table


@dataclass
class Fig10Result:
    """Energy-per-instruction table plus the paper's headline ratios."""

    entries: list[InstructionEnergy] = field(default_factory=list)

    def entry(self, name: str) -> InstructionEnergy:
        """Return the energy entry named ``name``."""
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no instruction energy entry named {name!r}")

    @property
    def remote_over_local(self) -> float:
        """Remote-load energy divided by local-load energy."""
        return self.entry("remote load").total_pj / self.entry("local load").total_pj

    @property
    def remote_over_add(self) -> float:
        """Remote-load energy divided by ``add`` energy."""
        return self.entry("remote load").total_pj / self.entry("add").total_pj

    @property
    def local_over_add(self) -> float:
        """Local-load energy divided by ``add`` energy."""
        return self.entry("local load").total_pj / self.entry("add").total_pj

    @property
    def interconnect_remote_over_local(self) -> float:
        """Interconnect-energy ratio of a remote over a local load."""
        return (
            self.entry("remote load").interconnect_pj
            / self.entry("local load").interconnect_pj
        )

    def report(self) -> str:
        """Textual rendering of the Figure 10 table plus the headline ratios."""
        rows = [
            [entry.name, entry.core_pj, entry.interconnect_pj, entry.bank_pj, entry.total_pj]
            for entry in self.entries
        ]
        table = format_table(
            ["instruction", "core (pJ)", "interconnect (pJ)", "banks (pJ)", "total (pJ)"],
            rows,
            precision=1,
            title="Figure 10: energy per instruction of the TopH tile",
        )
        ratios = (
            f"remote/local load energy: {self.remote_over_local:.2f}x, "
            f"remote-load/add: {self.remote_over_add:.2f}x, "
            f"local-load/add: {self.local_over_add:.2f}x, "
            f"interconnect remote/local: {self.interconnect_remote_over_local:.2f}x"
        )
        return f"{table}\n{ratios}"


def compute_fig10_point(*, topology: str = "toph") -> list[InstructionEnergy]:
    """Compute the per-instruction energy entries for one topology.

    Module-level point function of the sweep engine (see
    :mod:`repro.experiments`).  The energy figures always refer to the
    full 64-tile cluster (the remote-access mix depends on the cluster
    size), so the simulation scale is not a parameter.

    Parameters
    ----------
    topology : str
        Interconnect topology to evaluate.

    Returns
    -------
    list of InstructionEnergy
        One entry per instruction class (add, mul, local/remote load).

    Examples
    --------
    >>> entries = compute_fig10_point(topology="toph")
    >>> any(entry.name == "remote load" for entry in entries)
    True
    """
    from repro.core.config import MemPoolConfig

    cluster = MemPoolCluster(MemPoolConfig.full(topology))
    return EnergyModel(cluster).instruction_energies()


def fig10_sweep(
    settings: ExperimentSettings | None = None, topology: str = "toph"
) -> Sweep:
    """The (single-point) Figure 10 sweep for ``topology``."""
    del settings  # the energy table does not depend on the simulation scale
    return Sweep(
        runner="repro.evaluation.fig10:compute_fig10_point",
        base={"topology": topology},
        name="fig10",
    )


def assemble_fig10(specs, results) -> Fig10Result:
    """Wrap the single point's entries into a :class:`Fig10Result`."""
    del specs
    (entries,) = results
    return Fig10Result(entries=entries)


def run_fig10(
    settings: ExperimentSettings | None = None,
    topology: str = "toph",
    executor: Executor | None = None,
) -> Fig10Result:
    """Compute the Figure 10 breakdown for ``topology``.

    The energy figures always refer to the full 64-tile cluster (the remote
    access mix depends on the cluster size), regardless of the simulation
    scale used for the performance experiments.

    Examples
    --------
    >>> result = run_fig10()
    >>> result.remote_over_local > 1.0
    True
    """
    sweep = fig10_sweep(settings, topology)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_fig10(specs, results)
