"""Figure 10: energy-per-instruction breakdown of the TopH tile.

Reports, for the selected cluster configuration, the energy of an ``add``, a
``mul``, a local load and a remote load split into core / interconnect /
memory-bank contributions, plus the derived ratios the paper quotes:

* a local load costs about as much as a ``mul`` and ~2.3x an ``add``;
* a remote load costs ~2x a local load (interconnect portion ~2.9x) and only
  ~4.5x an ``add``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.energy import EnergyModel, InstructionEnergy
from repro.evaluation.settings import ExperimentSettings
from repro.utils.tables import format_table


@dataclass
class Fig10Result:
    """Energy-per-instruction table plus the paper's headline ratios."""

    entries: list[InstructionEnergy] = field(default_factory=list)

    def entry(self, name: str) -> InstructionEnergy:
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no instruction energy entry named {name!r}")

    @property
    def remote_over_local(self) -> float:
        return self.entry("remote load").total_pj / self.entry("local load").total_pj

    @property
    def remote_over_add(self) -> float:
        return self.entry("remote load").total_pj / self.entry("add").total_pj

    @property
    def local_over_add(self) -> float:
        return self.entry("local load").total_pj / self.entry("add").total_pj

    @property
    def interconnect_remote_over_local(self) -> float:
        return (
            self.entry("remote load").interconnect_pj
            / self.entry("local load").interconnect_pj
        )

    def report(self) -> str:
        rows = [
            [entry.name, entry.core_pj, entry.interconnect_pj, entry.bank_pj, entry.total_pj]
            for entry in self.entries
        ]
        table = format_table(
            ["instruction", "core (pJ)", "interconnect (pJ)", "banks (pJ)", "total (pJ)"],
            rows,
            precision=1,
            title="Figure 10: energy per instruction of the TopH tile",
        )
        ratios = (
            f"remote/local load energy: {self.remote_over_local:.2f}x, "
            f"remote-load/add: {self.remote_over_add:.2f}x, "
            f"local-load/add: {self.local_over_add:.2f}x, "
            f"interconnect remote/local: {self.interconnect_remote_over_local:.2f}x"
        )
        return f"{table}\n{ratios}"


def run_fig10(
    settings: ExperimentSettings | None = None, topology: str = "toph"
) -> Fig10Result:
    """Compute the Figure 10 breakdown for ``topology``.

    The energy figures always refer to the full 64-tile cluster (the remote
    access mix depends on the cluster size), regardless of the simulation
    scale used for the performance experiments.
    """
    del settings  # the energy table does not depend on the simulation scale
    from repro.core.config import MemPoolConfig

    cluster = MemPoolCluster(MemPoolConfig.full(topology))
    model = EnergyModel(cluster)
    return Fig10Result(entries=model.instruction_energies())
