"""Figure 5: throughput and average latency of Top1 / Top4 / TopH vs injected load.

Paper observations this experiment reproduces:

* Top1 congests around 0.10 request/core/cycle — the single remote port per
  tile concentrates the traffic of four cores;
* Top4 and TopH support roughly four times that load (about
  0.38 request/core/cycle in the paper);
* TopH's average latency stays below ~6 cycles up to a load of about
  0.33 request/core/cycle and is lower than Top4's thanks to the 3-cycle
  local-group accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.series import collect_series
from repro.evaluation.settings import (
    DEFAULT_MEASURE_CYCLES,
    DEFAULT_SEED,
    DEFAULT_WARMUP_CYCLES,
    ExperimentSettings,
)
from repro.experiments import Executor, ExperimentSpec, Sweep
from repro.traffic import TrafficResult, TrafficSimulation
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_series

#: Injected loads swept by default (request/core/cycle).
DEFAULT_LOADS = (0.025, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5)
#: Topologies shown in the figure.
FIG5_TOPOLOGIES = ("top1", "top4", "toph")


@dataclass
class Fig5Result:
    """Per-topology throughput/latency series."""

    loads: tuple[float, ...]
    results: dict[str, list[TrafficResult]] = field(default_factory=dict)

    def throughput(self, topology: str) -> list[float]:
        """Accepted-throughput series of ``topology``, one value per load."""
        return [result.throughput for result in self.results[topology]]

    def latency(self, topology: str) -> list[float]:
        """Average-latency series of ``topology``, one value per load."""
        return [result.average_latency for result in self.results[topology]]

    def saturation_throughput(self, topology: str) -> float:
        """Highest accepted throughput observed for ``topology``."""
        return max(self.throughput(topology))

    def latency_at(self, topology: str, load: float) -> float:
        """Average latency at the sweep point closest to ``load``."""
        index = min(range(len(self.loads)), key=lambda i: abs(self.loads[i] - load))
        return self.latency(topology)[index]

    def report(self) -> str:
        """Textual rendering of Figures 5a (throughput) and 5b (latency)."""
        throughput = format_series(
            "injected load",
            list(self.loads),
            {topology: self.throughput(topology) for topology in self.results},
            title="Figure 5a: throughput (request/core/cycle)",
        )
        latency = format_series(
            "injected load",
            list(self.loads),
            {topology: self.latency(topology) for topology in self.results},
            title="Figure 5b: average round-trip latency (cycles)",
        )
        return f"{throughput}\n\n{latency}"

    def plot(self) -> str:
        """ASCII rendering of Figure 5a (throughput vs injected load)."""
        return ascii_plot(
            list(self.loads),
            {topology: self.throughput(topology) for topology in self.results},
            x_label="injected load (request/core/cycle)",
            y_label="thr",
            title="Figure 5a (ASCII): accepted throughput",
        )


def simulate_fig5_point(
    *,
    topology: str,
    load: float,
    full_scale: bool = False,
    warmup_cycles: int = DEFAULT_WARMUP_CYCLES,
    measure_cycles: int = DEFAULT_MEASURE_CYCLES,
    seed: int = DEFAULT_SEED,
    engine: str = "legacy",
    pattern: str = "uniform",
    injector: str = "poisson",
    energy: bool = False,
) -> TrafficResult:
    """Simulate one (topology, load) point of Figure 5.

    This is the sweep-engine *point function*: a module-level callable
    taking only picklable keyword arguments, so worker processes can
    re-import and run it (see :mod:`repro.experiments`).  Every point
    builds its own cluster and RNGs, making points independent.

    Parameters
    ----------
    topology : str
        Interconnect topology (``top1``, ``top4``, ``toph`` or ``topx``).
    load : float
        Injected load in requests per core per cycle.
    full_scale : bool
        Use the full 256-core cluster instead of the scaled 64-core one.
    warmup_cycles, measure_cycles : int
        Warm-up and measurement windows of the traffic simulation.
    seed : int
        Seed of the traffic generator.
    engine : str
        Timing engine (``legacy``, ``vector`` or ``batch``); all produce
        identical results for fixed seeds, ``vector`` is several times
        faster and ``batch`` additionally lets the sweep engine advance
        compatible points together (:mod:`repro.experiments.batch`).
    pattern, injector : str
        Workload registry names (see :mod:`repro.workloads`); the paper's
        Figure 5 is ``uniform`` x ``poisson``, but any registered pair
        runs through either engine.
    energy : bool
        Attach the Figure 10 wire-energy summary to the result
        (:func:`repro.energy.traffic.traffic_energy`); derived from the
        result's counters, so it never changes the timing numbers.

    Returns
    -------
    TrafficResult
        Throughput/latency measurements of the point.

    Examples
    --------
    >>> result = simulate_fig5_point(
    ...     topology="toph", load=0.1, warmup_cycles=50, measure_cycles=100)
    >>> 0.0 < result.throughput <= 0.2
    True
    """
    settings = ExperimentSettings(
        full_scale=full_scale,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
        engine=engine,
        pattern=pattern,
        injector=injector,
        energy=energy,
    )
    cluster = MemPoolCluster(settings.config(topology), engine=settings.engine)
    simulation = TrafficSimulation(
        cluster, load, pattern=settings.pattern, seed=settings.seed,
        injector=settings.injector,
    )
    result = simulation.run(
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
    )
    from repro.energy.traffic import attach_energy

    return attach_energy(cluster, result, settings.energy)


def fig5_sweep(
    settings: ExperimentSettings | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    topologies: tuple[str, ...] = FIG5_TOPOLOGIES,
) -> Sweep:
    """The (topology x load) parameter grid of Figure 5 as a :class:`Sweep`."""
    settings = settings or ExperimentSettings()
    return Sweep(
        runner="repro.evaluation.fig5:simulate_fig5_point",
        grid={"topology": tuple(topologies), "load": tuple(loads)},
        base=settings.as_params(),
        name="fig5",
    )


def assemble_fig5(
    specs: list[ExperimentSpec], results: list[TrafficResult]
) -> Fig5Result:
    """Group per-point traffic results back into a :class:`Fig5Result`."""
    loads, grouped = collect_series(specs, results, "topology")
    return Fig5Result(loads=loads, results=grouped)


def run_fig5(
    settings: ExperimentSettings | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    topologies: tuple[str, ...] = FIG5_TOPOLOGIES,
    executor: Executor | None = None,
) -> Fig5Result:
    """Run the uniform-random traffic sweep of Figure 5.

    Parameters
    ----------
    settings : ExperimentSettings, optional
        Scale/window knobs; defaults honour ``MEMPOOL_FULL``.
    loads : tuple of float
        Injected loads to sweep.
    topologies : tuple of str
        Topologies to sweep.
    executor : repro.experiments.Executor, optional
        Sweep engine to run on.  The default is a serial, uncached
        executor; pass ``Executor(workers=N, cache=...)`` to parallelise
        and cache.

    Examples
    --------
    >>> settings = ExperimentSettings(warmup_cycles=50, measure_cycles=100)
    >>> result = run_fig5(settings, loads=(0.05,), topologies=("toph",))
    >>> len(result.throughput("toph"))
    1
    """
    sweep = fig5_sweep(settings, loads, topologies)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_fig5(specs, results)
