"""Figure 5: throughput and average latency of Top1 / Top4 / TopH vs injected load.

Paper observations this experiment reproduces:

* Top1 congests around 0.10 request/core/cycle — the single remote port per
  tile concentrates the traffic of four cores;
* Top4 and TopH support roughly four times that load (about
  0.38 request/core/cycle in the paper);
* TopH's average latency stays below ~6 cycles up to a load of about
  0.33 request/core/cycle and is lower than Top4's thanks to the 3-cycle
  local-group accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import ExperimentSettings
from repro.traffic import TrafficResult, TrafficSimulation
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_series

#: Injected loads swept by default (request/core/cycle).
DEFAULT_LOADS = (0.025, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5)
#: Topologies shown in the figure.
FIG5_TOPOLOGIES = ("top1", "top4", "toph")


@dataclass
class Fig5Result:
    """Per-topology throughput/latency series."""

    loads: tuple[float, ...]
    results: dict[str, list[TrafficResult]] = field(default_factory=dict)

    def throughput(self, topology: str) -> list[float]:
        return [result.throughput for result in self.results[topology]]

    def latency(self, topology: str) -> list[float]:
        return [result.average_latency for result in self.results[topology]]

    def saturation_throughput(self, topology: str) -> float:
        """Highest accepted throughput observed for ``topology``."""
        return max(self.throughput(topology))

    def latency_at(self, topology: str, load: float) -> float:
        """Average latency at the sweep point closest to ``load``."""
        index = min(range(len(self.loads)), key=lambda i: abs(self.loads[i] - load))
        return self.latency(topology)[index]

    def report(self) -> str:
        throughput = format_series(
            "injected load",
            list(self.loads),
            {topology: self.throughput(topology) for topology in self.results},
            title="Figure 5a: throughput (request/core/cycle)",
        )
        latency = format_series(
            "injected load",
            list(self.loads),
            {topology: self.latency(topology) for topology in self.results},
            title="Figure 5b: average round-trip latency (cycles)",
        )
        return f"{throughput}\n\n{latency}"

    def plot(self) -> str:
        """ASCII rendering of Figure 5a (throughput vs injected load)."""
        return ascii_plot(
            list(self.loads),
            {topology: self.throughput(topology) for topology in self.results},
            x_label="injected load (request/core/cycle)",
            y_label="thr",
            title="Figure 5a (ASCII): accepted throughput",
        )


def run_fig5(
    settings: ExperimentSettings | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    topologies: tuple[str, ...] = FIG5_TOPOLOGIES,
) -> Fig5Result:
    """Run the uniform-random traffic sweep of Figure 5."""
    settings = settings or ExperimentSettings()
    outcome = Fig5Result(loads=tuple(loads))
    for topology in topologies:
        series = []
        for load in loads:
            cluster = MemPoolCluster(settings.config(topology))
            simulation = TrafficSimulation(cluster, load, seed=settings.seed)
            series.append(
                simulation.run(
                    warmup_cycles=settings.warmup_cycles,
                    measure_cycles=settings.measure_cycles,
                )
            )
        outcome.results[topology] = series
    return outcome
