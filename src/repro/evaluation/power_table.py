"""Section VI-D: tile and cluster power while running ``matmul`` at 500 MHz.

The paper reports an average tile power of 20.9 mW (instruction cache
8.3 mW / 39.5 %, Snitch cores 5.6 mW / 26.6 %, SPM banks 2.6 mW / 12.6 %,
request+response interconnects 1.7 mW) and a cluster total of 1.55 W with
86 % of it consumed inside the tiles.  This driver runs the matmul benchmark
on the TopH cluster, feeds the activity counters into the power model and
prints the same breakdown rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.energy import PowerBreakdown, PowerModel
from repro.evaluation.settings import DEFAULT_SEED, ExperimentSettings
from repro.experiments import Executor, Sweep
from repro.kernels import KernelResult, MatmulKernel
from repro.utils.tables import format_table

#: The paper's reference rows: component -> (mW per tile, share of tile power).
PAPER_TILE_POWER = {
    "instruction cache": (8.3, 0.395),
    "snitch cores": (5.6, 0.266),
    "spm banks": (2.6, 0.126),
    "interconnect": (1.7, 0.081),
}
PAPER_TILE_TOTAL_MW = 20.9
PAPER_CLUSTER_TOTAL_W = 1.55
PAPER_TILES_FRACTION = 0.86


@dataclass
class PowerTableResult:
    """Measured power breakdown next to the paper's reference numbers."""

    breakdown: PowerBreakdown
    kernel: KernelResult
    frequency_hz: float

    def report(self) -> str:
        """Textual rendering of the Section VI-D power-breakdown table."""
        rows = []
        for name, milliwatts, share in self.breakdown.rows():
            paper_mw, paper_share = PAPER_TILE_POWER.get(name, (float("nan"), float("nan")))
            rows.append([name, milliwatts, share, paper_mw, paper_share])
        rows.append(
            [
                "tile total",
                self.breakdown.tile_total_mw,
                1.0,
                PAPER_TILE_TOTAL_MW,
                1.0,
            ]
        )
        table = format_table(
            ["component", "model (mW)", "model share", "paper (mW)", "paper share"],
            rows,
            precision=2,
            title="Section VI-D: tile power breakdown while running matmul",
        )
        summary = (
            f"cluster total: {self.breakdown.cluster_total_w:.2f} W "
            f"(paper: {PAPER_CLUSTER_TOTAL_W:.2f} W for 64 tiles), "
            f"tiles fraction: {self.breakdown.tiles_fraction:.0%} "
            f"(paper: {PAPER_TILES_FRACTION:.0%})"
        )
        return f"{table}\n{summary}"


def compute_power_point(
    *,
    full_scale: bool = False,
    seed: int = DEFAULT_SEED,
    frequency_hz: float = 500e6,
    engine: str = "legacy",
) -> PowerTableResult:
    """Run matmul on TopH and evaluate the power model on its activity.

    Module-level point function of the sweep engine (see
    :mod:`repro.experiments`): a fresh cluster and kernel are built from
    the picklable arguments, and the returned result is itself picklable.

    Parameters
    ----------
    full_scale : bool
        Use the full 256-core cluster and the paper's matmul size.
    seed : int
        Seed of the matmul input data.
    frequency_hz : float
        Operating frequency the power model evaluates at.
    engine : str
        Timing engine (``legacy`` or ``vector``); both produce identical
        activity counters for fixed seeds, ``vector`` is faster.

    Returns
    -------
    PowerTableResult
        The tile/cluster power breakdown plus the kernel activity.

    Examples
    --------
    >>> result = compute_power_point()
    >>> result.breakdown.tile_total_mw > 0
    True
    """
    settings = ExperimentSettings(full_scale=full_scale, seed=seed, engine=engine)
    cluster = MemPoolCluster(settings.config("toph"), engine=settings.engine)
    kernel = MatmulKernel(cluster, size=settings.matmul_size, seed=settings.seed)
    result = kernel.run(verify=False)
    model = PowerModel(cluster, frequency_hz=frequency_hz)
    return PowerTableResult(
        breakdown=model.breakdown(result.system),
        kernel=result,
        frequency_hz=frequency_hz,
    )


def power_sweep(
    settings: ExperimentSettings | None = None, frequency_hz: float = 500e6
) -> Sweep:
    """The (single-point) Section VI-D power sweep."""
    settings = settings or ExperimentSettings()
    return Sweep(
        runner="repro.evaluation.power_table:compute_power_point",
        base={
            "full_scale": settings.full_scale,
            "seed": settings.seed,
            "frequency_hz": frequency_hz,
            "engine": settings.engine,
        },
        name="power",
    )


def assemble_power(specs, results) -> PowerTableResult:
    """Unwrap the single point of the power sweep."""
    del specs
    (result,) = results
    return result


def run_power_table(
    settings: ExperimentSettings | None = None,
    frequency_hz: float = 500e6,
    executor: Executor | None = None,
) -> PowerTableResult:
    """Run matmul on TopH and evaluate the power model on its activity.

    Examples
    --------
    >>> result = run_power_table()
    >>> 0.0 < result.breakdown.tiles_fraction <= 1.0
    True
    """
    sweep = power_sweep(settings, frequency_hz)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_power(specs, results)
