"""Figure 7: benchmark performance relative to the ideal-crossbar baseline.

For every benchmark (matmul, 2dconv, dct) and every topology (Top1, Top4,
TopH) — with and without the scrambling logic — the kernel is simulated and
its runtime is normalised to the corresponding ideal-crossbar baseline (TopX
without scrambling, TopXS with scrambling).  Paper observations reproduced
here:

* TopH generally beats Top4 and both outperform Top1 (by about 3x in the
  extreme cases, matmul in particular);
* TopH stays within ~20 % of the ideal baseline even for the remote-heavy
  matmul;
* the scrambling logic gains up to ~20 % on the benchmarks with local data
  (2dconv, dct) and makes all topologies perform nearly identically on dct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import ExperimentSettings
from repro.kernels import Conv2dKernel, DctKernel, KernelResult, MatmulKernel
from repro.utils.tables import format_table

#: Topologies of the figure; ``topx`` is the baseline.
FIG7_TOPOLOGIES = ("top1", "top4", "toph", "topx")
FIG7_KERNELS = ("matmul", "2dconv", "dct")


@dataclass
class Fig7Result:
    """Kernel cycle counts and relative performance per configuration."""

    #: cycles[(kernel, topology, scrambling)] -> simulated cycles
    cycles: dict[tuple[str, str, bool], int] = field(default_factory=dict)
    #: kernel results (for correctness flags and activity counters)
    results: dict[tuple[str, str, bool], KernelResult] = field(default_factory=dict)

    def relative_performance(self, kernel: str, topology: str, scrambling: bool) -> float:
        """Runtime of the ideal baseline divided by this configuration's runtime."""
        baseline = self.cycles[(kernel, "topx", scrambling)]
        return baseline / self.cycles[(kernel, topology, scrambling)]

    def speedup_over_top1(self, kernel: str, topology: str, scrambling: bool) -> float:
        """How much faster ``topology`` is than Top1 on ``kernel``."""
        return self.cycles[(kernel, "top1", scrambling)] / self.cycles[
            (kernel, topology, scrambling)
        ]

    def scrambling_gain(self, kernel: str, topology: str) -> float:
        """Speedup the scrambling logic brings to ``topology`` on ``kernel``."""
        return self.cycles[(kernel, topology, False)] / self.cycles[(kernel, topology, True)]

    def all_correct(self) -> bool:
        return all(result.correct for result in self.results.values())

    def _present(self, candidates, index) -> list[str]:
        """The kernels/topologies actually present in the recorded cycles."""
        return [
            name
            for name in candidates
            if any(key[index] == name for key in self.cycles)
        ]

    def report(self) -> str:
        kernels = self._present(FIG7_KERNELS, 0)
        topologies = self._present(FIG7_TOPOLOGIES, 1)
        headers = ["benchmark"]
        for topology in topologies:
            headers.append(topology)
            headers.append(f"{topology}S")
        rows = []
        for kernel in kernels:
            row: list[object] = [kernel]
            for topology in topologies:
                row.append(self.relative_performance(kernel, topology, False))
                row.append(self.relative_performance(kernel, topology, True))
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Figure 7: performance relative to the ideal-crossbar baseline "
            "(TopX / TopXS); 'S' columns use the scrambling logic",
        )


def _build_kernel(name: str, cluster: MemPoolCluster, settings: ExperimentSettings):
    if name == "matmul":
        return MatmulKernel(cluster, size=settings.matmul_size, seed=settings.seed)
    if name == "2dconv":
        return Conv2dKernel(cluster, width=settings.conv_width, seed=settings.seed)
    if name == "dct":
        return DctKernel(
            cluster, blocks_per_core=settings.dct_blocks_per_core, seed=settings.seed
        )
    raise ValueError(f"unknown kernel {name!r}")


def run_fig7(
    settings: ExperimentSettings | None = None,
    kernels: tuple[str, ...] = FIG7_KERNELS,
    topologies: tuple[str, ...] = FIG7_TOPOLOGIES,
    verify: bool = True,
) -> Fig7Result:
    """Run every (kernel, topology, scrambling) combination of Figure 7."""
    settings = settings or ExperimentSettings()
    outcome = Fig7Result()
    for kernel_name in kernels:
        for topology in topologies:
            for scrambling in (False, True):
                config = settings.config(topology, scrambling_enabled=scrambling)
                cluster = MemPoolCluster(config)
                kernel = _build_kernel(kernel_name, cluster, settings)
                result = kernel.run(verify=verify)
                key = (kernel_name, topology, scrambling)
                outcome.cycles[key] = result.cycles
                outcome.results[key] = result
    return outcome
