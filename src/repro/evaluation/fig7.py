"""Figure 7: benchmark performance relative to the ideal-crossbar baseline.

For every benchmark (matmul, 2dconv, dct) and every topology (Top1, Top4,
TopH) — with and without the scrambling logic — the kernel is simulated and
its runtime is normalised to the corresponding ideal-crossbar baseline (TopX
without scrambling, TopXS with scrambling).  Paper observations reproduced
here:

* TopH generally beats Top4 and both outperform Top1 (by about 3x in the
  extreme cases, matmul in particular);
* TopH stays within ~20 % of the ideal baseline even for the remote-heavy
  matmul;
* the scrambling logic gains up to ~20 % on the benchmarks with local data
  (2dconv, dct) and makes all topologies perform nearly identically on dct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import DEFAULT_SEED, ExperimentSettings
from repro.experiments import Executor, ExperimentSpec, Sweep
from repro.kernels import Conv2dKernel, DctKernel, KernelResult, MatmulKernel
from repro.utils.tables import format_table

#: Topologies of the figure; ``topx`` is the baseline.
FIG7_TOPOLOGIES = ("top1", "top4", "toph", "topx")
FIG7_KERNELS = ("matmul", "2dconv", "dct")


@dataclass
class Fig7Result:
    """Kernel cycle counts and relative performance per configuration."""

    #: cycles[(kernel, topology, scrambling)] -> simulated cycles
    cycles: dict[tuple[str, str, bool], int] = field(default_factory=dict)
    #: kernel results (for correctness flags and activity counters)
    results: dict[tuple[str, str, bool], KernelResult] = field(default_factory=dict)

    def relative_performance(self, kernel: str, topology: str, scrambling: bool) -> float:
        """Runtime of the ideal baseline divided by this configuration's runtime."""
        baseline = self.cycles[(kernel, "topx", scrambling)]
        return baseline / self.cycles[(kernel, topology, scrambling)]

    def speedup_over_top1(self, kernel: str, topology: str, scrambling: bool) -> float:
        """How much faster ``topology`` is than Top1 on ``kernel``."""
        return self.cycles[(kernel, "top1", scrambling)] / self.cycles[
            (kernel, topology, scrambling)
        ]

    def scrambling_gain(self, kernel: str, topology: str) -> float:
        """Speedup the scrambling logic brings to ``topology`` on ``kernel``."""
        return self.cycles[(kernel, topology, False)] / self.cycles[(kernel, topology, True)]

    def all_correct(self) -> bool:
        """Whether every kernel run verified against its numpy reference."""
        return all(result.correct for result in self.results.values())

    def _present(self, candidates, index) -> list[str]:
        """The kernels/topologies actually present in the recorded cycles."""
        return [
            name
            for name in candidates
            if any(key[index] == name for key in self.cycles)
        ]

    def report(self) -> str:
        """Textual rendering of the Figure 7 relative-performance table."""
        kernels = self._present(FIG7_KERNELS, 0)
        topologies = self._present(FIG7_TOPOLOGIES, 1)
        headers = ["benchmark"]
        for topology in topologies:
            headers.append(topology)
            headers.append(f"{topology}S")
        rows = []
        for kernel in kernels:
            row: list[object] = [kernel]
            for topology in topologies:
                row.append(self.relative_performance(kernel, topology, False))
                row.append(self.relative_performance(kernel, topology, True))
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Figure 7: performance relative to the ideal-crossbar baseline "
            "(TopX / TopXS); 'S' columns use the scrambling logic",
        )


def _build_kernel(name: str, cluster: MemPoolCluster, settings: ExperimentSettings):
    if name == "matmul":
        return MatmulKernel(cluster, size=settings.matmul_size, seed=settings.seed)
    if name == "2dconv":
        return Conv2dKernel(cluster, width=settings.conv_width, seed=settings.seed)
    if name == "dct":
        return DctKernel(
            cluster, blocks_per_core=settings.dct_blocks_per_core, seed=settings.seed
        )
    raise ValueError(f"unknown kernel {name!r}")


def simulate_fig7_point(
    *,
    kernel: str,
    topology: str,
    scrambling: bool,
    full_scale: bool = False,
    seed: int = DEFAULT_SEED,
    verify: bool = True,
    engine: str = "legacy",
) -> KernelResult:
    """Simulate one (kernel, topology, scrambling) point of Figure 7.

    Module-level point function of the sweep engine (see
    :mod:`repro.experiments`): every call builds a fresh cluster and
    kernel from picklable primitives, so points are independent and the
    sweep parallelises across processes.

    Parameters
    ----------
    kernel : str
        Benchmark name: ``matmul``, ``2dconv`` or ``dct``.
    topology : str
        Interconnect topology (``topx`` is the ideal-crossbar baseline).
    scrambling : bool
        Whether the hybrid-addressing scrambling logic is enabled.
    full_scale : bool
        Use the full 256-core cluster and the paper's benchmark sizes.
    seed : int
        Seed of the kernel's input data.
    verify : bool
        Check the simulated memory contents against a numpy reference.
    engine : str
        Timing engine (``legacy`` or ``vector``); both produce identical
        cycle counts for fixed seeds, ``vector`` is faster.

    Returns
    -------
    KernelResult
        Cycle count, correctness flag and activity counters.

    Examples
    --------
    >>> result = simulate_fig7_point(
    ...     kernel="dct", topology="toph", scrambling=True)
    >>> result.correct and result.cycles > 0
    True
    """
    settings = ExperimentSettings(full_scale=full_scale, seed=seed, engine=engine)
    config = settings.config(topology, scrambling_enabled=scrambling)
    cluster = MemPoolCluster(config, engine=settings.engine)
    return _build_kernel(kernel, cluster, settings).run(verify=verify)


def fig7_sweep(
    settings: ExperimentSettings | None = None,
    kernels: tuple[str, ...] = FIG7_KERNELS,
    topologies: tuple[str, ...] = FIG7_TOPOLOGIES,
    verify: bool = True,
) -> Sweep:
    """The (kernel x topology x scrambling) grid of Figure 7 as a :class:`Sweep`."""
    settings = settings or ExperimentSettings()
    return Sweep(
        runner="repro.evaluation.fig7:simulate_fig7_point",
        grid={
            "kernel": tuple(kernels),
            "topology": tuple(topologies),
            "scrambling": (False, True),
        },
        base={
            "full_scale": settings.full_scale,
            "seed": settings.seed,
            "verify": verify,
            "engine": settings.engine,
        },
        name="fig7",
    )


def assemble_fig7(
    specs: list[ExperimentSpec], results: list[KernelResult]
) -> Fig7Result:
    """Index per-point kernel results back into a :class:`Fig7Result`."""
    outcome = Fig7Result()
    for spec, result in zip(specs, results):
        key = (spec.params["kernel"], spec.params["topology"], spec.params["scrambling"])
        outcome.cycles[key] = result.cycles
        outcome.results[key] = result
    return outcome


def run_fig7(
    settings: ExperimentSettings | None = None,
    kernels: tuple[str, ...] = FIG7_KERNELS,
    topologies: tuple[str, ...] = FIG7_TOPOLOGIES,
    verify: bool = True,
    executor: Executor | None = None,
) -> Fig7Result:
    """Run every (kernel, topology, scrambling) combination of Figure 7.

    Parameters
    ----------
    settings : ExperimentSettings, optional
        Scale knobs; defaults honour ``MEMPOOL_FULL``.
    kernels, topologies : tuple of str
        Subsets of the figure's grid to run.
    verify : bool
        Check every kernel's memory contents against a numpy reference.
    executor : repro.experiments.Executor, optional
        Sweep engine to run on.  ``Executor(workers=N)`` parallelises the
        24-point grid across N processes; a cached executor makes warm
        re-runs near-instant.

    Examples
    --------
    >>> result = run_fig7(kernels=("dct",), topologies=("toph", "topx"))
    >>> result.all_correct()
    True
    """
    sweep = fig7_sweep(settings, kernels, topologies, verify)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_fig7(specs, results)
