"""Shared assembly helper of the traffic-sweep figures (Figures 5 and 6).

Both figures sweep (group-key x load) grids whose points return
:class:`~repro.traffic.simulation.TrafficResult`; this module folds the
flat per-point result list back into the per-group series the figure
result objects hold, reconstructing the load axis in first-seen order.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.experiments import ExperimentSpec


def collect_series(
    specs: Sequence[ExperimentSpec],
    results: Sequence[Any],
    group_key: str,
) -> tuple[tuple[float, ...], dict[Hashable, list[Any]]]:
    """Group sweep results by ``group_key`` and recover the load axis.

    Parameters
    ----------
    specs, results : sequence
        The expanded sweep specs and their results, index-aligned.
    group_key : str
        The spec parameter that names the series (``"topology"`` for
        Figure 5, ``"p_local"`` for Figure 6).

    Returns
    -------
    loads : tuple of float
        The distinct ``load`` values in first-seen (sweep) order.
    grouped : dict
        Each group's results, in load order.

    Examples
    --------
    >>> specs = [ExperimentSpec("x:y", {"topology": "toph", "load": l})
    ...          for l in (0.1, 0.2)]
    >>> loads, grouped = collect_series(specs, ["a", "b"], "topology")
    >>> loads, grouped["toph"]
    ((0.1, 0.2), ['a', 'b'])
    """
    grouped: dict[Hashable, list[Any]] = {}
    for spec, result in zip(specs, results):
        grouped.setdefault(spec.params[group_key], []).append(result)
    # The grid is (group x load), so the specs of any one group list the
    # load axis verbatim — including repeated values, which de-duplication
    # would desynchronise from the per-group series lengths.
    if specs:
        first_group = specs[0].params[group_key]
        loads = tuple(
            spec.params["load"]
            for spec in specs
            if spec.params[group_key] == first_group
        )
    else:
        loads = ()
    return loads, grouped
