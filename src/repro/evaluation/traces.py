"""Traces catalogue: replay one recorded trace across the topology families.

Not a figure of the paper — the trace-driven companion of the topology
catalogue (:mod:`repro.evaluation.topologies`): one recorded flit trace
(:mod:`repro.workloads.trace`) is replayed, unchanged, on each of the six
parameterized topology families added beyond the paper's four, and every
point reports latency, throughput *and* the Figure 10 wire-energy cost.
Because the replay is deterministic — the recorded workload asks for no
random draws — the differences between rows are purely structural: the
same requests, at the same cycles, routed through different networks.

The trace comes from ``--trace`` / ``MEMPOOL_TRACE``; without one the
experiment records a small deterministic default (uniform x poisson on
TopH) into the result-cache directory on first use.  Every sweep point
carries the trace's content sha256 in its parameters, so cache keys are
content-addressed: re-recording the trace re-runs every point, and a
file modified after sweep expansion fails replay with a clear message.

Run it with ``python -m repro.experiments run traces`` (add
``--trace my.trace.gz`` to replay your own recording).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import (
    DEFAULT_SEED,
    ExperimentSettings,
)
from repro.experiments import Executor, ExperimentSpec, Sweep
from repro.traffic import TrafficResult, TrafficSimulation
from repro.workloads.trace import read_trace_header, record_trace

#: The six parameterized topology families (each at its default
#: parameters) the catalogue replays the trace on.
DEFAULT_TRACE_TOPOLOGIES = (
    "butterfly",
    "fully_connected",
    "hierarchical",
    "mesh",
    "ring",
    "torus",
)
#: Recording knobs of the default trace (uniform x poisson on TopH).
DEFAULT_TRACE_TOPOLOGY = "toph"
DEFAULT_TRACE_LOAD = 0.25
DEFAULT_TRACE_WARMUP = 50
DEFAULT_TRACE_MEASURE = 200
#: Extra replay cycles beyond the trace horizon, so late injections can
#: drain through slow topologies inside the measurement window.
DEFAULT_DRAIN_CYCLES = 256


@dataclass
class TraceCatalogueResult:
    """Per-topology measurements of one replayed trace."""

    trace: str
    trace_sha: str
    records: int
    cycles: int
    load: float
    results: dict[str, TrafficResult] = field(default_factory=dict)

    def throughput(self, topology: str) -> float:
        """Accepted throughput of one topology under the trace."""
        return self.results[topology].throughput

    def latency(self, topology: str) -> float:
        """Average round-trip latency of one topology under the trace."""
        return self.results[topology].average_latency

    def energy_per_request(self, topology: str) -> float:
        """Wire-energy per completed request (pJ) of one topology."""
        energy = self.results[topology].energy
        return energy.per_request_pj if energy is not None else 0.0

    def report(self) -> str:
        """One row per topology family: latency, throughput and energy."""
        header = (
            f"Trace catalogue: {os.path.basename(self.trace)} "
            f"(sha {self.trace_sha[:12]}, {self.records} requests over "
            f"{self.cycles} cycles, mean load {self.load:g})"
        )
        rows = [
            f"{'topology':<16} {'throughput':>10} {'avg lat':>8} "
            f"{'p95':>5} {'local':>6} {'pJ/req':>7} {'total nJ':>9}"
        ]
        for topology, result in sorted(self.results.items()):
            energy = result.energy
            per_request = energy.per_request_pj if energy is not None else 0.0
            total_nj = (energy.total_pj / 1e3) if energy is not None else 0.0
            rows.append(
                f"{topology:<16} {result.throughput:>10.3f} "
                f"{result.average_latency:>8.2f} {result.p95_latency:>5d} "
                f"{result.local_fraction:>6.2f} {per_request:>7.2f} "
                f"{total_nj:>9.2f}"
            )
        return header + "\n" + "\n".join(rows)


def simulate_trace_point(
    *,
    topology: str,
    trace: str,
    trace_sha: str,
    load: float,
    topology_params: dict | None = None,
    full_scale: bool = False,
    warmup_cycles: int = 0,
    measure_cycles: int = DEFAULT_TRACE_MEASURE + DEFAULT_DRAIN_CYCLES,
    seed: int = DEFAULT_SEED,
    engine: str = "legacy",
    energy: bool = True,
) -> TrafficResult:
    """Replay one trace on one topology family.

    Module-level point function of the sweep engine: all parameters are
    picklable primitives.  ``trace_sha`` is the content hash the sweep
    was expanded against — the replay components verify the file still
    matches it, so a trace modified between expansion and execution
    fails loudly instead of silently relabelling cached results.

    Parameters
    ----------
    topology : str
        Topology registry name (see :mod:`repro.topologies`).
    trace : str
        Path of the trace file (see :mod:`repro.workloads.trace`).
    trace_sha : str
        Expected content sha256 of the trace.
    load : float
        Offered-load label of the result (the trace's mean rate).
    topology_params : dict, optional
        Family-specific knobs (e.g. ``{"width": 8, "height": 2}``).
    full_scale, warmup_cycles, measure_cycles, seed, engine, energy
        As in :func:`repro.evaluation.fig5.simulate_fig5_point`; the
        sweep passes ``warmup_cycles=0`` and a window covering the whole
        trace plus a drain margin, so the stats span the entire replay.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.evaluation.settings import ExperimentSettings
    >>> with tempfile.TemporaryDirectory() as root:
    ...     path = os.path.join(root, "t.trace.gz")
    ...     sha = record_default_trace(ExperimentSettings(), path)
    ...     result = simulate_trace_point(
    ...         topology="mesh", trace=path, trace_sha=sha, load=0.25)
    >>> result.completed_requests > 0 and result.energy is not None
    True
    """
    settings = ExperimentSettings(
        full_scale=full_scale,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
        engine=engine,
        topology=topology,
        topology_params=dict(topology_params or {}),
        energy=energy,
        trace=trace,
    )
    config = settings.config(topology, topology_params=settings.topology_params)
    cluster = MemPoolCluster(config, engine=settings.engine)
    replay = {"path": trace, "sha": trace_sha}
    simulation = TrafficSimulation(
        cluster, load,
        pattern="trace", pattern_params=replay,
        injector="trace", injector_params=replay,
        seed=settings.seed,
    )
    result = simulation.run(
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
    )
    from repro.energy.traffic import attach_energy

    return attach_energy(cluster, result, settings.energy)


def default_trace_path(settings: ExperimentSettings) -> str:
    """Where the experiment's default recording lives for ``settings``.

    Scale and seed are part of the name — a full-scale trace cannot
    replay on the scaled cluster, and different seeds record different
    traffic — so switching either records a sibling file instead of
    clobbering the first.
    """
    from repro.experiments.cache import default_cache_dir

    scale = "full" if settings.full_scale else "scaled"
    return os.path.join(
        default_cache_dir(), "traces",
        f"default-{scale}-seed{settings.seed}.trace.gz",
    )


def record_default_trace(
    settings: ExperimentSettings, path: str, force: bool = True
) -> str:
    """Record the deterministic default trace to ``path``; returns its sha.

    A short uniform x poisson measurement on the paper's TopH cluster —
    the flit log is engine-independent, so the recorded bytes (and the
    content hash every cache key embeds) do not depend on which engine
    ``settings`` selects.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    config = settings.config(DEFAULT_TRACE_TOPOLOGY)
    cluster = MemPoolCluster(config, engine=settings.engine)
    simulation = TrafficSimulation(
        cluster, DEFAULT_TRACE_LOAD, pattern="uniform",
        injector="poisson", seed=settings.seed,
    )
    result = simulation.run(
        warmup_cycles=DEFAULT_TRACE_WARMUP,
        measure_cycles=DEFAULT_TRACE_MEASURE,
        record_flits=True,
    )
    return record_trace(
        result, config, path,
        meta={
            "source": "default",
            "topology": DEFAULT_TRACE_TOPOLOGY,
            "pattern": "uniform",
            "injector": "poisson",
            "load": DEFAULT_TRACE_LOAD,
            "seed": settings.seed,
        },
        force=force,
    )


def ensure_trace(settings: ExperimentSettings) -> str:
    """The trace the experiment replays: ``settings.trace`` or the default.

    The default is recorded on first use into the result-cache directory
    and reused afterwards (its content is deterministic, so reuse and
    re-record produce identical hashes).
    """
    if settings.trace:
        return settings.trace
    path = default_trace_path(settings)
    if not os.path.exists(path):
        record_default_trace(settings, path)
    return path


def traces_sweep(
    settings: ExperimentSettings | None = None,
    topologies: tuple[str, ...] = DEFAULT_TRACE_TOPOLOGIES,
    drain_cycles: int = DEFAULT_DRAIN_CYCLES,
) -> Sweep:
    """The per-topology replay grid of one trace as a :class:`Sweep`.

    The trace's content sha256 goes into every spec's parameters, making
    the cache keys content-addressed; the load label and the replay
    window come from the trace header (the whole horizon plus
    ``drain_cycles``), so the measurement covers every recorded request.
    """
    settings = settings or ExperimentSettings()
    trace = ensure_trace(settings)
    header = read_trace_header(trace)
    records = int(header["records"])
    cycles = int(header["cycles"])
    cores = int(header["num_cores"])
    load = records / (cores * cycles) if records and cores and cycles else 0.0
    base = settings.as_params()
    base.pop("pattern", None)
    base.pop("injector", None)
    base.update(
        trace=trace,
        trace_sha=str(header["sha256"]),
        load=round(load, 6),
        warmup_cycles=0,
        measure_cycles=cycles + drain_cycles,
        # The catalogue's contract is latency + throughput + energy.
        energy=True,
    )
    return Sweep(
        runner="repro.evaluation.traces:simulate_trace_point",
        grid={"topology": tuple(topologies)},
        base=base,
        name="traces",
    )


def assemble_traces(
    specs: list[ExperimentSpec], results: list[TrafficResult]
) -> TraceCatalogueResult:
    """Fold per-point results back into a :class:`TraceCatalogueResult`."""
    if specs:
        params = specs[0].params
        header = read_trace_header(params["trace"])
        catalogue = TraceCatalogueResult(
            trace=params["trace"],
            trace_sha=params["trace_sha"],
            records=int(header["records"]),
            cycles=int(header["cycles"]),
            load=params["load"],
        )
    else:
        catalogue = TraceCatalogueResult(
            trace="", trace_sha="", records=0, cycles=0, load=0.0
        )
    for spec, result in zip(specs, results):
        catalogue.results[spec.params["topology"]] = result
    return catalogue


def run_traces(
    settings: ExperimentSettings | None = None,
    topologies: tuple[str, ...] = DEFAULT_TRACE_TOPOLOGIES,
    executor: Executor | None = None,
) -> TraceCatalogueResult:
    """Run the trace-replay catalogue sweep.

    Examples
    --------
    >>> result = run_traces(topologies=("mesh", "torus"))
    >>> result.latency("mesh") > 0.0 and result.energy_per_request("torus") > 0.0
    True
    """
    sweep = traces_sweep(settings, topologies)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_traces(specs, results)
