"""Workload catalogue sweep: every pattern x injector through one cluster.

Not a figure of the paper — this is the scenario grid the ROADMAP's
"as many scenarios as you can imagine" goal asks for: the full cartesian
product of registered destination patterns and injection processes, each
measured open-loop on the TopH cluster at one injected load.  It doubles
as the end-to-end proof that the workload registry is wired through the
whole stack: every point goes through the sweep engine, the result cache
and the selected timing engine exactly like the paper's figures do.

Run it with ``python -m repro.experiments run workloads`` (add
``--engine vector`` for the fast path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import (
    DEFAULT_MEASURE_CYCLES,
    DEFAULT_SEED,
    DEFAULT_WARMUP_CYCLES,
    ExperimentSettings,
)
from repro.experiments import Executor, ExperimentSpec, Sweep
from repro.traffic import TrafficResult, TrafficSimulation
from repro.workloads import available_injectors, available_patterns
from repro.workloads.registry import injector_entry, pattern_entry


def default_catalogue_patterns() -> tuple[str, ...]:
    """Every registered pattern the catalogue can run with defaults.

    Entries with *required* parameters (``trace`` needs a ``path``) have
    no meaning on a shared grid axis and are skipped; everything else
    rides along automatically when registered.
    """
    return tuple(
        name for name in available_patterns() if not pattern_entry(name).required
    )


def default_catalogue_injectors() -> tuple[str, ...]:
    """Every registered injector the catalogue can run with defaults."""
    return tuple(
        name for name in available_injectors() if not injector_entry(name).required
    )


#: Injected load of the catalogue points (request/core/cycle) — high
#: enough that pattern structure separates the topologies' behaviour,
#: low enough that benign patterns stay unsaturated.
DEFAULT_CATALOGUE_LOAD = 0.25
#: Topology the catalogue runs on.
DEFAULT_CATALOGUE_TOPOLOGY = "toph"


@dataclass
class WorkloadCatalogueResult:
    """Per-(pattern, injector) traffic measurements at one load."""

    topology: str
    load: float
    results: dict[tuple[str, str], TrafficResult] = field(default_factory=dict)

    def throughput(self, pattern: str, injector: str) -> float:
        """Accepted throughput of one workload combination."""
        return self.results[(pattern, injector)].throughput

    def latency(self, pattern: str, injector: str) -> float:
        """Average round-trip latency of one workload combination."""
        return self.results[(pattern, injector)].average_latency

    def report(self) -> str:
        """One table row per workload combination."""
        header = (
            f"Workload catalogue: {self.topology}, injected load "
            f"{self.load:g} request/core/cycle"
        )
        rows = [
            f"{'pattern':<16} {'injector':<10} {'throughput':>10} "
            f"{'avg lat':>8} {'p95':>5} {'local':>6}"
        ]
        for (pattern, injector), result in sorted(self.results.items()):
            rows.append(
                f"{pattern:<16} {injector:<10} {result.throughput:>10.3f} "
                f"{result.average_latency:>8.2f} {result.p95_latency:>5d} "
                f"{result.local_fraction:>6.2f}"
            )
        return header + "\n" + "\n".join(rows)


def simulate_workload_point(
    *,
    pattern: str,
    injector: str,
    load: float = DEFAULT_CATALOGUE_LOAD,
    topology: str = DEFAULT_CATALOGUE_TOPOLOGY,
    topology_params: dict | None = None,
    full_scale: bool = False,
    warmup_cycles: int = DEFAULT_WARMUP_CYCLES,
    measure_cycles: int = DEFAULT_MEASURE_CYCLES,
    seed: int = DEFAULT_SEED,
    engine: str = "legacy",
    energy: bool = False,
) -> TrafficResult:
    """Simulate one (pattern, injector) point of the workload catalogue.

    Module-level point function of the sweep engine: all parameters are
    picklable primitives, each call builds its own cluster and workload
    substreams.

    Parameters
    ----------
    pattern, injector : str
        Workload registry names (see :mod:`repro.workloads`).
    load : float
        Injected load in requests per core per cycle.
    topology : str
        Interconnect topology to drive, by topology registry name
        (see :mod:`repro.topologies`).
    topology_params : dict, optional
        Family-specific topology knobs (e.g. ``{"width": 8}``).
    full_scale, warmup_cycles, measure_cycles, seed, engine, energy
        As in :func:`repro.evaluation.fig5.simulate_fig5_point`.

    Examples
    --------
    >>> result = simulate_workload_point(
    ...     pattern="neighbor", injector="bernoulli", load=0.1,
    ...     warmup_cycles=50, measure_cycles=100)
    >>> result.throughput > 0.0
    True
    """
    settings = ExperimentSettings(
        full_scale=full_scale,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
        engine=engine,
        pattern=pattern,
        injector=injector,
        topology=topology,
        topology_params=dict(topology_params or {}),
        energy=energy,
    )
    cluster = MemPoolCluster(
        settings.config(topology, topology_params=settings.topology_params),
        engine=settings.engine,
    )
    simulation = TrafficSimulation(
        cluster, load, pattern=settings.pattern, seed=settings.seed,
        injector=settings.injector,
    )
    result = simulation.run(
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
    )
    from repro.energy.traffic import attach_energy

    return attach_energy(cluster, result, settings.energy)


def workloads_sweep(
    settings: ExperimentSettings | None = None,
    patterns: tuple[str, ...] | None = None,
    injectors: tuple[str, ...] | None = None,
    load: float = DEFAULT_CATALOGUE_LOAD,
    topology: str | None = None,
    topology_params: dict | None = None,
) -> Sweep:
    """The (pattern x injector) grid of the workload catalogue as a :class:`Sweep`.

    ``patterns`` / ``injectors`` default to the entire registry *minus*
    entries with required parameters (the trace replay pair needs a
    ``path`` no shared grid axis can supply), so a newly registered
    workload shows up in the catalogue (and the CLI) with no further
    wiring.  ``topology`` (with ``topology_params``)
    defaults to the settings-level selection (``MEMPOOL_TOPOLOGY`` /
    ``--topology name:k=v``), so the catalogue runs on any registered
    topology family — programmatic callers pass the same pair, e.g.
    ``workloads_sweep(topology="mesh", topology_params={"width": 8})``.
    """
    settings = settings or ExperimentSettings()
    base = settings.as_params()
    # The grid enumerates the workload axes itself.
    base.pop("pattern", None)
    base.pop("injector", None)
    if topology is None:
        topology = settings.topology
        if topology_params is None:
            topology_params = dict(settings.topology_params)
    topology_params = dict(topology_params or {})
    return Sweep(
        runner="repro.evaluation.workloads:simulate_workload_point",
        grid={
            "pattern": tuple(
                patterns if patterns is not None else default_catalogue_patterns()
            ),
            "injector": tuple(
                injectors if injectors is not None else default_catalogue_injectors()
            ),
        },
        base={
            **base,
            "load": load,
            "topology": topology,
            "topology_params": topology_params,
        },
        name="workloads",
    )


def assemble_workloads(
    specs: list[ExperimentSpec], results: list[TrafficResult]
) -> WorkloadCatalogueResult:
    """Fold per-point results back into a :class:`WorkloadCatalogueResult`."""
    catalogue = WorkloadCatalogueResult(
        topology=specs[0].params["topology"] if specs else DEFAULT_CATALOGUE_TOPOLOGY,
        load=specs[0].params["load"] if specs else DEFAULT_CATALOGUE_LOAD,
    )
    for spec, result in zip(specs, results):
        catalogue.results[(spec.params["pattern"], spec.params["injector"])] = result
    return catalogue


def run_workloads(
    settings: ExperimentSettings | None = None,
    patterns: tuple[str, ...] | None = None,
    injectors: tuple[str, ...] | None = None,
    load: float = DEFAULT_CATALOGUE_LOAD,
    topology: str | None = None,
    topology_params: dict | None = None,
    executor: Executor | None = None,
) -> WorkloadCatalogueResult:
    """Run the workload catalogue sweep.

    Examples
    --------
    >>> settings = ExperimentSettings(warmup_cycles=50, measure_cycles=100)
    >>> result = run_workloads(
    ...     settings, patterns=("uniform",), injectors=("poisson",), load=0.1)
    >>> result.throughput("uniform", "poisson") > 0.0
    True
    """
    sweep = workloads_sweep(
        settings, patterns, injectors, load, topology, topology_params
    )
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_workloads(specs, results)
