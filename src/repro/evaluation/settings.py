"""Shared knobs of the experiment drivers.

The paper evaluates a 256-core cluster.  Cycle-level simulation of that
system in pure Python is possible but slow, so the default experiment scale
is a 64-core cluster that preserves every architectural mechanism (four
groups, radix-4 butterflies, 16-bank tiles).  Setting the environment
variable ``MEMPOOL_FULL=1`` — or passing ``full_scale=True`` — switches the
drivers to the full 256-core configuration and the paper's benchmark sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.cluster import ENGINES
from repro.core.config import MemPoolConfig
from repro.workloads.registry import available_injectors, available_patterns


def _full_scale_from_environment() -> bool:
    return os.environ.get("MEMPOOL_FULL", "0") not in ("", "0", "false", "False")


def _engine_from_environment() -> str:
    return os.environ.get("MEMPOOL_ENGINE", "legacy") or "legacy"


def _pattern_from_environment() -> str:
    return os.environ.get("MEMPOOL_PATTERN", "uniform") or "uniform"


def _injector_from_environment() -> str:
    return os.environ.get("MEMPOOL_INJECTOR", "poisson") or "poisson"


def _topology_from_environment() -> str:
    return os.environ.get("MEMPOOL_TOPOLOGY", "toph") or "toph"


def _energy_from_environment() -> bool:
    return os.environ.get("MEMPOOL_ENERGY", "0") not in ("", "0", "false", "False")


def _trace_from_environment() -> str | None:
    return os.environ.get("MEMPOOL_TRACE") or None


#: Default warm-up window of the synthetic-traffic measurements.  The
#: point functions in the fig* modules reference these constants for
#: their keyword defaults, so retuning them here retunes every path.
DEFAULT_WARMUP_CYCLES = 300
#: Default measurement window of the synthetic-traffic measurements.
DEFAULT_MEASURE_CYCLES = 1000
#: Default random seed shared by the traffic generators and kernels.
DEFAULT_SEED = 0


@dataclass
class ExperimentSettings:
    """Scale and simulation-length knobs shared by all experiment drivers."""

    full_scale: bool = field(default_factory=_full_scale_from_environment)
    #: Warm-up cycles of the synthetic-traffic measurements.
    warmup_cycles: int = DEFAULT_WARMUP_CYCLES
    #: Measurement window of the synthetic-traffic measurements.
    measure_cycles: int = DEFAULT_MEASURE_CYCLES
    #: Random seed shared by the traffic generators and kernels.
    seed: int = DEFAULT_SEED
    #: Timing-engine implementation the simulating drivers run on:
    #: ``"legacy"`` (per-object stage network), ``"vector"`` (the
    #: structure-of-arrays engine of :mod:`repro.engine`), ``"batch"``
    #: (the vector engine plus sweep-level batching of compatible traffic
    #: points through :class:`repro.engine.batch.SimBatch`) or
    #: ``"compiled"`` (ring-buffer queues + the typed-array kernels of
    #: :mod:`repro.engine.kernel`, JIT-built under Numba when the optional
    #: ``[perf]`` extra is installed, with sweep-level batching like
    #: ``"batch"``).  All four produce identical results for fixed seeds;
    #: honours ``MEMPOOL_ENGINE``.
    engine: str = field(default_factory=_engine_from_environment)
    #: Destination pattern of the synthetic-traffic experiments, by
    #: workload registry name; honours ``MEMPOOL_PATTERN``.  fig6 ignores
    #: it — its sweep *is* the ``local_biased`` pattern.
    pattern: str = field(default_factory=_pattern_from_environment)
    #: Injection process of the synthetic-traffic experiments, by
    #: workload registry name; honours ``MEMPOOL_INJECTOR``.
    injector: str = field(default_factory=_injector_from_environment)
    #: Interconnect topology of the single-topology experiments (the
    #: ``workloads`` and ``topologies`` catalogues), by topology registry
    #: name; honours ``MEMPOOL_TOPOLOGY`` and accepts the CLI's
    #: ``name:k=v`` spec form.  The figure experiments whose sweep *is*
    #: a topology axis (fig5, fig7, physical) ignore it.
    topology: str = field(default_factory=_topology_from_environment)
    #: Family-specific parameters of :attr:`topology` (e.g.
    #: ``{"width": 8}`` for ``mesh``); filled from the ``name:k=v`` spec
    #: when one is given.
    topology_params: dict = field(default_factory=dict)
    #: Attach the Figure 10 wire-energy summary to every traffic result
    #: (:func:`repro.energy.traffic.traffic_energy`); honours
    #: ``MEMPOOL_ENERGY`` / ``--energy``.  Free of simulation side
    #: effects: the summary is derived from the result's counters after
    #: the measurement, so enabling it never changes timing numbers.
    energy: bool = field(default_factory=_energy_from_environment)
    #: Trace file replayed by the ``traces`` experiment; honours
    #: ``MEMPOOL_TRACE`` / ``--trace``.  ``None`` lets the experiment
    #: record its deterministic default trace on first use.
    trace: str | None = field(default_factory=_trace_from_environment)

    def __post_init__(self) -> None:
        # Validate here rather than deep inside a sweep worker: a typo'd
        # MEMPOOL_ENGINE / MEMPOOL_PATTERN should fail before any point is
        # expanded, hashed into a cache key, or shipped to a process pool.
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (MEMPOOL_ENGINE/--engine); "
                f"expected one of {ENGINES}"
            )
        if self.pattern not in available_patterns():
            raise ValueError(
                f"unknown pattern {self.pattern!r} (MEMPOOL_PATTERN/--pattern); "
                f"expected one of {available_patterns()}"
            )
        if self.injector not in available_injectors():
            raise ValueError(
                f"unknown injector {self.injector!r} (MEMPOOL_INJECTOR/"
                f"--injector); expected one of {available_injectors()}"
            )
        # Accept the CLI/environment "name:k=v,k2=v2" spec form; bare
        # names with explicit topology_params pass through unchanged.
        # parse_topology_spec / validate_topology also reject unknown
        # names and parameters here, before any sweep expansion.
        from repro.topologies.registry import parse_topology_spec, validate_topology

        if ":" in self.topology:
            if self.topology_params:
                raise ValueError(
                    "pass topology parameters either in the spec "
                    f"({self.topology!r}) or as topology_params, not both"
                )
            self.topology, self.topology_params = parse_topology_spec(self.topology)
        else:
            validate_topology(self.topology, self.topology_params)

    def probe_topology(self) -> None:
        """Build the selected topology once to surface structural errors early.

        ``__post_init__`` validates the topology *name* and the parameter
        names/values, but structural constraints — a mesh whose
        ``width x height`` does not tile the cluster, a hierarchical group
        count that does not divide it — only surface when the family is
        built over a concrete configuration.  The CLI front-ends call this
        once after parsing ``--topology``, so a bad spec fails with one
        clean message instead of a traceback inside a sweep worker.
        """
        from repro.interconnect.topology import build_topology

        build_topology(
            self.config(self.topology, topology_params=self.topology_params)
        )

    def config(self, topology: str, **overrides) -> MemPoolConfig:
        """The cluster configuration the experiments run on.

        ``topology`` is the per-experiment choice (figure sweeps pass their
        own axis values); experiments that honour the settings-level
        selection pass ``settings.topology`` and forward
        ``settings.topology_params`` through ``overrides``.
        """
        if self.full_scale:
            return MemPoolConfig.full(topology, **overrides)
        return MemPoolConfig.scaled(topology, **overrides)

    def as_params(self) -> dict:
        """Primitive form used as sweep base parameters.

        The returned dictionary contains only JSON-serialisable values, so
        it can be hashed into cache keys and pickled to worker processes
        by the :mod:`repro.experiments` engine.

        Examples
        --------
        >>> ExperimentSettings(full_scale=False, seed=7).as_params()["seed"]
        7
        """
        return {
            "full_scale": self.full_scale,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "seed": self.seed,
            "engine": self.engine,
            "pattern": self.pattern,
            "injector": self.injector,
            "energy": self.energy,
        }

    @property
    def matmul_size(self) -> int:
        """Matrix size of the matmul benchmark (64 in the paper)."""
        return 64 if self.full_scale else 32

    @property
    def conv_width(self) -> int:
        """Image width of the 2dconv benchmark."""
        return 64 if self.full_scale else 32

    @property
    def dct_blocks_per_core(self) -> int:
        """8x8 blocks per core of the dct benchmark."""
        return 1

    @property
    def scale_label(self) -> str:
        """Human-readable label of the selected simulation scale."""
        return "full (256 cores)" if self.full_scale else "scaled (64 cores)"
