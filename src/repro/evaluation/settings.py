"""Shared knobs of the experiment drivers.

The paper evaluates a 256-core cluster.  Cycle-level simulation of that
system in pure Python is possible but slow, so the default experiment scale
is a 64-core cluster that preserves every architectural mechanism (four
groups, radix-4 butterflies, 16-bank tiles).  Setting the environment
variable ``MEMPOOL_FULL=1`` — or passing ``full_scale=True`` — switches the
drivers to the full 256-core configuration and the paper's benchmark sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.config import MemPoolConfig


def _full_scale_from_environment() -> bool:
    return os.environ.get("MEMPOOL_FULL", "0") not in ("", "0", "false", "False")


@dataclass
class ExperimentSettings:
    """Scale and simulation-length knobs shared by all experiment drivers."""

    full_scale: bool = field(default_factory=_full_scale_from_environment)
    #: Warm-up cycles of the synthetic-traffic measurements.
    warmup_cycles: int = 300
    #: Measurement window of the synthetic-traffic measurements.
    measure_cycles: int = 1000
    #: Random seed shared by the traffic generators and kernels.
    seed: int = 0

    def config(self, topology: str, **overrides) -> MemPoolConfig:
        """The cluster configuration the experiments run on."""
        if self.full_scale:
            return MemPoolConfig.full(topology, **overrides)
        return MemPoolConfig.scaled(topology, **overrides)

    @property
    def matmul_size(self) -> int:
        """Matrix size of the matmul benchmark (64 in the paper)."""
        return 64 if self.full_scale else 32

    @property
    def conv_width(self) -> int:
        """Image width of the 2dconv benchmark."""
        return 64 if self.full_scale else 32

    @property
    def dct_blocks_per_core(self) -> int:
        """8x8 blocks per core of the dct benchmark."""
        return 1

    @property
    def scale_label(self) -> str:
        return "full (256 cores)" if self.full_scale else "scaled (64 cores)"
