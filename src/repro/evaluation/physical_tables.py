"""Sections VI-B / VI-C: tile and cluster physical-implementation figures.

Reproduces, from the analytical area/timing/floorplan models:

* the tile macro: 425 um x 425 um, 908 kGE, 72.8 % utilisation, dominated by
  the SPM (40.2 %) and the instruction cache (23.6 %);
* the cluster macro: 4.6 mm x 4.6 mm with 55 % of the area covered by tiles;
* the achievable frequencies: 700 MHz in typical conditions, ~480-500 MHz in
  the worst case, with the cluster critical path dominated by buffers and
  wire delay;
* the congestion comparison that rules Top4 out as physically infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import ExperimentSettings
from repro.experiments import Executor, Sweep
from repro.physical import AreaModel, FloorplanModel, TimingModel
from repro.physical.area import ClusterAreaReport, TileAreaBreakdown
from repro.physical.floorplan import CongestionReport
from repro.physical.timing import CLUSTER_CRITICAL_PATH, TILE_CRITICAL_PATH
from repro.utils.tables import format_table

#: Paper reference values used in the report (and asserted by the benches).
PAPER_TILE_SIDE_UM = 425.0
PAPER_TILE_KGE = 908.0
PAPER_TILE_UTILISATION = 0.728
PAPER_SPM_SHARE = 0.402
PAPER_ICACHE_SHARE = 0.236
PAPER_CLUSTER_SIDE_MM = 4.6
PAPER_TILE_COVERAGE = 0.55
PAPER_FREQUENCY_TYPICAL_MHZ = 700.0
PAPER_FREQUENCY_WORST_MHZ = 480.0
PAPER_CLUSTER_PATH_GATES = 36
PAPER_CLUSTER_PATH_BUFFERS = 27
PAPER_WIRE_FRACTION = 0.37
PAPER_TILE_PATH_GATES = 53


@dataclass
class PhysicalTablesResult:
    """Area, timing and congestion figures for one configuration."""

    tile: TileAreaBreakdown
    cluster: ClusterAreaReport
    frequencies_mhz: dict[str, float]
    wire_fraction: float
    congestion: dict[str, CongestionReport]

    def report(self) -> str:
        """Textual rendering of the Sections VI-B/VI-C tables."""
        tile_rows = [
            ["tile macro side (um)", self.tile.macro_side_um, PAPER_TILE_SIDE_UM],
            ["tile complexity (kGE)", self.tile.total_kge, PAPER_TILE_KGE],
            ["tile utilisation", self.tile.utilisation, PAPER_TILE_UTILISATION],
            ["spm share of placed area", self.tile.share(self.tile.spm_um2), PAPER_SPM_SHARE],
            ["icache share of placed area", self.tile.share(self.tile.icache_um2), PAPER_ICACHE_SHARE],
            ["cluster side (mm)", self.cluster.cluster_side_mm, PAPER_CLUSTER_SIDE_MM],
            ["tile coverage of cluster", self.cluster.tile_coverage, PAPER_TILE_COVERAGE],
            ["frequency, typical (MHz)", self.frequencies_mhz["typical"], PAPER_FREQUENCY_TYPICAL_MHZ],
            ["frequency, worst (MHz)", self.frequencies_mhz["worst"], PAPER_FREQUENCY_WORST_MHZ],
            ["cluster path gates", float(CLUSTER_CRITICAL_PATH.total_gates), float(PAPER_CLUSTER_PATH_GATES)],
            ["cluster path buffers", float(CLUSTER_CRITICAL_PATH.buffer_gates), float(PAPER_CLUSTER_PATH_BUFFERS)],
            ["tile path gates", float(TILE_CRITICAL_PATH.total_gates), float(PAPER_TILE_PATH_GATES)],
            ["wire fraction of cluster path", self.wire_fraction, PAPER_WIRE_FRACTION],
        ]
        physical = format_table(
            ["quantity", "model", "paper"],
            tile_rows,
            precision=3,
            title="Sections VI-B/VI-C: physical implementation figures",
        )
        congestion_rows = [
            [
                name,
                report.total_wire_mm,
                report.centre_utilisation,
                report.feasible,
            ]
            for name, report in self.congestion.items()
        ]
        congestion = format_table(
            ["topology", "top-level wire (mm)", "centre channel utilisation", "feasible"],
            congestion_rows,
            precision=2,
            title="Section VI-C: top-level wiring and centre congestion per topology",
        )
        return f"{physical}\n\n{congestion}"


def compute_physical_point(*, topology: str = "toph") -> PhysicalTablesResult:
    """Evaluate the physical models on the full-size cluster.

    Module-level point function of the sweep engine (see
    :mod:`repro.experiments`).  Physical figures always refer to the full
    64-tile cluster, regardless of the simulation scale used for the
    performance experiments.

    Parameters
    ----------
    topology : str
        Topology whose tile/cluster macros are evaluated.

    Returns
    -------
    PhysicalTablesResult
        Area, timing and congestion figures.

    Examples
    --------
    >>> result = compute_physical_point(topology="toph")
    >>> result.congestion["toph"].feasible
    True
    """
    from repro.core.config import MemPoolConfig

    cluster = MemPoolCluster(MemPoolConfig.full(topology))
    area = AreaModel(cluster)
    timing = TimingModel()
    floorplan = FloorplanModel(cluster)
    return PhysicalTablesResult(
        tile=area.tile_breakdown(),
        cluster=area.cluster_report(),
        frequencies_mhz=timing.cluster_frequencies(),
        wire_fraction=timing.wire_fraction(CLUSTER_CRITICAL_PATH, "worst"),
        congestion=floorplan.compare_topologies(),
    )


def physical_sweep(
    settings: ExperimentSettings | None = None, topology: str = "toph"
) -> Sweep:
    """The (single-point) Sections VI-B/VI-C physical sweep."""
    del settings  # the physical models do not depend on the simulation scale
    return Sweep(
        runner="repro.evaluation.physical_tables:compute_physical_point",
        base={"topology": topology},
        name="physical",
    )


def assemble_physical(specs, results) -> PhysicalTablesResult:
    """Unwrap the single point of the physical sweep."""
    del specs
    (result,) = results
    return result


def run_physical_tables(
    settings: ExperimentSettings | None = None,
    topology: str = "toph",
    executor: Executor | None = None,
) -> PhysicalTablesResult:
    """Evaluate the physical models on the full-size cluster.

    Examples
    --------
    >>> result = run_physical_tables()
    >>> 400.0 < result.frequencies_mhz["typical"] < 1000.0
    True
    """
    sweep = physical_sweep(settings, topology)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_physical(specs, results)
