"""Figure 6: TopH under the hybrid addressing scheme, for several ``p_local``.

The traffic generator sends a request to the issuing core's own tile (its
sequential region) with probability ``p_local`` and to a uniformly random
bank otherwise.  The paper's observations:

* throughput increases monotonically with ``p_local`` (local requests bypass
  the global interconnect entirely);
* average latency drops accordingly — an application making 25 % of its
  accesses to a local stack can gain on the order of 50 % in performance
  without any code change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.series import collect_series
from repro.evaluation.settings import (
    DEFAULT_MEASURE_CYCLES,
    DEFAULT_SEED,
    DEFAULT_WARMUP_CYCLES,
    ExperimentSettings,
)
from repro.experiments import Executor, ExperimentSpec, Sweep
from repro.traffic import LocalBiasedPattern, TrafficResult, TrafficSimulation
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_series

#: Local-access probabilities shown in the figure.
DEFAULT_P_LOCAL = (0.0, 0.25, 0.5, 1.0)
#: Injected loads swept by default.
DEFAULT_LOADS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class Fig6Result:
    """Per-``p_local`` throughput/latency series for TopH."""

    loads: tuple[float, ...]
    results: dict[float, list[TrafficResult]] = field(default_factory=dict)

    def throughput(self, p_local: float) -> list[float]:
        """Accepted-throughput series for ``p_local``, one value per load."""
        return [result.throughput for result in self.results[p_local]]

    def latency(self, p_local: float) -> list[float]:
        """Average-latency series for ``p_local``, one value per load."""
        return [result.average_latency for result in self.results[p_local]]

    def saturation_throughput(self, p_local: float) -> float:
        """Highest accepted throughput observed for ``p_local``."""
        return max(self.throughput(p_local))

    def report(self) -> str:
        """Textual rendering of Figures 6a (throughput) and 6b (latency)."""
        labels = {f"p_local={p:.0%}": self.throughput(p) for p in self.results}
        throughput = format_series(
            "injected load", list(self.loads), labels,
            title="Figure 6a: TopH throughput with the hybrid addressing scheme",
        )
        labels = {f"p_local={p:.0%}": self.latency(p) for p in self.results}
        latency = format_series(
            "injected load", list(self.loads), labels,
            title="Figure 6b: TopH average latency with the hybrid addressing scheme",
        )
        return f"{throughput}\n\n{latency}"

    def plot(self) -> str:
        """ASCII rendering of Figure 6a (throughput vs injected load per p_local)."""
        return ascii_plot(
            list(self.loads),
            {f"p_local={p:.0%}": self.throughput(p) for p in self.results},
            x_label="injected load (request/core/cycle)",
            y_label="thr",
            title="Figure 6a (ASCII): TopH throughput with the hybrid addressing scheme",
        )


def simulate_fig6_point(
    *,
    p_local: float,
    load: float,
    full_scale: bool = False,
    warmup_cycles: int = DEFAULT_WARMUP_CYCLES,
    measure_cycles: int = DEFAULT_MEASURE_CYCLES,
    seed: int = DEFAULT_SEED,
    engine: str = "legacy",
    injector: str = "poisson",
    energy: bool = False,
) -> TrafficResult:
    """Simulate one (p_local, load) point of Figure 6 on the TopH cluster.

    Module-level point function of the sweep engine (see
    :mod:`repro.experiments`): all arguments are picklable primitives and
    each call builds its own cluster, pattern and RNGs.

    Parameters
    ----------
    p_local : float
        Probability that a request targets the issuing core's own tile.
    load : float
        Injected load in requests per core per cycle.
    full_scale : bool
        Use the full 256-core cluster instead of the scaled 64-core one.
    warmup_cycles, measure_cycles : int
        Warm-up and measurement windows of the traffic simulation.
    seed : int
        Seed shared by the pattern and the injector.
    engine : str
        Timing engine (``legacy``, ``vector`` or ``batch``); all produce
        identical results for fixed seeds, ``vector`` is several times
        faster and ``batch`` additionally lets the sweep engine advance
        compatible points together (:mod:`repro.experiments.batch`).
    injector : str
        Injection-process registry name (see :mod:`repro.workloads`);
        the paper uses ``poisson``.  The destination pattern is not a
        knob here — the ``local_biased`` pattern *is* the experiment.
    energy : bool
        Attach the Figure 10 wire-energy summary to the result
        (:func:`repro.energy.traffic.traffic_energy`).

    Returns
    -------
    TrafficResult
        Throughput/latency measurements of the point.

    Examples
    --------
    >>> result = simulate_fig6_point(
    ...     p_local=1.0, load=0.2, warmup_cycles=50, measure_cycles=100)
    >>> result.local_fraction
    1.0
    """
    settings = ExperimentSettings(
        full_scale=full_scale,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
        engine=engine,
        injector=injector,
        energy=energy,
    )
    cluster = MemPoolCluster(settings.config("toph"), engine=settings.engine)
    pattern = LocalBiasedPattern(cluster.config, p_local, seed=settings.seed)
    simulation = TrafficSimulation(
        cluster, load, pattern=pattern, seed=settings.seed,
        injector=settings.injector,
    )
    result = simulation.run(
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
    )
    from repro.energy.traffic import attach_energy

    return attach_energy(cluster, result, settings.energy)


def fig6_sweep(
    settings: ExperimentSettings | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    p_locals: tuple[float, ...] = DEFAULT_P_LOCAL,
) -> Sweep:
    """The (p_local x load) parameter grid of Figure 6 as a :class:`Sweep`."""
    settings = settings or ExperimentSettings()
    base = settings.as_params()
    # fig6's destination pattern is the experiment itself (local_biased
    # with the swept p_local); only the injection process is a knob.
    base.pop("pattern", None)
    return Sweep(
        runner="repro.evaluation.fig6:simulate_fig6_point",
        grid={"p_local": tuple(p_locals), "load": tuple(loads)},
        base=base,
        name="fig6",
    )


def assemble_fig6(
    specs: list[ExperimentSpec], results: list[TrafficResult]
) -> Fig6Result:
    """Group per-point traffic results back into a :class:`Fig6Result`."""
    loads, grouped = collect_series(specs, results, "p_local")
    return Fig6Result(loads=loads, results=grouped)


def run_fig6(
    settings: ExperimentSettings | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    p_locals: tuple[float, ...] = DEFAULT_P_LOCAL,
    executor: Executor | None = None,
) -> Fig6Result:
    """Run the locality-biased traffic sweep of Figure 6 (TopH only).

    Parameters
    ----------
    settings : ExperimentSettings, optional
        Scale/window knobs; defaults honour ``MEMPOOL_FULL``.
    loads : tuple of float
        Injected loads to sweep.
    p_locals : tuple of float
        Local-access probabilities to sweep.
    executor : repro.experiments.Executor, optional
        Sweep engine to run on; defaults to a serial, uncached executor.

    Examples
    --------
    >>> settings = ExperimentSettings(warmup_cycles=50, measure_cycles=100)
    >>> result = run_fig6(settings, loads=(0.2,), p_locals=(0.0, 1.0))
    >>> result.latency(1.0)[-1] < result.latency(0.0)[-1]  # local is faster
    True
    """
    sweep = fig6_sweep(settings, loads, p_locals)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_fig6(specs, results)
