"""Figure 6: TopH under the hybrid addressing scheme, for several ``p_local``.

The traffic generator sends a request to the issuing core's own tile (its
sequential region) with probability ``p_local`` and to a uniformly random
bank otherwise.  The paper's observations:

* throughput increases monotonically with ``p_local`` (local requests bypass
  the global interconnect entirely);
* average latency drops accordingly — an application making 25 % of its
  accesses to a local stack can gain on the order of 50 % in performance
  without any code change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import ExperimentSettings
from repro.traffic import LocalBiasedPattern, TrafficResult, TrafficSimulation
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_series

#: Local-access probabilities shown in the figure.
DEFAULT_P_LOCAL = (0.0, 0.25, 0.5, 1.0)
#: Injected loads swept by default.
DEFAULT_LOADS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class Fig6Result:
    """Per-``p_local`` throughput/latency series for TopH."""

    loads: tuple[float, ...]
    results: dict[float, list[TrafficResult]] = field(default_factory=dict)

    def throughput(self, p_local: float) -> list[float]:
        return [result.throughput for result in self.results[p_local]]

    def latency(self, p_local: float) -> list[float]:
        return [result.average_latency for result in self.results[p_local]]

    def saturation_throughput(self, p_local: float) -> float:
        return max(self.throughput(p_local))

    def report(self) -> str:
        labels = {f"p_local={p:.0%}": self.throughput(p) for p in self.results}
        throughput = format_series(
            "injected load", list(self.loads), labels,
            title="Figure 6a: TopH throughput with the hybrid addressing scheme",
        )
        labels = {f"p_local={p:.0%}": self.latency(p) for p in self.results}
        latency = format_series(
            "injected load", list(self.loads), labels,
            title="Figure 6b: TopH average latency with the hybrid addressing scheme",
        )
        return f"{throughput}\n\n{latency}"

    def plot(self) -> str:
        """ASCII rendering of Figure 6a (throughput vs injected load per p_local)."""
        return ascii_plot(
            list(self.loads),
            {f"p_local={p:.0%}": self.throughput(p) for p in self.results},
            x_label="injected load (request/core/cycle)",
            y_label="thr",
            title="Figure 6a (ASCII): TopH throughput with the hybrid addressing scheme",
        )


def run_fig6(
    settings: ExperimentSettings | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    p_locals: tuple[float, ...] = DEFAULT_P_LOCAL,
) -> Fig6Result:
    """Run the locality-biased traffic sweep of Figure 6 (TopH only)."""
    settings = settings or ExperimentSettings()
    outcome = Fig6Result(loads=tuple(loads))
    for p_local in p_locals:
        series = []
        for load in loads:
            cluster = MemPoolCluster(settings.config("toph"))
            pattern = LocalBiasedPattern(cluster.config, p_local, seed=settings.seed)
            simulation = TrafficSimulation(cluster, load, pattern=pattern, seed=settings.seed)
            series.append(
                simulation.run(
                    warmup_cycles=settings.warmup_cycles,
                    measure_cycles=settings.measure_cycles,
                )
            )
        outcome.results[p_local] = series
    return outcome
