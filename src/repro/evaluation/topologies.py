"""Topology catalogue sweep: every registered topology at one fixed load.

Not a figure of the paper — the structural companion of the workload
catalogue (:mod:`repro.evaluation.workloads`): every topology family
registered in :mod:`repro.topologies.registry` is driven with the same
open-loop workload at one injected load, which separates the families by
the thing that actually distinguishes them — network structure.  The four
paper topologies anchor the table to Figure 5's known ordering; the new
families (mesh, torus, ring, fully connected, generalised hierarchical and
butterfly) extend it across the design space the paper never swept.

It doubles as the end-to-end proof that the topology registry is wired
through the whole stack: every point goes through the sweep engine, the
result cache, config validation and the selected timing engine exactly
like the paper's figures do.

Run it with ``python -m repro.experiments run topologies`` (add
``--engine vector`` for the fast path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import MemPoolCluster
from repro.evaluation.settings import (
    DEFAULT_MEASURE_CYCLES,
    DEFAULT_SEED,
    DEFAULT_WARMUP_CYCLES,
    ExperimentSettings,
)
from repro.experiments import Executor, ExperimentSpec, Sweep
from repro.topologies import available_topologies
from repro.traffic import TrafficResult, TrafficSimulation

#: Injected load of the catalogue points (request/core/cycle) — inside
#: every family's stable region at the scaled cluster size, so the table
#: ranks latency structure rather than saturation artefacts.
DEFAULT_CATALOGUE_LOAD = 0.15


@dataclass
class TopologyCatalogueResult:
    """Per-topology traffic measurements at one load."""

    load: float
    pattern: str
    injector: str
    results: dict[str, TrafficResult] = field(default_factory=dict)

    def throughput(self, topology: str) -> float:
        """Accepted throughput of one topology."""
        return self.results[topology].throughput

    def latency(self, topology: str) -> float:
        """Average round-trip latency of one topology."""
        return self.results[topology].average_latency

    def report(self) -> str:
        """One table row per registered topology.

        When the sweep ran with ``energy=True`` every row additionally
        reports the wire-energy cost per completed request (pJ), which is
        what separates families of equal latency but different path
        structure.
        """
        header = (
            f"Topology catalogue: {self.pattern} x {self.injector}, "
            f"injected load {self.load:g} request/core/cycle"
        )
        with_energy = any(
            result.energy is not None for result in self.results.values()
        )
        energy_header = f" {'pJ/req':>7}" if with_energy else ""
        rows = [
            f"{'topology':<16} {'throughput':>10} {'avg lat':>8} "
            f"{'p95':>5} {'max':>5} {'local':>6}" + energy_header
        ]
        for topology, result in sorted(self.results.items()):
            energy_cell = ""
            if with_energy:
                per_request = (
                    result.energy.per_request_pj if result.energy is not None else 0.0
                )
                energy_cell = f" {per_request:>7.2f}"
            rows.append(
                f"{topology:<16} {result.throughput:>10.3f} "
                f"{result.average_latency:>8.2f} {result.p95_latency:>5d} "
                f"{result.max_latency:>5d} {result.local_fraction:>6.2f}"
                + energy_cell
            )
        return header + "\n" + "\n".join(rows)


def simulate_topology_point(
    *,
    topology: str,
    topology_params: dict | None = None,
    load: float = DEFAULT_CATALOGUE_LOAD,
    full_scale: bool = False,
    warmup_cycles: int = DEFAULT_WARMUP_CYCLES,
    measure_cycles: int = DEFAULT_MEASURE_CYCLES,
    seed: int = DEFAULT_SEED,
    engine: str = "legacy",
    pattern: str = "uniform",
    injector: str = "poisson",
    energy: bool = False,
) -> TrafficResult:
    """Simulate one topology point of the catalogue.

    Module-level point function of the sweep engine: all parameters are
    picklable primitives (``topology_params`` a plain dict), each call
    builds its own cluster and workload substreams.

    Parameters
    ----------
    topology : str
        Topology registry name (see :mod:`repro.topologies`).
    topology_params : dict, optional
        Family-specific knobs (e.g. ``{"width": 8, "height": 2}``).
    load : float
        Injected load in requests per core per cycle.
    full_scale, warmup_cycles, measure_cycles, seed, engine, energy
        As in :func:`repro.evaluation.fig5.simulate_fig5_point`.
    pattern, injector : str
        Workload registry names driving every topology identically.

    Examples
    --------
    >>> result = simulate_topology_point(
    ...     topology="mesh", load=0.1, warmup_cycles=50, measure_cycles=100)
    >>> result.throughput > 0.0
    True
    """
    settings = ExperimentSettings(
        full_scale=full_scale,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
        engine=engine,
        pattern=pattern,
        injector=injector,
        topology=topology,
        topology_params=dict(topology_params or {}),
        energy=energy,
    )
    config = settings.config(topology, topology_params=settings.topology_params)
    cluster = MemPoolCluster(config, engine=settings.engine)
    simulation = TrafficSimulation(
        cluster, load, pattern=settings.pattern, seed=settings.seed,
        injector=settings.injector,
    )
    result = simulation.run(
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
    )
    from repro.energy.traffic import attach_energy

    return attach_energy(cluster, result, settings.energy)


def topologies_sweep(
    settings: ExperimentSettings | None = None,
    topologies: tuple[str, ...] | None = None,
    load: float = DEFAULT_CATALOGUE_LOAD,
) -> Sweep:
    """The registry-driven topology grid of the catalogue as a :class:`Sweep`.

    ``topologies`` defaults to the *entire* registry, so a newly
    registered family shows up in the catalogue (and the CLI) with no
    further wiring.  Every point runs its family's *default* parameters
    (parameters are per-family, so they cannot ride along a shared grid
    axis); the settings-level ``--topology name:k=v`` selection instead
    parameterises the single-topology experiments such as the workload
    catalogue.
    """
    settings = settings or ExperimentSettings()
    names = tuple(topologies if topologies is not None else available_topologies())
    return Sweep(
        runner="repro.evaluation.topologies:simulate_topology_point",
        grid={"topology": names},
        base={**settings.as_params(), "load": load},
        name="topologies",
    )


def assemble_topologies(
    specs: list[ExperimentSpec], results: list[TrafficResult]
) -> TopologyCatalogueResult:
    """Fold per-point results back into a :class:`TopologyCatalogueResult`."""
    catalogue = TopologyCatalogueResult(
        load=specs[0].params["load"] if specs else DEFAULT_CATALOGUE_LOAD,
        pattern=specs[0].params.get("pattern", "uniform") if specs else "uniform",
        injector=specs[0].params.get("injector", "poisson") if specs else "poisson",
    )
    for spec, result in zip(specs, results):
        catalogue.results[spec.params["topology"]] = result
    return catalogue


def run_topologies(
    settings: ExperimentSettings | None = None,
    topologies: tuple[str, ...] | None = None,
    load: float = DEFAULT_CATALOGUE_LOAD,
    executor: Executor | None = None,
) -> TopologyCatalogueResult:
    """Run the topology catalogue sweep.

    Examples
    --------
    >>> settings = ExperimentSettings(warmup_cycles=50, measure_cycles=100)
    >>> result = run_topologies(settings, topologies=("toph", "mesh"), load=0.1)
    >>> result.throughput("mesh") > 0.0
    True
    """
    sweep = topologies_sweep(settings, topologies, load)
    specs = sweep.specs()
    results = (executor or Executor()).run(specs)
    return assemble_topologies(specs, results)
