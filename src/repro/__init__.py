"""MemPool architectural simulator.

A Python reproduction of *MemPool: A Shared-L1 Memory Many-Core Cluster with
a Low-Latency Interconnect* (Cavalcante, Riedel, Pullini, Benini — DATE 2021).

The package models the full MemPool system at the architectural level:

* ``repro.interconnect`` — crossbars, radix-4 butterflies and the three
  cluster topologies evaluated in the paper (Top1, Top4, TopH) plus the
  ideal full-crossbar baseline (TopX).
* ``repro.topologies`` — the pluggable topology registry: the paper's
  four networks as entries plus parameterized butterfly, mesh, torus,
  ring, fully-connected and hierarchical families.
* ``repro.core`` — tiles, memory banks, the cluster, core timing models and
  the cycle-driven simulator.
* ``repro.addressing`` — the interleaved and hybrid (scrambled) L1 address
  maps of Section IV.
* ``repro.snitch`` — a functional RV32IM(+A subset) instruction-set
  simulator of the Snitch core, with a small assembler.
* ``repro.kernels`` — the matmul / 2dconv / dct benchmarks of Section V-C.
* ``repro.workloads`` — the pluggable workload registry: destination
  patterns x injection processes with scalar and batched APIs.
* ``repro.traffic`` — open-loop measurement of a selected workload, used
  for the network analysis of Section V-A/V-B.
* ``repro.energy`` / ``repro.physical`` — energy, power, area and timing
  models calibrated against Section VI.
* ``repro.evaluation`` — one experiment driver per figure/table.
"""

from repro.core.config import MemPoolConfig
from repro.core.cluster import MemPoolCluster
from repro.core.system import MemPoolSystem

__version__ = "0.1.0"

__all__ = [
    "MemPoolConfig",
    "MemPoolCluster",
    "MemPoolSystem",
    "__version__",
]
