"""A small blocking client for the sweep service, over stdlib ``http.client``.

Used by the test suite and the ``service-smoke`` CI target; it is also a
reasonable starting point for scripting against a long-running service::

    client = ServiceClient("127.0.0.1", 7654)
    job = client.submit({"experiment": "fig5", "settings": {...}})["job"]
    for event in client.events(job["id"]):
        print(event)
    blob = client.result(job["result_keys"][0])

:meth:`ServiceClient.events` resumes after a dropped connection using the
``?from=N`` cursor, so a stream survives a mid-flight disconnect — the
reconnect path the job-layer tests exercise explicitly.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional


class ServiceError(RuntimeError):
    """An HTTP error reply from the service, with its structured body."""

    def __init__(self, status: int, payload) -> None:
        detail = payload.get("detail") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking HTTP client bound to one service ``host:port``."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request_json(self, method: str, path: str, payload=None):
        """One request/response cycle; raises :class:`ServiceError` on 4xx/5xx."""
        connection = self._connect()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            reply = connection.getresponse()
            raw = reply.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else None
            if reply.status >= 400:
                raise ServiceError(reply.status, decoded)
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        """``GET /healthz`` — liveness and queue counters."""
        return self._request_json("GET", "/healthz")

    def submit(self, payload: dict) -> dict:
        """``POST /sweeps`` — returns ``{"job": ..., "deduplicated": ...}``."""
        return self._request_json("POST", "/sweeps", payload)

    def job(self, job_id: str) -> dict:
        """``GET /sweeps/{id}`` — the job description."""
        return self._request_json("GET", f"/sweeps/{job_id}")["job"]

    def cancel(self, job_id: str) -> dict:
        """``DELETE /sweeps/{id}`` — cancel a queued or running job."""
        return self._request_json("DELETE", f"/sweeps/{job_id}")

    def result(self, key: str) -> bytes:
        """``GET /results/{key}`` — the pickled result bytes by content hash."""
        connection = self._connect()
        try:
            connection.request("GET", f"/results/{key}")
            reply = connection.getresponse()
            raw = reply.read()
            if reply.status >= 400:
                raise ServiceError(reply.status, json.loads(raw.decode("utf-8")))
            return raw
        finally:
            connection.close()

    def events(
        self,
        job_id: str,
        start: int = 0,
        reconnect: bool = True,
        max_reconnects: int = 20,
    ) -> Iterator[dict]:
        """Yield the job's NDJSON events until it reaches a terminal state.

        Tracks the last seen ``seq`` and, when ``reconnect`` is true,
        resumes from ``?from=last+1`` after a dropped connection instead
        of giving up or replaying events.
        """
        cursor = start
        reconnects = 0
        while True:
            terminal = False
            try:
                for event in self._stream_once(job_id, cursor):
                    cursor = event["seq"] + 1
                    terminal = terminal or self._is_terminal(event)
                    yield event
            except (http.client.HTTPException, ConnectionError, OSError):
                if not reconnect or reconnects >= max_reconnects:
                    raise
                reconnects += 1
                time.sleep(0.05)
                continue
            if terminal or self._is_done(job_id):
                return
            # Clean close without a terminal event (e.g. server restart
            # mid-stream): resume from the cursor.
            if not reconnect or reconnects >= max_reconnects:
                return
            reconnects += 1
            time.sleep(0.05)

    def _stream_once(self, job_id: str, cursor: int) -> Iterator[dict]:
        connection = self._connect()
        try:
            connection.request("GET", f"/sweeps/{job_id}/events?from={cursor}")
            reply = connection.getresponse()
            if reply.status >= 400:
                raise ServiceError(
                    reply.status, json.loads(reply.read().decode("utf-8"))
                )
            for raw_line in reply:
                line = raw_line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    @staticmethod
    def _is_terminal(event: dict) -> bool:
        return event.get("kind") == "state" and event.get("state") in (
            "done",
            "failed",
            "cancelled",
        )

    def _is_done(self, job_id: str) -> bool:
        return self.job(job_id)["state"] in ("done", "failed", "cancelled")

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> dict:
        """Consume the event stream until terminal; return the final job."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        for _event in self.events(job_id):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still running after {timeout_s}s"
                )
        return self.job(job_id)


__all__ = ["ServiceClient", "ServiceError"]
