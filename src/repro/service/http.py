"""Minimal asyncio HTTP/1.1 framing for the sweep service.

The service deliberately speaks plain stdlib HTTP — no web framework is
imported, mirroring how the transport layer of the distributed executor
speaks raw length-prefixed pickle instead of pulling in an RPC stack.
The framing rules are kept trivial on purpose:

* one request per connection (every response carries
  ``Connection: close``), so there is no keep-alive or pipelining state;
* request bodies require ``Content-Length`` (no chunked uploads);
* streaming responses (the NDJSON event feed) send headers without a
  ``Content-Length`` and mark the body's end by closing the connection —
  legal HTTP/1.1 under ``Connection: close``, and exactly what ``curl``
  and :mod:`http.client` expect.

:func:`read_request` raises :class:`BadRequest` on anything malformed;
the server turns that into a structured ``400`` JSON body instead of
dropping the connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

#: Reason phrases of the status codes the service actually uses.
STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

#: Upper bound on a request body; sweep submissions are small JSON
#: documents, so anything bigger is a client error, not a workload.
MAX_BODY_BYTES = 8 * 1024 * 1024

_SERVER_NAME = "repro-sweep-service"


class BadRequest(ValueError):
    """The request could not be parsed (malformed line, headers, or body)."""


@dataclass
class Request:
    """One parsed HTTP request.

    Examples
    --------
    >>> request = Request("GET", "/sweeps/abc/events", {"from": "3"}, {}, b"")
    >>> request.query["from"]
    '3'
    """

    method: str
    path: str
    query: dict
    headers: dict
    body: bytes = b""
    #: Split, non-empty path segments (``/sweeps/abc`` -> ``["sweeps", "abc"]``).
    parts: list = field(init=False)

    def __post_init__(self) -> None:
        self.parts = [part for part in self.path.split("/") if part]

    def json(self):
        """Decode the body as JSON, raising :class:`BadRequest` when invalid."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"request body is not valid JSON: {error}") from error


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read and parse one HTTP request; ``None`` on a clean immediate EOF.

    Raises
    ------
    BadRequest
        On a malformed request line, oversized head or body, a body
        without ``Content-Length``, or a truncated body.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # connection opened and closed without a request
        raise BadRequest("truncated request head") from error
    except asyncio.LimitOverrunError as error:
        raise BadRequest("request head too large") from error

    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3 or not request_line[2].startswith("HTTP/"):
        raise BadRequest(f"malformed request line {lines[0]!r}")
    method, target, _version = request_line

    headers: dict = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as error:
            raise BadRequest(
                f"bad Content-Length {length_header!r}"
            ) from error
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(
                f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise BadRequest("truncated request body") from error
    elif headers.get("transfer-encoding"):
        raise BadRequest(
            "chunked request bodies are not supported; send Content-Length"
        )
    return Request(method, split.path, query, headers, body)


def response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
) -> bytes:
    """Serialise one complete HTTP response (``Connection: close``)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Server: {_SERVER_NAME}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def json_response(status: int, payload) -> bytes:
    """A complete JSON response with deterministic key order.

    Examples
    --------
    >>> json_response(200, {"status": "ok"}).splitlines()[0]
    b'HTTP/1.1 200 OK'
    """
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response(status, body)


def error_response(status: int, detail: str) -> bytes:
    """A structured JSON error body: ``{"error": <slug>, "detail": ...}``."""
    slug = STATUS_PHRASES.get(status, "error").lower().replace(" ", "_")
    return json_response(status, {"error": slug, "detail": detail})


def stream_head(content_type: str = "application/x-ndjson") -> bytes:
    """Headers of a streamed response: no length, body ends at close."""
    head = (
        f"HTTP/1.1 200 OK\r\n"
        f"Server: {_SERVER_NAME}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Cache-Control: no-store\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1")


__all__ = [
    "BadRequest",
    "MAX_BODY_BYTES",
    "Request",
    "STATUS_PHRASES",
    "error_response",
    "json_response",
    "read_request",
    "response",
    "stream_head",
]
