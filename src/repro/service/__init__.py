"""Simulation-as-a-service: HTTP sweep API over the experiments engine.

The package turns the batch experiments engine into a long-running
service (ROADMAP item 2): submit sweeps over HTTP, watch NDJSON progress
streams, fetch results by content hash, and let the content-addressed
cache deduplicate repeated submissions.  See
:mod:`repro.service.app` for the endpoint surface and
:mod:`repro.service.jobs` for the job state machine.

Start one from the CLI::

    python -m repro.experiments serve --port 7654 --workers 4 --cache disk

or in-process::

    from repro.service import SweepService
    service = SweepService(workers="1", cache="memory").start()
"""

from __future__ import annotations

from repro.service.app import (
    DEFAULT_SERVICE_PORT,
    DEFAULT_TTL_S,
    SpecError,
    SweepService,
    build_specs,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    IllegalTransition,
    Job,
    JobCancelled,
    JobState,
    LEGAL_TRANSITIONS,
    expected_work,
    job_key,
)

__all__ = [
    "DEFAULT_SERVICE_PORT",
    "DEFAULT_TTL_S",
    "IllegalTransition",
    "Job",
    "JobCancelled",
    "JobState",
    "LEGAL_TRANSITIONS",
    "ServiceClient",
    "ServiceError",
    "SpecError",
    "SweepService",
    "build_specs",
    "expected_work",
    "job_key",
]
