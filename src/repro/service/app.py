"""Simulation-as-a-service: the asyncio HTTP application around the engine.

:class:`SweepService` turns the experiments engine into a long-running
queryable oracle: clients submit sweep specs over HTTP, the service
queues them (shortest expected work first, bounded concurrency), streams
per-point/per-shard progress as NDJSON, and serves finished results
straight off the content-addressed cache.

Endpoints
---------

==========  =========================  =======================================
method      path                       behaviour
==========  =========================  =======================================
``POST``    ``/sweeps``                submit a sweep; dedups by content hash
``GET``     ``/sweeps/{id}``           job description + state
``GET``     ``/sweeps/{id}/events``    NDJSON progress stream (``?from=N``)
``DELETE``  ``/sweeps/{id}``           cancel (immediate when queued,
                                       best-effort when running)
``GET``     ``/results/{key}``         pickled result bytes by cache key
``GET``     ``/healthz``               liveness + queue counters
==========  =========================  =======================================

Submission bodies name either a registered experiment
(``{"experiment": "fig5", "settings": {...}}`` — the same knobs as
``ExperimentSettings``) or a raw sweep
(``{"runner": "pkg.mod:fn", "grid": {...}, "base": {...}}``).  Each
submission expands to specs whose content-addressed cache keys double as
the dedup identity: resubmitting an identical sweep joins the live job
(or the finished one), and after the finished job ages out of the
registry a resubmission is served entirely from the result cache — the
engine never computes the same point twice.

The HTTP side runs on one asyncio loop (optionally on a background
thread, for tests and embedding); jobs execute on worker threads through
the exact executor stack every CLI run uses — a serial
:class:`~repro.experiments.executor.Executor` for ``workers="1"``, a
:class:`~repro.experiments.distributed.DistributedExecutor` for anything
larger (including ``"node1:4,..."`` fleet specs), whose scheduler
observer feeds steal/shard/requeue events into the job's stream.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import threading
import time
import traceback
from typing import Optional, Union

from repro.experiments.cache import MISS, CacheBackend
from repro.experiments.executor import Executor
from repro.experiments.distributed.cacheserver import parse_cache_spec
from repro.experiments.distributed.dispatcher import DistributedExecutor
from repro.experiments.distributed.transport import parse_workers
from repro.experiments.distributed.worker import BATCHING_ENGINES
from repro.service import http
from repro.service.jobs import (
    Job,
    JobCancelled,
    JobState,
    expected_work,
    job_key,
    new_job_id,
    prune_finished,
    sort_queued,
    spec_engine,
)

#: Default TCP port of ``python -m repro.experiments serve``.
DEFAULT_SERVICE_PORT = 7654

#: How long a finished job stays in the registry before it is pruned.
#: Results live on in the cache backend regardless — expiry only means a
#: resubmission becomes a fresh (all-cache-hits) job instead of a dedup.
DEFAULT_TTL_S = 3600.0


class SpecError(ValueError):
    """A submission payload that cannot be turned into a valid sweep."""


def build_specs(payload) -> tuple:
    """Expand a submission payload into ``(title, specs, assemble, engine)``.

    Raises
    ------
    SpecError
        With a client-presentable message when the payload is not a
        mapping, names an unknown experiment/runner, carries invalid
        settings, or sweeps unhashable parameter values.
    """
    # Imported here so the module can be imported without dragging in the
    # full evaluation stack until a submission actually needs it.
    from repro.evaluation.settings import ExperimentSettings
    from repro.experiments.registry import EXPERIMENTS
    from repro.experiments.spec import resolve_runner
    from repro.experiments.sweep import Sweep

    if not isinstance(payload, dict):
        raise SpecError(
            f"submission must be a JSON object, got {type(payload).__name__}"
        )
    if "experiment" in payload:
        name = payload["experiment"]
        if name not in EXPERIMENTS:
            raise SpecError(
                f"unknown experiment {name!r}; "
                f"available: {', '.join(EXPERIMENTS)}"
            )
        overrides = payload.get("settings", {})
        if not isinstance(overrides, dict):
            raise SpecError(
                f"'settings' must be a JSON object, got "
                f"{type(overrides).__name__}"
            )
        try:
            settings = ExperimentSettings(**overrides)
            settings.probe_topology()
        except TypeError as error:
            raise SpecError(f"bad settings: {error}") from error
        except ValueError as error:
            raise SpecError(str(error)) from error
        definition = EXPERIMENTS[name]
        specs = definition.build_sweep(settings).specs()
        return name, specs, definition.assemble, settings.engine
    if "runner" in payload:
        runner = payload["runner"]
        grid = payload.get("grid", {})
        base = payload.get("base", {})
        if not isinstance(grid, dict) or not isinstance(base, dict):
            raise SpecError("'grid' and 'base' must be JSON objects")
        try:
            resolve_runner(runner)
        except (ValueError, ImportError) as error:
            raise SpecError(f"bad runner: {error}") from error
        try:
            sweep = Sweep(
                runner=runner, grid=grid, base=base,
                name=payload.get("name", ""),
            )
            specs = sweep.specs()
            for spec in specs:
                spec.key  # noqa: B018 — force key hashing to validate params
        except TypeError as error:
            raise SpecError(str(error)) from error
        if not specs:
            raise SpecError("sweep expands to zero points")
        return payload.get("name") or runner, specs, None, spec_engine(specs)
    raise SpecError(
        "submission needs either 'experiment' (a registry name, optional "
        "'settings') or 'runner' (a 'pkg.mod:fn' path, optional "
        "'grid'/'base')"
    )


class SweepService:
    """The HTTP sweep service: queue, state machine, event streams, cache.

    Parameters
    ----------
    host, port : str, int
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    workers : int or str
        Per-job executor fleet in :func:`parse_workers` grammar.  ``"1"``
        runs each job on an in-thread serial executor; anything larger —
        ``"4"`` or ``"node1:2,node2:7700:4"`` — fronts a
        :class:`DistributedExecutor` per job, so one service can drive a
        whole worker fleet.
    cache : CacheBackend or str or None
        Result cache: a live backend, a ``parse_cache_spec`` string
        (``"disk:..."``/``"memory"``/``"tcp://..."``), or ``None`` for no
        caching (disables ``/results`` and dedup-by-cache).  Default: a
        fresh in-memory cache.
    max_jobs : int
        Bounded concurrency: how many jobs may run simultaneously.
    ttl_s : float
        Seconds a finished job stays in the registry (see
        :data:`DEFAULT_TTL_S`).

    Examples
    --------
    >>> service = SweepService(workers="1", cache="memory").start()
    >>> from repro.service.client import ServiceClient
    >>> client = ServiceClient("127.0.0.1", service.port)
    >>> job = client.submit({"runner": "repro.experiments.demo:multiply",
    ...                      "grid": {"a": [2, 3]}, "base": {"b": 10}})["job"]
    >>> client.wait(job["id"])["state"]
    'done'
    >>> service.stop()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Union[int, str] = "1",
        cache: Union[CacheBackend, str, None] = "memory",
        max_jobs: int = 2,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be positive, got {max_jobs}")
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._requested_port = port
        self.workers_spec = workers
        self._worker_entries = parse_workers(workers)
        self.cache = (
            parse_cache_spec(cache) if isinstance(cache, str) else cache
        )
        self.max_jobs = max_jobs
        self.ttl_s = ttl_s
        self._jobs: dict = {}
        self._by_key: dict = {}
        self._queued: list = []
        self._running: set = set()
        self._submit_seq = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server = None
        self._thread: Optional[threading.Thread] = None
        self._job_threads: list = []
        self._started = threading.Event()
        self._boot_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "SweepService":
        """Boot the HTTP server on a background loop thread; returns self.

        Raises the bind error (e.g. ``OSError`` for a taken port) in the
        calling thread.
        """
        self._thread = threading.Thread(
            target=self._loop_main, name="sweep-service", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._boot_error is not None:
            raise self._boot_error
        return self

    def stop(self) -> None:
        """Cancel running jobs, close the server, and stop the loop."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return

        def _shutdown() -> None:
            for job_id in list(self._running):
                self._jobs[job_id].cancel_requested.set()
            if self._server is not None:
                self._server.close()
            loop.stop()

        loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        for thread in self._job_threads:
            thread.join(timeout=1.0)

    def _loop_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            boot = asyncio.start_server(
                self._handle, self.host, self._requested_port
            )
            self._server = loop.run_until_complete(boot)
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as error:  # surface bind failures to start()
            self._boot_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.run_until_complete(self._server.wait_closed())
            loop.close()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle(self, reader, writer) -> None:
        """Serve one connection: parse, dispatch, close."""
        try:
            try:
                request = await http.read_request(reader)
            except http.BadRequest as error:
                writer.write(http.error_response(400, str(error)))
                await writer.drain()
                return
            if request is None:
                return
            await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        except asyncio.CancelledError:
            raise
        except Exception:
            try:
                writer.write(
                    http.error_response(500, traceback.format_exc(limit=4))
                )
                await writer.drain()
            except OSError:
                pass
        finally:
            try:
                writer.close()
            except OSError:
                pass

    async def _dispatch(self, request: http.Request, writer) -> None:
        parts = request.parts
        if parts == ["healthz"]:
            if request.method != "GET":
                return await self._send(writer, 405, "use GET")
            return await self._reply(writer, 200, self._health())
        if parts == ["sweeps"]:
            if request.method != "POST":
                return await self._send(writer, 405, "use POST")
            return await self._handle_submit(request, writer)
        if len(parts) == 2 and parts[0] == "sweeps":
            job = self._jobs.get(parts[1])
            if job is None:
                return await self._send(writer, 404, f"no job {parts[1]!r}")
            if request.method == "GET":
                return await self._reply(writer, 200, {"job": job.to_dict()})
            if request.method == "DELETE":
                return await self._handle_cancel(job, writer)
            return await self._send(writer, 405, "use GET or DELETE")
        if len(parts) == 3 and parts[0] == "sweeps" and parts[2] == "events":
            if request.method != "GET":
                return await self._send(writer, 405, "use GET")
            job = self._jobs.get(parts[1])
            if job is None:
                return await self._send(writer, 404, f"no job {parts[1]!r}")
            return await self._handle_events(request, job, writer)
        if len(parts) == 2 and parts[0] == "results":
            if request.method != "GET":
                return await self._send(writer, 405, "use GET")
            return await self._handle_result(parts[1], writer)
        return await self._send(
            writer, 404, f"no route for {request.method} {request.path}"
        )

    async def _reply(self, writer, status: int, payload: dict) -> None:
        writer.write(http.json_response(status, payload))
        await writer.drain()

    async def _send(self, writer, status: int, detail: str) -> None:
        writer.write(http.error_response(status, detail))
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Endpoint handlers
    # ------------------------------------------------------------------ #

    def _health(self) -> dict:
        states: dict = {}
        for job in self._jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "status": "ok",
            "jobs": states,
            "queued": len(self._queued),
            "running": len(self._running),
            "max_jobs": self.max_jobs,
            "workers": str(self.workers_spec),
        }

    async def _handle_submit(self, request: http.Request, writer) -> None:
        try:
            payload = request.json()
            title, specs, assemble, engine = build_specs(payload)
        except (http.BadRequest, SpecError) as error:
            return await self._send(writer, 400, str(error))

        prune_finished(self._jobs, self._by_key, self.ttl_s)
        key = job_key(specs)
        existing_id = self._by_key.get(key)
        if existing_id is not None:
            existing = self._jobs[existing_id]
            # Failed/cancelled jobs never dedup (they are dropped from
            # the key map at finish time); live and done jobs do.
            return await self._reply(
                writer,
                200,
                {"job": existing.to_dict(), "deduplicated": True},
            )

        _, miss_indices = Executor(workers=1, cache=self.cache).scan_cache(
            specs
        )
        job = Job(
            job_id=new_job_id(),
            key=key,
            title=title,
            specs=specs,
            cost=expected_work(specs, miss_indices),
            assemble=assemble,
            engine=engine,
            submit_seq=self._submit_seq,
        )
        self._submit_seq += 1
        job._waiter = self._loop.create_future()
        self._jobs[job.job_id] = job
        self._by_key[key] = job.job_id
        self._queued.append(job.job_id)
        self._emit(job, {"kind": "state", "state": JobState.QUEUED.value,
                         "points": len(specs), "cost": job.cost})
        self._maybe_start()
        await self._reply(
            writer, 201, {"job": job.to_dict(), "deduplicated": False}
        )

    async def _handle_cancel(self, job: Job, writer) -> None:
        if job.state is JobState.QUEUED:
            self._queued.remove(job.job_id)
            job.transition(JobState.CANCELLED)
            if self._by_key.get(job.key) == job.job_id:
                del self._by_key[job.key]
            self._emit(
                job, {"kind": "state", "state": JobState.CANCELLED.value}
            )
            return await self._reply(writer, 200, {"job": job.to_dict()})
        if job.state is JobState.RUNNING:
            job.cancel_requested.set()
            return await self._reply(
                writer, 202, {"job": job.to_dict(), "cancelling": True}
            )
        return await self._send(
            writer, 409, f"job {job.job_id} is already {job.state.value}"
        )

    async def _handle_events(
        self, request: http.Request, job: Job, writer
    ) -> None:
        try:
            index = int(request.query.get("from", "0"))
            if index < 0:
                raise ValueError(index)
        except ValueError:
            return await self._send(
                writer, 400, f"bad 'from' value {request.query.get('from')!r}"
            )
        writer.write(http.stream_head())
        await writer.drain()
        while True:
            # Capture the waiter BEFORE scanning, so an event emitted
            # between the scan and the await still wakes this stream.
            waiter = job._waiter
            while index < len(job.events):
                line = json.dumps(job.events[index], sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
                await writer.drain()
                index += 1
            if job.state.terminal:
                return
            await waiter

    async def _handle_result(self, key: str, writer) -> None:
        if self.cache is None:
            return await self._send(
                writer, 404, "no cache backend attached (serve --cache ...)"
            )
        value = self.cache.get(key)
        if value is MISS:
            return await self._send(writer, 404, f"no cached result {key!r}")
        body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        writer.write(http.response(status=200, body=body,
                                   content_type="application/octet-stream"))
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Queue + execution (loop thread unless noted)
    # ------------------------------------------------------------------ #

    def _maybe_start(self) -> None:
        """Dispatch queued jobs while slots are free, cheapest job first."""
        while self._queued and len(self._running) < self.max_jobs:
            ordered = sort_queued(
                [self._jobs[job_id] for job_id in self._queued]
            )
            job = ordered[0]
            self._queued.remove(job.job_id)
            job.transition(JobState.RUNNING)
            self._running.add(job.job_id)
            self._emit(
                job, {"kind": "state", "state": JobState.RUNNING.value}
            )
            thread = threading.Thread(
                target=self._job_main,
                args=(job,),
                name=f"sweep-job-{job.job_id}",
                daemon=True,
            )
            self._job_threads.append(thread)
            thread.start()

    def _make_executor(self, job: Job) -> tuple:
        """Fresh per-job executor: ``(executor, is_distributed)``."""
        entries = self._worker_entries
        if len(entries) == 1 and entries[0].local and entries[0].count == 1:
            return Executor(workers=1, cache=self.cache), False
        return (
            DistributedExecutor(
                workers=self.workers_spec,
                cache=self.cache,
                observer=lambda payload, job=job: self._post_event(
                    job, payload
                ),
            ),
            True,
        )

    def _job_main(self, job: Job) -> None:
        """Worker-thread body: run the sweep, marshal the outcome back."""
        report = None
        try:
            if job.cancel_requested.is_set():
                raise JobCancelled()
            executor, distributed = self._make_executor(job)

            def progress(spec, value, job=job, distributed=distributed):
                # Raising from a distributed store() would kill a channel
                # thread, not the job — cancellation there is checked at
                # run boundaries instead.
                if not distributed and job.cancel_requested.is_set():
                    raise JobCancelled()
                self._post_event(
                    job,
                    {"kind": "point", "label": spec.label, "key": spec.key},
                )

            if (
                not distributed
                and job.engine in BATCHING_ENGINES
                and len(job.specs) > 1
            ):
                from repro.experiments.batch import BatchRunner

                front = BatchRunner(executor)
                results = front.run(job.specs, progress)
                report = front.last_report
            else:
                results = executor.run(job.specs, progress)
                report = executor.last_report
            if job.cancel_requested.is_set():
                raise JobCancelled()
            report_text = None
            if job.assemble is not None:
                report_text = job.assemble(job.specs, results).report()
            self._post_finish(job, JobState.DONE, report, report_text, None)
        except JobCancelled:
            self._post_finish(job, JobState.CANCELLED, report, None, None)
        except BaseException:
            self._post_finish(
                job, JobState.FAILED, report, None, traceback.format_exc()
            )

    def _post_event(self, job: Job, payload: dict) -> None:
        """Thread-safe event append (no-op once the loop is gone)."""
        try:
            self._loop.call_soon_threadsafe(self._emit, job, payload)
        except RuntimeError:
            pass  # service stopping; late events have nowhere to go

    def _post_finish(self, job, state, report, report_text, error) -> None:
        """Thread-safe completion marshalling (see :meth:`_finish`)."""
        try:
            self._loop.call_soon_threadsafe(
                self._finish, job, state, report, report_text, error
            )
        except RuntimeError:
            pass

    def _emit(self, job: Job, payload: dict) -> None:
        """Append one event and wake every waiting stream (loop thread)."""
        event = {"seq": len(job.events), "ts": round(time.time(), 3)}
        event.update(payload)
        job.events.append(event)
        waiter, job._waiter = job._waiter, self._loop.create_future()
        if not waiter.done():
            waiter.set_result(None)

    def _finish(self, job, state, report, report_text, error) -> None:
        """Land a job outcome: transition, final event, dispatch next."""
        self._running.discard(job.job_id)
        job.transition(state)
        job.error = error
        job.report_text = report_text
        if report is not None:
            job.cache_hits = report.cache_hits
            job.computed = report.computed
            job.elapsed_s = report.elapsed_s
        if state is not JobState.DONE and self._by_key.get(job.key) == job.job_id:
            # Failed/cancelled sweeps must not swallow a resubmission.
            del self._by_key[job.key]
        event = {"kind": "state", "state": state.value}
        if report is not None:
            event["summary"] = report.summary()
        if error is not None:
            event["error"] = error
        self._emit(job, event)
        self._maybe_start()


__all__ = [
    "DEFAULT_SERVICE_PORT",
    "DEFAULT_TTL_S",
    "SpecError",
    "SweepService",
    "build_specs",
]
