"""The job layer of the sweep service: state machine, cost model, registry types.

A :class:`Job` is one submitted sweep travelling through the service's
queue.  Its lifecycle is a strict state machine::

    queued ──> running ──> done
       │          ├──────> failed
       └──────────┴──────> cancelled

Only the transitions drawn above are legal; anything else (resurrecting
a terminal job, completing a job that never ran) raises
:class:`IllegalTransition` — the service never silently repairs an
impossible lifecycle, because an impossible lifecycle means a scheduler
bug.

Queue ordering is *shortest expected work first*: :func:`expected_work`
reuses the LPT cost estimates the distributed shard planner
(:func:`repro.experiments.distributed.shards.plan_shards`) already
computes, so a one-point probe submitted behind a 500-point catalogue
sweep is answered first — the classical weighted single-machine
scheduling result that minimises mean job turnaround.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Sequence

from repro.experiments.distributed.shards import plan_shards
from repro.experiments.spec import ExperimentSpec


class JobState(str, Enum):
    """Lifecycle states of a submitted sweep job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the state ends the job (no further transitions)."""
        return self in _TERMINAL


_TERMINAL = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: The legal transition table: current state -> states it may move to.
#: Terminal states map to the empty set; everything not listed here is an
#: :class:`IllegalTransition`.
LEGAL_TRANSITIONS: dict = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


class IllegalTransition(RuntimeError):
    """A job was asked to move between states the lifecycle forbids."""


class JobCancelled(Exception):
    """Raised inside a job's worker thread when cancellation is requested."""


def job_key(specs: Sequence[ExperimentSpec]) -> str:
    """Content-addressed identity of a sweep submission.

    SHA-256 over the ordered cache keys of the expanded specs.  Two
    submissions that expand to the same points (same runners, same
    parameters, same program source) get the same key — the handle the
    service dedups on: a resubmitted sweep joins the live job or is
    served from cache instead of recomputing.

    Examples
    --------
    >>> spec = ExperimentSpec("repro.experiments.demo:multiply", {"a": 2})
    >>> job_key([spec]) == job_key([spec])
    True
    >>> len(job_key([spec]))
    64
    """
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec.key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def expected_work(
    specs: Sequence[ExperimentSpec],
    miss_indices: Optional[Sequence[int]] = None,
) -> int:
    """Expected compute cost of a job, in sweep points still to run.

    Reuses the shard planner's cost model: the points are cut with
    :func:`~repro.experiments.distributed.shards.plan_shards` (the same
    LPT-ordered shards a distributed run would execute) and the shard
    sizes are summed.  Cached points cost nothing — pass the cache
    scan's ``miss_indices`` so a fully warm resubmission sorts ahead of
    every cold job.

    Examples
    --------
    >>> specs = [ExperimentSpec("repro.experiments.demo:multiply", {"a": a})
    ...          for a in range(4)]
    >>> expected_work(specs)
    4
    >>> expected_work(specs, miss_indices=[2])
    1
    """
    shards = plan_shards(list(specs), miss_indices)
    return sum(shard.size for shard in shards)


@dataclass
class Job:
    """One submitted sweep: specs, lifecycle state, and its event log.

    Parameters
    ----------
    job_id : str
        Service-local identifier (short hex), used in every URL.
    key : str
        Content hash from :func:`job_key` — the dedup identity.
    title : str
        Human-readable label (experiment name or runner path).
    specs : list of ExperimentSpec
        The expanded points, in sweep order.
    cost : int
        Expected work from :func:`expected_work`; the queue runs
        shortest-cost-first.
    assemble : callable, optional
        Registry assembler producing the figure result object (whose
        ``report()`` text is attached to the finished job), or ``None``
        for raw sweeps.
    engine : str, optional
        The engine named by the specs, used to pick a batching front-end.
    """

    job_id: str
    key: str
    title: str
    specs: list
    cost: int = 0
    assemble: Optional[Callable] = None
    engine: Optional[str] = None
    state: JobState = JobState.QUEUED
    submit_seq: int = 0
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None
    report_text: Optional[str] = None
    cache_hits: int = 0
    computed: int = 0
    elapsed_s: float = 0.0
    #: Ordered NDJSON event log; each entry carries a dense ``seq``.
    events: list = field(default_factory=list)
    #: Set by ``DELETE /sweeps/{id}`` on a running job; the worker thread
    #: polls it between points (cancellation is best-effort mid-point).
    cancel_requested: threading.Event = field(default_factory=threading.Event)

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the legal transition table.

        Raises
        ------
        IllegalTransition
            When the lifecycle forbids the move (e.g. any transition out
            of a terminal state, or ``queued -> done`` without running).
        """
        if new_state not in LEGAL_TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        now = time.time()
        if new_state is JobState.RUNNING:
            self.started_s = now
        elif new_state.terminal:
            self.finished_s = now

    @property
    def result_keys(self) -> list:
        """Content-addressed cache key of every point, in sweep order."""
        return [spec.key for spec in self.specs]

    def to_dict(self) -> dict:
        """JSON-ready description served by ``GET /sweeps/{id}``."""
        return {
            "id": self.job_id,
            "key": self.key,
            "title": self.title,
            "state": self.state.value,
            "points": len(self.specs),
            "cost": self.cost,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "created_s": round(self.created_s, 3),
            "started_s": (
                round(self.started_s, 3) if self.started_s is not None else None
            ),
            "finished_s": (
                round(self.finished_s, 3)
                if self.finished_s is not None
                else None
            ),
            "elapsed_s": round(self.elapsed_s, 3),
            "error": self.error,
            "events": len(self.events),
            "result_keys": self.result_keys,
            "report": self.report_text,
        }


def new_job_id() -> str:
    """A fresh 12-hex-digit job identifier."""
    import uuid

    return uuid.uuid4().hex[:12]


def spec_engine(specs: Sequence[ExperimentSpec]) -> Optional[str]:
    """The engine the specs request, if any (mirrors the worker's probe)."""
    return next(
        (spec.params["engine"] for spec in specs if "engine" in spec.params),
        None,
    )


def sort_queued(jobs: Sequence[Job]) -> list:
    """Queued jobs in dispatch order: cheapest first, FIFO on ties.

    Examples
    --------
    >>> a = Job("a", "k", "t", [], cost=5, submit_seq=0)
    >>> b = Job("b", "k", "t", [], cost=1, submit_seq=1)
    >>> [job.job_id for job in sort_queued([a, b])]
    ['b', 'a']
    """
    return sorted(jobs, key=lambda job: (job.cost, job.submit_seq))


def prune_finished(
    jobs: dict, by_key: dict, ttl_s: float, now: Optional[float] = None
) -> list:
    """Drop terminal jobs older than ``ttl_s`` from both registries.

    Returns the pruned job ids.  Live jobs are never pruned; a pruned
    ``done`` job's results stay in the result cache, so a resubmission
    after expiry is served as an all-hits job rather than recomputed.
    """
    now = time.time() if now is None else now
    pruned = []
    for job_id, job in list(jobs.items()):
        if not job.state.terminal or job.finished_s is None:
            continue
        if now - job.finished_s >= ttl_s:
            del jobs[job_id]
            if by_key.get(job.key) == job_id:
                del by_key[job.key]
            pruned.append(job_id)
    return pruned


__all__ = [
    "IllegalTransition",
    "Job",
    "JobCancelled",
    "JobState",
    "LEGAL_TRANSITIONS",
    "expected_work",
    "job_key",
    "new_job_id",
    "prune_finished",
    "sort_queued",
    "spec_engine",
]
