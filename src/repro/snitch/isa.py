"""Instruction representation and classification for the RV32IM(+A) subset.

The simulator works at the assembly level: instructions are kept as decoded
objects (mnemonic plus operand fields) rather than 32-bit encodings, which is
all an architectural timing/energy model needs.  The supported subset covers
the instructions the Snitch core executes in the paper's benchmarks:

* RV32I integer ALU, loads/stores (word granularity), branches, jumps;
* the M extension (``mul``/``mulh``/``mulhu``/``mulhsu``/``div``/``divu``/
  ``rem``/``remu``);
* the two A-extension atomics MemPool uses for synchronisation
  (``amoadd.w``, ``amoswap.w``);
* ``ecall`` / ``ebreak`` / ``wfi`` as program terminators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InstructionClass(enum.Enum):
    """Coarse classes used by the timing and energy models."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    AMO = "amo"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"


#: Register-register ALU operations.
ALU_RR_OPS = frozenset({
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
})
#: Register-immediate ALU operations.
ALU_RI_OPS = frozenset({
    "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
})
#: Upper-immediate operations.
UPPER_OPS = frozenset({"lui", "auipc"})
#: Multiply operations (single-cycle on Snitch).
MUL_OPS = frozenset({"mul", "mulh", "mulhu", "mulhsu"})
#: Divide/remainder operations.
DIV_OPS = frozenset({"div", "divu", "rem", "remu"})
#: Load operations (word/halfword/byte).
LOAD_OPS = frozenset({"lw", "lh", "lhu", "lb", "lbu"})
#: Store operations.
STORE_OPS = frozenset({"sw", "sh", "sb"})
#: Atomic memory operations.
AMO_OPS = frozenset({"amoadd.w", "amoswap.w"})
#: Conditional branches.
BRANCH_OPS = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})
#: Unconditional jumps.
JUMP_OPS = frozenset({"jal", "jalr"})
#: System/terminator instructions.
SYSTEM_OPS = frozenset({"ecall", "ebreak", "wfi", "fence", "csrr", "csrw"})

ALL_OPS = (
    ALU_RR_OPS | ALU_RI_OPS | UPPER_OPS | MUL_OPS | DIV_OPS | LOAD_OPS
    | STORE_OPS | AMO_OPS | BRANCH_OPS | JUMP_OPS | SYSTEM_OPS
)


def classify(mnemonic: str) -> InstructionClass:
    """Return the coarse class of a mnemonic."""
    if mnemonic in ALU_RR_OPS or mnemonic in ALU_RI_OPS or mnemonic in UPPER_OPS:
        return InstructionClass.ALU
    if mnemonic in MUL_OPS:
        return InstructionClass.MUL
    if mnemonic in DIV_OPS:
        return InstructionClass.DIV
    if mnemonic in LOAD_OPS:
        return InstructionClass.LOAD
    if mnemonic in STORE_OPS:
        return InstructionClass.STORE
    if mnemonic in AMO_OPS:
        return InstructionClass.AMO
    if mnemonic in BRANCH_OPS:
        return InstructionClass.BRANCH
    if mnemonic in JUMP_OPS:
        return InstructionClass.JUMP
    if mnemonic in SYSTEM_OPS:
        return InstructionClass.SYSTEM
    raise ValueError(f"unknown mnemonic {mnemonic!r}")


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    #: Source line (for diagnostics).
    source: str = ""

    def __post_init__(self) -> None:
        if self.mnemonic not in ALL_OPS:
            raise ValueError(f"unsupported mnemonic {self.mnemonic!r}")

    @property
    def instruction_class(self) -> InstructionClass:
        return classify(self.mnemonic)

    @property
    def is_memory(self) -> bool:
        cls = self.instruction_class
        return cls in (InstructionClass.LOAD, InstructionClass.STORE, InstructionClass.AMO)

    @property
    def is_terminator(self) -> bool:
        return self.mnemonic in ("ecall", "ebreak", "wfi")

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return self.source or self.mnemonic
