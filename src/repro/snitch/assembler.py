"""A small two-pass assembler for the RV32IM(+A) subset of the ISS.

The assembler accepts standard RISC-V assembly syntax (labels, comments,
ABI register names, the common pseudo-instructions) and produces a
:class:`Program` of decoded :class:`~repro.snitch.isa.Instruction` objects.
Because the ISS executes decoded instructions rather than binary encodings,
branch and jump targets are stored as absolute byte addresses in the ``imm``
field.

External symbols (data addresses, per-core constants such as the stack
pointer) are provided through the ``symbols`` mapping, which is how the
example programs reference buffers allocated by
:class:`repro.addressing.layout.MemoryLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.snitch.isa import (
    ALU_RI_OPS,
    ALU_RR_OPS,
    AMO_OPS,
    BRANCH_OPS,
    DIV_OPS,
    Instruction,
    LOAD_OPS,
    MUL_OPS,
    STORE_OPS,
    UPPER_OPS,
)
from repro.snitch.registers import register_index


class AssemblerError(ValueError):
    """Raised for any syntax or semantic error in the assembly source."""


@dataclass
class Program:
    """An assembled program."""

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    source_name: str = "<program>"

    def __len__(self) -> int:
        return len(self.instructions)

    def at(self, pc: int) -> Instruction:
        """Instruction at byte address ``pc``."""
        index = pc // 4
        if pc % 4 != 0 or not 0 <= index < len(self.instructions):
            raise ValueError(f"pc {pc:#x} outside program [0, {4 * len(self):#x})")
        return self.instructions[index]

    def address_of(self, label: str) -> int:
        if label not in self.labels:
            raise KeyError(f"unknown label {label!r}")
        return self.labels[label]


_SIGNED_12_MIN = -2048
_SIGNED_12_MAX = 2047


def _tokenize_operands(text: str) -> list[str]:
    return [token.strip() for token in text.split(",") if token.strip()]


def _strip_comment(line: str) -> str:
    for marker in ("#", "//", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


class _Assembler:
    def __init__(self, source: str, symbols: dict[str, int] | None, name: str) -> None:
        self.source = source
        self.symbols = dict(symbols or {})
        self.name = name
        self.labels: dict[str, int] = {}
        self.instructions: list[Instruction] = []

    # -- pass 1: labels ------------------------------------------------- #

    def _parse_lines(self) -> list[tuple[int, str]]:
        """Return (line_number, statement) pairs with labels collected."""
        statements: list[tuple[int, str]] = []
        pc = 0
        for number, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label or " " in label:
                    raise AssemblerError(
                        f"{self.name}:{number}: invalid label {label!r}"
                    )
                if label in self.labels:
                    raise AssemblerError(
                        f"{self.name}:{number}: duplicate label {label!r}"
                    )
                self.labels[label] = pc
                line = rest.strip()
            if not line:
                continue
            if line.startswith("."):
                # Directives (.text, .globl, .align …) carry no code here.
                continue
            statements.append((number, line))
            pc += 4 * self._statement_size(line)
        return statements

    @staticmethod
    def _statement_size(line: str) -> int:
        """Number of instructions a statement expands to (deterministic).

        ``li`` and ``la`` always expand to ``lui`` + ``addi`` so that label
        addresses can be computed before operand values are known.
        """
        mnemonic = line.split(None, 1)[0].lower()
        return 2 if mnemonic in ("li", "la") else 1

    # -- value / operand parsing ----------------------------------------- #

    def _resolve_value(self, text: str, number: int, allow_label: bool = False) -> int:
        token = text.strip()
        for separator in ("+", "-"):
            # allow "symbol+offset" / "symbol-offset" (single operator only)
            index = token.rfind(separator)
            if index > 0 and not token[:index].strip().lstrip("-").isdigit():
                base = self._resolve_value(token[:index], number, allow_label)
                offset = self._resolve_value(token[index + 1 :], number)
                return base + offset if separator == "+" else base - offset
        try:
            return int(token, 0)
        except ValueError:
            pass
        if token in self.symbols:
            return self.symbols[token]
        if allow_label and token in self.labels:
            return self.labels[token]
        raise AssemblerError(f"{self.name}:{number}: cannot resolve value {token!r}")

    def _register(self, text: str, number: int) -> int:
        try:
            return register_index(text)
        except ValueError as error:
            raise AssemblerError(f"{self.name}:{number}: {error}") from error

    def _memory_operand(self, text: str, number: int) -> tuple[int, int]:
        """Parse ``imm(rs1)`` into (imm, rs1)."""
        token = text.strip()
        if not token.endswith(")") or "(" not in token:
            raise AssemblerError(
                f"{self.name}:{number}: expected memory operand 'imm(reg)', got {text!r}"
            )
        imm_text, _, reg_text = token[:-1].partition("(")
        imm = self._resolve_value(imm_text, number) if imm_text.strip() else 0
        return imm, self._register(reg_text, number)

    # -- pass 2: encode --------------------------------------------------- #

    def assemble(self) -> Program:
        statements = self._parse_lines()
        self.instructions = []
        for number, line in statements:
            for instruction in self._expand(line, number):
                self.instructions.append(instruction)
        # Re-resolve branch targets now that all labels are known (labels are
        # collected in pass 1, so this is only a consistency check).
        return Program(self.instructions, dict(self.labels), self.name)

    def _emit(self, mnemonic: str, number: int, line: str, **fields) -> Instruction:
        try:
            return Instruction(mnemonic=mnemonic, source=line, **fields)
        except ValueError as error:
            raise AssemblerError(f"{self.name}:{number}: {error}") from error

    def _branch_target(self, text: str, number: int) -> int:
        token = text.strip()
        if token in self.labels:
            return self.labels[token]
        return self._resolve_value(token, number, allow_label=True)

    def _expand(self, line: str, number: int) -> list[Instruction]:
        mnemonic, _, operand_text = line.partition(" ")
        mnemonic = mnemonic.strip().lower()
        operands = _tokenize_operands(operand_text)

        def reg(index: int) -> int:
            if index >= len(operands):
                raise AssemblerError(
                    f"{self.name}:{number}: missing operand {index + 1} in {line!r}"
                )
            return self._register(operands[index], number)

        def val(index: int, allow_label: bool = False) -> int:
            if index >= len(operands):
                raise AssemblerError(
                    f"{self.name}:{number}: missing operand {index + 1} in {line!r}"
                )
            return self._resolve_value(operands[index], number, allow_label)

        # ----- pseudo-instructions ------------------------------------- #
        if mnemonic == "nop":
            return [self._emit("addi", number, line, rd=0, rs1=0, imm=0)]
        if mnemonic == "mv":
            return [self._emit("addi", number, line, rd=reg(0), rs1=reg(1), imm=0)]
        if mnemonic == "neg":
            return [self._emit("sub", number, line, rd=reg(0), rs1=0, rs2=reg(1))]
        if mnemonic == "not":
            return [self._emit("xori", number, line, rd=reg(0), rs1=reg(1), imm=-1)]
        if mnemonic == "seqz":
            return [self._emit("sltiu", number, line, rd=reg(0), rs1=reg(1), imm=1)]
        if mnemonic == "snez":
            return [self._emit("sltu", number, line, rd=reg(0), rs1=0, rs2=reg(1))]
        if mnemonic in ("li", "la"):
            # Always expanded to lui + addi so the statement size is fixed.
            destination = reg(0)
            value = val(1, allow_label=True)
            upper = (value + 0x800) >> 12
            lower = value - (upper << 12)
            return [
                self._emit("lui", number, line, rd=destination, imm=upper & 0xFFFFF),
                self._emit("addi", number, line, rd=destination, rs1=destination, imm=lower),
            ]
        if mnemonic == "j":
            return [self._emit("jal", number, line, rd=0, imm=self._branch_target(operands[0], number))]
        if mnemonic == "jr":
            return [self._emit("jalr", number, line, rd=0, rs1=reg(0), imm=0)]
        if mnemonic == "ret":
            return [self._emit("jalr", number, line, rd=0, rs1=1, imm=0)]
        if mnemonic == "call":
            return [self._emit("jal", number, line, rd=1, imm=self._branch_target(operands[0], number))]
        if mnemonic == "beqz":
            return [self._emit("beq", number, line, rs1=reg(0), rs2=0,
                               imm=self._branch_target(operands[1], number))]
        if mnemonic == "bnez":
            return [self._emit("bne", number, line, rs1=reg(0), rs2=0,
                               imm=self._branch_target(operands[1], number))]
        if mnemonic == "bltz":
            return [self._emit("blt", number, line, rs1=reg(0), rs2=0,
                               imm=self._branch_target(operands[1], number))]
        if mnemonic == "bgez":
            return [self._emit("bge", number, line, rs1=reg(0), rs2=0,
                               imm=self._branch_target(operands[1], number))]
        if mnemonic == "blez":
            return [self._emit("bge", number, line, rs1=0, rs2=reg(0),
                               imm=self._branch_target(operands[1], number))]
        if mnemonic == "bgtz":
            return [self._emit("blt", number, line, rs1=0, rs2=reg(0),
                               imm=self._branch_target(operands[1], number))]
        if mnemonic == "ble":
            return [self._emit("bge", number, line, rs1=reg(1), rs2=reg(0),
                               imm=self._branch_target(operands[2], number))]
        if mnemonic == "bgt":
            return [self._emit("blt", number, line, rs1=reg(1), rs2=reg(0),
                               imm=self._branch_target(operands[2], number))]

        # ----- native instructions -------------------------------------- #
        if mnemonic in ALU_RR_OPS or mnemonic in MUL_OPS or mnemonic in DIV_OPS:
            return [self._emit(mnemonic, number, line, rd=reg(0), rs1=reg(1), rs2=reg(2))]
        if mnemonic in ALU_RI_OPS:
            return [self._emit(mnemonic, number, line, rd=reg(0), rs1=reg(1), imm=val(2))]
        if mnemonic in UPPER_OPS:
            return [self._emit(mnemonic, number, line, rd=reg(0), imm=val(1))]
        if mnemonic in LOAD_OPS:
            imm, rs1 = self._memory_operand(operands[1], number)
            return [self._emit(mnemonic, number, line, rd=reg(0), rs1=rs1, imm=imm)]
        if mnemonic in STORE_OPS:
            imm, rs1 = self._memory_operand(operands[1], number)
            return [self._emit(mnemonic, number, line, rs2=reg(0), rs1=rs1, imm=imm)]
        if mnemonic in AMO_OPS:
            imm, rs1 = self._memory_operand(operands[2], number)
            if imm != 0:
                raise AssemblerError(
                    f"{self.name}:{number}: atomics take a plain (reg) operand"
                )
            return [self._emit(mnemonic, number, line, rd=reg(0), rs2=reg(1), rs1=rs1)]
        if mnemonic in BRANCH_OPS:
            return [self._emit(mnemonic, number, line, rs1=reg(0), rs2=reg(1),
                               imm=self._branch_target(operands[2], number))]
        if mnemonic == "jal":
            if len(operands) == 1:
                return [self._emit("jal", number, line, rd=1,
                                   imm=self._branch_target(operands[0], number))]
            return [self._emit("jal", number, line, rd=reg(0),
                               imm=self._branch_target(operands[1], number))]
        if mnemonic == "jalr":
            if len(operands) == 1:
                return [self._emit("jalr", number, line, rd=1, rs1=reg(0), imm=0)]
            if len(operands) == 2 and "(" in operands[1]:
                imm, rs1 = self._memory_operand(operands[1], number)
                return [self._emit("jalr", number, line, rd=reg(0), rs1=rs1, imm=imm)]
            return [self._emit("jalr", number, line, rd=reg(0), rs1=reg(1), imm=val(2))]
        if mnemonic in ("ecall", "ebreak", "wfi", "fence"):
            return [self._emit(mnemonic, number, line)]
        raise AssemblerError(f"{self.name}:{number}: unknown instruction {mnemonic!r}")


def assemble(
    source: str,
    symbols: dict[str, int] | None = None,
    name: str = "<program>",
) -> Program:
    """Assemble ``source`` into a :class:`Program`.

    ``symbols`` maps external symbol names (data buffers, per-core constants)
    to their values; they can be used wherever an immediate is expected and
    with the ``li`` / ``la`` pseudo-instructions.
    """
    return _Assembler(source, symbols, name).assemble()
