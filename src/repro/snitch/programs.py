"""Ready-made RV32IM assembly programs for the Snitch ISS.

These programs demonstrate (and test) the full functional path: assembly
source -> assembler -> ISS -> timing model.  Each builder returns the
assembly text plus the symbol table it expects; all cores run the same binary
and find out who they are from ``a0`` (core id) and ``a1`` (core count),
mirroring how real MemPool binaries are written.
"""

from __future__ import annotations


def vector_add_source() -> str:
    """``c[i] = a[i] + b[i]`` with the elements distributed across cores.

    Symbols: ``vec_a``, ``vec_b``, ``vec_c`` (word arrays), ``vec_len``.
    Arguments: ``a0`` = core id, ``a1`` = number of cores.
    """
    return """
    # a0 = core id, a1 = number of cores
    la   t0, vec_a
    la   t1, vec_b
    la   t2, vec_c
    li   t3, vec_len          # number of elements
    mv   t4, a0               # i = core_id
loop:
    bge  t4, t3, done
    slli t5, t4, 2            # byte offset
    add  t6, t0, t5
    lw   s0, 0(t6)            # a[i]
    add  t6, t1, t5
    lw   s1, 0(t6)            # b[i]
    add  s2, s0, s1
    add  t6, t2, t5
    sw   s2, 0(t6)            # c[i]
    add  t4, t4, a1           # i += num_cores
    j    loop
done:
    ecall
"""


def dot_product_source() -> str:
    """Parallel dot product with an atomic reduction into ``dot_result``.

    Each core accumulates a strided partial sum locally and adds it to the
    shared result with ``amoadd.w``.
    Symbols: ``vec_a``, ``vec_b``, ``vec_len``, ``dot_result``.
    Arguments: ``a0`` = core id, ``a1`` = number of cores.
    """
    return """
    la   t0, vec_a
    la   t1, vec_b
    li   t2, vec_len
    mv   t3, a0               # i = core_id
    li   s0, 0                # partial sum
loop:
    bge  t3, t2, reduce
    slli t4, t3, 2
    add  t5, t0, t4
    lw   s1, 0(t5)
    add  t5, t1, t4
    lw   s2, 0(t5)
    mul  s3, s1, s2
    add  s0, s0, s3
    add  t3, t3, a1
    j    loop
reduce:
    la   t6, dot_result
    amoadd.w zero, s0, (t6)
    ecall
"""


def matmul_source() -> str:
    """``C = A x B`` on ``mat_n`` x ``mat_n`` matrices, one output element at a time.

    Output elements are distributed cyclically across cores.
    Symbols: ``mat_a``, ``mat_b``, ``mat_c``, ``mat_n``.
    Arguments: ``a0`` = core id, ``a1`` = number of cores.
    """
    return """
    la   s0, mat_a
    la   s1, mat_b
    la   s2, mat_c
    li   s3, mat_n            # n
    mul  s4, s3, s3           # n*n elements
    mv   s5, a0               # element index = core id
elem_loop:
    bge  s5, s4, done
    div  s6, s5, s3           # row
    rem  s7, s5, s3           # col
    li   s8, 0                # acc
    li   s9, 0                # k
k_loop:
    bge  s9, s3, store
    # a[row][k]
    mul  t0, s6, s3
    add  t0, t0, s9
    slli t0, t0, 2
    add  t0, t0, s0
    lw   t1, 0(t0)
    # b[k][col]
    mul  t2, s9, s3
    add  t2, t2, s7
    slli t2, t2, 2
    add  t2, t2, s1
    lw   t3, 0(t2)
    mul  t4, t1, t3
    add  s8, s8, t4
    addi s9, s9, 1
    j    k_loop
store:
    mul  t5, s6, s3
    add  t5, t5, s7
    slli t5, t5, 2
    add  t5, t5, s2
    sw   s8, 0(t5)
    add  s5, s5, a1           # next element for this core
    j    elem_loop
done:
    ecall
"""


def reduction_tree_source() -> str:
    """Sum of a vector using per-core partial sums and an atomic reduction.

    Symbols: ``vec_a``, ``vec_len``, ``sum_result``.
    Arguments: ``a0`` = core id, ``a1`` = number of cores.
    """
    return """
    la   t0, vec_a
    li   t1, vec_len
    mv   t2, a0
    li   t3, 0
loop:
    bge  t2, t1, reduce
    slli t4, t2, 2
    add  t5, t0, t4
    lw   t6, 0(t5)
    add  t3, t3, t6
    add  t2, t2, a1
    j    loop
reduce:
    la   t5, sum_result
    amoadd.w zero, t3, (t5)
    ecall
"""
