"""Bridge between the functional Snitch ISS and the cluster timing model.

:class:`SnitchAgent` executes a :class:`~repro.snitch.assembler.Program` on
the functional core and emits the operation stream the timing model
understands: every executed instruction becomes a one-cycle ``Compute`` (or a
``Load`` / ``Store`` for memory instructions), loads are issued non-blocking
and a ``Use`` is emitted only when a later instruction actually reads the
loaded register — which is exactly the scoreboard behaviour that lets the
Snitch core hide L1 latency behind independent instructions.

Functional state (registers, memory contents) is updated at issue time; the
timing model only decides *when* each instruction's cost is paid.  This is a
standard execution-driven (functional-first) simulator split and is accurate
for data-race-free programs.
"""

from __future__ import annotations

from repro.core.agents import Compute, CoreAgent, Load, Store, Use
from repro.core.memory import SharedL1Memory
from repro.snitch.assembler import Program
from repro.snitch.core import SnitchCore
from repro.snitch.icache import InstructionCache
from repro.snitch.isa import InstructionClass

#: Cycles a divide occupies the Snitch core (iterative divider).
DIV_CYCLES = 8


class SnitchAgent(CoreAgent):
    """Runs one assembled program on one core of the cluster."""

    def __init__(
        self,
        program: Program,
        core_id: int,
        memory: SharedL1Memory,
        stack_pointer: int | None = None,
        icache: InstructionCache | None = None,
        argument_registers: dict[int, int] | None = None,
        max_instructions: int = 5_000_000,
    ) -> None:
        self.core = SnitchCore(program, core_id=core_id, sp=stack_pointer)
        self.memory = memory
        self.icache = icache
        self.max_instructions = max_instructions
        #: Architectural registers with a load in flight, mapped to load tags.
        self._pending_registers: dict[int, object] = {}
        self._next_tag = 0
        if argument_registers:
            for register, value in argument_registers.items():
                self.core.registers.write(register, value)

    # ------------------------------------------------------------------ #
    # CoreAgent interface
    # ------------------------------------------------------------------ #

    def operations(self):
        core = self.core
        while not core.halted:
            if core.instructions_executed >= self.max_instructions:
                raise RuntimeError(
                    f"core {core.core_id} exceeded {self.max_instructions} "
                    f"instructions at pc {core.pc:#x}"
                )
            instruction = core.current_instruction()
            # Wait for any in-flight load whose result this instruction reads.
            for register in self._source_registers(instruction):
                tag = self._pending_registers.pop(register, None)
                if tag is not None:
                    yield Use(tag)
            if instruction.rd in self._pending_registers and not (
                instruction.instruction_class
                in (InstructionClass.LOAD, InstructionClass.AMO)
            ):
                # Write-after-write on a pending load destination: wait too.
                yield Use(self._pending_registers.pop(instruction.rd))
            if self.icache is not None:
                penalty = self.icache.fetch_penalty(core.pc)
                if penalty:
                    yield Compute(penalty)
            access = core.execute(instruction, self.memory)
            yield from self._timing_for(instruction, access)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _source_registers(instruction) -> tuple[int, ...]:
        cls = instruction.instruction_class
        if cls in (InstructionClass.LOAD,):
            return (instruction.rs1,)
        if cls in (InstructionClass.STORE, InstructionClass.AMO):
            return (instruction.rs1, instruction.rs2)
        if cls in (InstructionClass.BRANCH,):
            return (instruction.rs1, instruction.rs2)
        if cls is InstructionClass.JUMP:
            return (instruction.rs1,) if instruction.mnemonic == "jalr" else ()
        if instruction.mnemonic in ("lui", "auipc"):
            return ()
        return (instruction.rs1, instruction.rs2)

    def _timing_for(self, instruction, access):
        cls = instruction.instruction_class
        if cls in (InstructionClass.LOAD, InstructionClass.AMO):
            tag = self._next_tag
            self._next_tag += 1
            if access is not None and access.destination not in (None, 0):
                self._pending_registers[access.destination] = tag
            yield Load(access.address, tag=tag)
            return
        if cls is InstructionClass.STORE:
            yield Store(access.address)
            return
        if cls is InstructionClass.MUL:
            yield Compute(1, muls=1)
            return
        if cls is InstructionClass.DIV:
            yield Compute(DIV_CYCLES, muls=1)
            return
        # ALU, branches, jumps and system instructions: one cycle each.
        yield Compute(1)


def make_snitch_agents(
    cluster,
    program: Program,
    cores: list[int] | None = None,
    argument_builder=None,
    use_icache: bool = True,
) -> dict[int, SnitchAgent]:
    """Build one :class:`SnitchAgent` per core for a shared program.

    ``argument_builder(core_id)`` may return a ``{register_index: value}``
    mapping (e.g. the core index in ``a0``) so that all cores can run the
    same binary, exactly as MemPool programs do.  Cores of the same tile
    share one instruction cache, mirroring the real tile organisation.
    """
    config = cluster.config
    cores = list(range(config.num_cores)) if cores is None else list(cores)
    icaches: dict[int, InstructionCache] = {}
    agents: dict[int, SnitchAgent] = {}
    for core_id in cores:
        tile = config.tile_of_core(core_id)
        if use_icache and tile not in icaches:
            icaches[tile] = InstructionCache(
                capacity_bytes=config.icache_bytes_per_tile,
                ways=config.icache_ways,
                line_bytes=config.icache_line_bytes,
                refill_cycles=config.timing.icache_refill_cycles,
            )
        arguments = argument_builder(core_id) if argument_builder else None
        agents[core_id] = SnitchAgent(
            program,
            core_id=core_id,
            memory=cluster.memory,
            stack_pointer=cluster.layout.stack_pointer(core_id),
            icache=icaches.get(tile) if use_icache else None,
            argument_registers=arguments,
        )
    return agents
