"""Functional model of the Snitch RV32IM(+A subset) core and its toolchain."""

from repro.snitch.registers import ABI_NAMES, RegisterFile, register_index
from repro.snitch.isa import Instruction, InstructionClass
from repro.snitch.assembler import AssemblerError, Program, assemble
from repro.snitch.core import ExecutionResult, SnitchCore
from repro.snitch.icache import InstructionCache
from repro.snitch.agent import SnitchAgent, make_snitch_agents

__all__ = [
    "ABI_NAMES",
    "RegisterFile",
    "register_index",
    "Instruction",
    "InstructionClass",
    "Program",
    "assemble",
    "AssemblerError",
    "SnitchCore",
    "ExecutionResult",
    "InstructionCache",
    "SnitchAgent",
    "make_snitch_agents",
]
