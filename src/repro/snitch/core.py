"""Functional execution model of the Snitch core (RV32IM + A subset).

The core executes decoded instructions against a word-addressable memory.
It can run stand-alone ("magic" single-cycle memory, used by unit tests and
for functional verification of programs) or be driven instruction by
instruction by :class:`repro.snitch.agent.SnitchAgent`, which converts the
memory operations into timing-model requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.memory import SharedL1Memory, to_signed, to_unsigned
from repro.snitch.assembler import Program
from repro.snitch.isa import Instruction, InstructionClass
from repro.snitch.registers import RegisterFile


class ExecutionError(RuntimeError):
    """Raised when a program performs an illegal operation."""


@dataclass
class MemoryAccess:
    """Description of the memory side-effect of one executed instruction."""

    is_store: bool
    address: int
    #: Destination register of a load/AMO (None for plain stores).
    destination: int | None = None


@dataclass
class ExecutionResult:
    """Summary of a stand-alone functional run."""

    instructions_executed: int
    pc: int
    exited: bool
    instruction_mix: dict[InstructionClass, int] = field(default_factory=dict)


class SnitchCore:
    """One RV32IM(+A) hart executing a :class:`Program`."""

    def __init__(self, program: Program, core_id: int = 0, sp: int | None = None) -> None:
        self.program = program
        self.core_id = core_id
        self.registers = RegisterFile()
        self.pc = 0
        self.halted = False
        self.instruction_mix: dict[InstructionClass, int] = {}
        self.instructions_executed = 0
        if sp is not None:
            self.registers.write(2, sp)

    # ------------------------------------------------------------------ #
    # Single-instruction execution
    # ------------------------------------------------------------------ #

    def current_instruction(self) -> Instruction:
        return self.program.at(self.pc)

    def execute(self, instruction: Instruction, memory: SharedL1Memory) -> MemoryAccess | None:
        """Execute one instruction; return its memory access, if any."""
        if self.halted:
            raise ExecutionError(f"core {self.core_id} is halted")
        registers = self.registers
        mnemonic = instruction.mnemonic
        cls = instruction.instruction_class
        self.instruction_mix[cls] = self.instruction_mix.get(cls, 0) + 1
        self.instructions_executed += 1
        next_pc = self.pc + 4
        access: MemoryAccess | None = None

        rs1 = registers.read(instruction.rs1)
        rs2 = registers.read(instruction.rs2)
        rs1_u = registers.read_unsigned(instruction.rs1)
        rs2_u = registers.read_unsigned(instruction.rs2)
        imm = instruction.imm

        if cls is InstructionClass.ALU:
            registers.write(instruction.rd, self._alu(mnemonic, rs1, rs2, rs1_u, rs2_u, imm))
        elif cls is InstructionClass.MUL:
            registers.write(instruction.rd, self._multiply(mnemonic, rs1, rs2, rs1_u, rs2_u))
        elif cls is InstructionClass.DIV:
            registers.write(instruction.rd, self._divide(mnemonic, rs1, rs2, rs1_u, rs2_u))
        elif cls is InstructionClass.LOAD:
            address = to_unsigned(rs1 + imm)
            registers.write(instruction.rd, self._load(mnemonic, address, memory))
            access = MemoryAccess(is_store=False, address=address, destination=instruction.rd)
        elif cls is InstructionClass.STORE:
            address = to_unsigned(rs1 + imm)
            self._store(mnemonic, address, rs2_u, memory)
            access = MemoryAccess(is_store=True, address=address)
        elif cls is InstructionClass.AMO:
            address = to_unsigned(rs1)
            previous = self._amo(mnemonic, address, rs2_u, memory)
            registers.write(instruction.rd, previous)
            access = MemoryAccess(is_store=False, address=address, destination=instruction.rd)
        elif cls is InstructionClass.BRANCH:
            if self._branch_taken(mnemonic, rs1, rs2, rs1_u, rs2_u):
                next_pc = imm
        elif cls is InstructionClass.JUMP:
            registers.write(instruction.rd, self.pc + 4)
            if mnemonic == "jal":
                next_pc = imm
            else:  # jalr
                next_pc = to_unsigned(rs1 + imm) & ~1
        elif cls is InstructionClass.SYSTEM:
            if instruction.is_terminator:
                self.halted = True
            # fence / csr accesses are no-ops for this model.
        else:  # pragma: no cover - classify() covers every mnemonic
            raise ExecutionError(f"unhandled instruction {instruction}")

        if not self.halted:
            if next_pc % 4 != 0 or next_pc // 4 >= len(self.program) or next_pc < 0:
                if next_pc == 4 * len(self.program):
                    # Falling off the end of the program terminates it.
                    self.halted = True
                else:
                    raise ExecutionError(
                        f"core {self.core_id}: jump to invalid pc {next_pc:#x} "
                        f"from {instruction.source!r}"
                    )
            self.pc = next_pc
        return access

    # ------------------------------------------------------------------ #
    # Stand-alone functional run (magic memory)
    # ------------------------------------------------------------------ #

    def run(self, memory: SharedL1Memory, max_instructions: int = 1_000_000) -> ExecutionResult:
        """Execute until the program halts (or ``max_instructions`` is hit)."""
        while not self.halted:
            if self.instructions_executed >= max_instructions:
                raise ExecutionError(
                    f"core {self.core_id} exceeded {max_instructions} instructions "
                    f"(pc={self.pc:#x})"
                )
            self.execute(self.current_instruction(), memory)
        return ExecutionResult(
            instructions_executed=self.instructions_executed,
            pc=self.pc,
            exited=True,
            instruction_mix=dict(self.instruction_mix),
        )

    # ------------------------------------------------------------------ #
    # Operation helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _alu(mnemonic, rs1, rs2, rs1_u, rs2_u, imm) -> int:
        shamt_imm = imm & 0x1F
        shamt_reg = rs2_u & 0x1F
        operations = {
            "add": lambda: rs1 + rs2,
            "sub": lambda: rs1 - rs2,
            "and": lambda: rs1_u & rs2_u,
            "or": lambda: rs1_u | rs2_u,
            "xor": lambda: rs1_u ^ rs2_u,
            "sll": lambda: rs1_u << shamt_reg,
            "srl": lambda: rs1_u >> shamt_reg,
            "sra": lambda: rs1 >> shamt_reg,
            "slt": lambda: int(rs1 < rs2),
            "sltu": lambda: int(rs1_u < rs2_u),
            "addi": lambda: rs1 + imm,
            "andi": lambda: rs1_u & to_unsigned(imm),
            "ori": lambda: rs1_u | to_unsigned(imm),
            "xori": lambda: rs1_u ^ to_unsigned(imm),
            "slli": lambda: rs1_u << shamt_imm,
            "srli": lambda: rs1_u >> shamt_imm,
            "srai": lambda: rs1 >> shamt_imm,
            "slti": lambda: int(rs1 < imm),
            "sltiu": lambda: int(rs1_u < to_unsigned(imm)),
            "lui": lambda: imm << 12,
            "auipc": lambda: imm << 12,  # pc-relative addressing is not used
        }
        return operations[mnemonic]()

    @staticmethod
    def _multiply(mnemonic, rs1, rs2, rs1_u, rs2_u) -> int:
        if mnemonic == "mul":
            return rs1 * rs2
        if mnemonic == "mulh":
            return (rs1 * rs2) >> 32
        if mnemonic == "mulhu":
            return (rs1_u * rs2_u) >> 32
        if mnemonic == "mulhsu":
            return (rs1 * rs2_u) >> 32
        raise ExecutionError(f"unknown multiply {mnemonic}")

    @staticmethod
    def _divide(mnemonic, rs1, rs2, rs1_u, rs2_u) -> int:
        if mnemonic == "div":
            if rs2 == 0:
                return -1
            return int(abs(rs1) // abs(rs2)) * (1 if (rs1 < 0) == (rs2 < 0) else -1)
        if mnemonic == "divu":
            return 0xFFFF_FFFF if rs2_u == 0 else rs1_u // rs2_u
        if mnemonic == "rem":
            if rs2 == 0:
                return rs1
            return rs1 - rs2 * (int(abs(rs1) // abs(rs2)) * (1 if (rs1 < 0) == (rs2 < 0) else -1))
        if mnemonic == "remu":
            return rs1_u if rs2_u == 0 else rs1_u % rs2_u
        raise ExecutionError(f"unknown divide {mnemonic}")

    @staticmethod
    def _branch_taken(mnemonic, rs1, rs2, rs1_u, rs2_u) -> bool:
        comparisons = {
            "beq": rs1 == rs2,
            "bne": rs1 != rs2,
            "blt": rs1 < rs2,
            "bge": rs1 >= rs2,
            "bltu": rs1_u < rs2_u,
            "bgeu": rs1_u >= rs2_u,
        }
        return comparisons[mnemonic]

    @staticmethod
    def _load(mnemonic, address, memory: SharedL1Memory) -> int:
        word_address = address & ~3
        word = memory.read_word(word_address)
        if mnemonic == "lw":
            if address % 4 != 0:
                raise ExecutionError(f"unaligned lw at {address:#x}")
            return word
        byte_offset = address & 3
        if mnemonic in ("lh", "lhu"):
            if address % 2 != 0:
                raise ExecutionError(f"unaligned lh at {address:#x}")
            half = (word >> (8 * byte_offset)) & 0xFFFF
            if mnemonic == "lh" and half & 0x8000:
                half -= 0x10000
            return half
        byte = (word >> (8 * byte_offset)) & 0xFF
        if mnemonic == "lb" and byte & 0x80:
            byte -= 0x100
        return byte

    @staticmethod
    def _store(mnemonic, address, value, memory: SharedL1Memory) -> None:
        word_address = address & ~3
        if mnemonic == "sw":
            if address % 4 != 0:
                raise ExecutionError(f"unaligned sw at {address:#x}")
            memory.write_word(word_address, value)
            return
        word = memory.read_word(word_address)
        byte_offset = address & 3
        if mnemonic == "sh":
            if address % 2 != 0:
                raise ExecutionError(f"unaligned sh at {address:#x}")
            mask = 0xFFFF << (8 * byte_offset)
            word = (word & ~mask) | ((value & 0xFFFF) << (8 * byte_offset))
        else:  # sb
            mask = 0xFF << (8 * byte_offset)
            word = (word & ~mask) | ((value & 0xFF) << (8 * byte_offset))
        memory.write_word(word_address, word)

    @staticmethod
    def _amo(mnemonic, address, value, memory: SharedL1Memory) -> int:
        if address % 4 != 0:
            raise ExecutionError(f"unaligned atomic at {address:#x}")
        if mnemonic == "amoadd.w":
            return memory.amo_add(address, value)
        if mnemonic == "amoswap.w":
            return memory.amo_swap(address, value)
        raise ExecutionError(f"unknown atomic {mnemonic}")


def signed(value: int) -> int:
    """Convenience re-export used by tests."""
    return to_signed(value)
