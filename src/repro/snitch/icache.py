"""Per-tile L1 instruction-cache model.

Each MemPool tile has a 4-way, 2 KiB shared instruction cache with a 32-bit
AXI refill port (Section III-B).  The benchmarks of the paper are small
loops that fit in the cache, so the cache's role in the timing model is
limited to cold misses; its main consumers are the statistics used by the
energy and power models (instruction fetches dominate the tile's power,
Section VI-D).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class ICacheStats:
    """Hit/miss counters of one instruction cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class InstructionCache:
    """A set-associative instruction cache with LRU replacement."""

    def __init__(
        self,
        capacity_bytes: int = 2048,
        ways: int = 4,
        line_bytes: int = 32,
        refill_cycles: int = 20,
    ) -> None:
        if capacity_bytes % (ways * line_bytes) != 0:
            raise ValueError(
                "capacity must be a multiple of ways * line size "
                f"({capacity_bytes} % {ways * line_bytes})"
            )
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.refill_cycles = refill_cycles
        self.num_sets = capacity_bytes // (ways * line_bytes)
        # One LRU-ordered dict of tags per set.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = ICacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int) -> bool:
        """Fetch the line containing ``address``; return True on a hit."""
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        cache_set[tag] = None
        cache_set.move_to_end(tag)
        if len(cache_set) > self.ways:
            cache_set.popitem(last=False)
        self.stats.misses += 1
        return False

    def fetch_penalty(self, address: int) -> int:
        """Extra cycles the fetch of ``address`` costs (0 on a hit)."""
        return 0 if self.access(address) else self.refill_cycles

    def flush(self) -> None:
        """Invalidate the whole cache."""
        for cache_set in self._sets:
            cache_set.clear()
