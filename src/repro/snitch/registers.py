"""RISC-V integer register file and ABI register names."""

from __future__ import annotations

from repro.core.memory import to_signed, to_unsigned

#: Mapping from ABI register names to architectural indices.
ABI_NAMES: dict[str, int] = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def register_index(name: str) -> int:
    """Return the register index of an ABI name or an ``x<N>`` name."""
    token = name.strip().lower()
    if token in ABI_NAMES:
        return ABI_NAMES[token]
    if token.startswith("x"):
        try:
            index = int(token[1:])
        except ValueError as error:
            raise ValueError(f"invalid register name {name!r}") from error
        if 0 <= index < 32:
            return index
    raise ValueError(f"invalid register name {name!r}")


class RegisterFile:
    """The 32 general-purpose registers of an RV32 core (``x0`` is wired to 0)."""

    def __init__(self) -> None:
        self._values = [0] * 32

    def read(self, index: int) -> int:
        """Signed value of register ``index``."""
        self._check(index)
        return to_signed(self._values[index])

    def read_unsigned(self, index: int) -> int:
        """Unsigned (raw 32-bit) value of register ``index``."""
        self._check(index)
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        """Write ``value`` (wrapped to 32 bits) to register ``index``."""
        self._check(index)
        if index == 0:
            return
        self._values[index] = to_unsigned(value)

    @staticmethod
    def _check(index: int) -> None:
        if not 0 <= index < 32:
            raise ValueError(f"register index {index} out of range")

    def dump(self) -> dict[str, int]:
        """Signed values of all registers keyed by ABI name (for debugging/tests)."""
        by_index = {}
        for name, index in ABI_NAMES.items():
            by_index.setdefault(index, name)
        return {by_index[i]: to_signed(self._values[i]) for i in range(32)}
