"""The compiled flit-transport engine: ring-buffer queues + array kernels.

:class:`CompiledEngine` is the third implementation of the cycle-engine
contract (after the object-model :class:`~repro.interconnect.resources.StageNetwork`
and the :class:`~repro.engine.vector.VectorEngine`): same API, same
flit-for-flit behaviour, but *all* per-cycle state lives in flat NumPy
arrays —

* per-stage queues are fixed-capacity int32 ring buffers
  (:class:`~repro.engine.soa.RingQueues`) instead of Python deques;
* per-flit move state is an int32 cursor (``row_move``) into the compiled
  network's flattened :class:`~repro.engine.compile.MoveTables` instead of
  per-row Python tuples;
* the whole advance pass — occupancy gather, target-space checks, arbiter
  grants, pops, pushes, completions — is one call into the typed-array
  kernels of :mod:`repro.engine.kernel`, which run under Numba
  ``@njit(cache=True)`` when the optional ``[perf]`` extra is installed
  and as pure Python otherwise.

Because the kernels execute the exact hop rules of
:meth:`VectorEngine.advance <repro.engine.vector.VectorEngine.advance>`
over the exact pooled visiting orders, the engine is cycle-exact with the
``legacy`` and ``vector`` engines (pinned by
``tests/test_engine_equivalence`` and the differential fuzz harness).

:class:`CompiledSimBatch` is the batched sibling — the
:class:`~repro.engine.batch.SimBatch` API over the same kernels, advancing
``S`` disjoint simulations through one flat ``sim * N + stage`` state.  Its
one structural addition is a **global row numbering**: the kernel arrays
(``row_move``, ``row_bank``, ring contents) index rows globally across all
member sims, while each member keeps its own
:class:`~repro.engine.soa.FlitTable` with sim-local ids (so per-member flit
logs match per-sim runs row for row); two translation columns map between
the numberings at injection and completion.
"""

from __future__ import annotations

import numpy as np

from repro.engine.compile import BANK, CompiledNetwork
from repro.engine.kernel import advance_pass, inject_pass
from repro.engine.soa import DEFAULT_CAPACITY, FlitTable, RingQueues


class CompiledEngine:
    """Cycle engine advancing flit rows through the typed-array kernels.

    Drop-in replacement for :class:`~repro.engine.vector.VectorEngine`:
    identical constructor shape, identical public API (``new_flit`` /
    ``advance`` / ``try_inject`` / ``inject_new`` / ``inject_queues`` /
    ``occupancy`` / ``drain`` and the flight counters), so the
    :class:`~repro.engine.vector.VectorStageNetwork` facade and the vector
    traffic driver run on it unchanged.
    """

    def __init__(self, compiled: CompiledNetwork, flits: FlitTable | None = None) -> None:
        self.compiled = compiled
        self.flits = flits or FlitTable()
        num_stages = compiled.num_stages
        #: Per-stage ring buffers of buffered flit rows.
        self.rings = RingQueues(compiled.stage_depth)
        #: Vectorized occupancy column: True where a stage buffers >= 1 flit.
        self.occupied = np.zeros(num_stages, dtype=bool)
        #: Free elastic-buffer slots per stage (depth minus ring fill).
        self.free_slots = np.asarray(compiled.stage_depth, dtype=np.int32)
        #: Cycle in which each stage last accepted a flit (one accept/cycle).
        self.accepted_cycle = np.full(num_stages, -1, dtype=np.int64)
        #: Cycle in which each arbiter last granted (one grant/cycle).
        self.granted_cycle = np.full(max(compiled.num_arbiters, 1), -1, dtype=np.int64)
        #: Flat-slot offsets — all zero for a single simulation; the batched
        #: engine shares the kernels by passing real sim bases here.
        self._slot_base = np.zeros(num_stages, dtype=np.int64)
        self._slot_arb_base = np.zeros(num_stages, dtype=np.int64)
        #: Bank id -> bank stage id (the BANK placeholder resolution table).
        self._bank_stage = np.asarray(compiled.bank_stage_ids, dtype=np.int64)
        #: Per-row move cursor / destination bank (kernel-side row state).
        row_capacity = self.flits.capacity
        self._row_move = np.zeros(row_capacity, dtype=np.int32)
        self._row_bank = np.zeros(row_capacity, dtype=np.int32)
        self._row_capacity = row_capacity
        #: Kernel output buffer: at most one completion per stage per cycle.
        self._completed_out = np.empty(max(num_stages, 1), dtype=np.int64)
        self.in_flight = 0
        self.total_injected = 0
        self.total_completed = 0

    # ------------------------------------------------------------------ #
    # Request construction
    # ------------------------------------------------------------------ #

    def _ensure_row_capacity(self, needed: int) -> None:
        """Grow the per-row kernel columns to hold at least ``needed`` rows."""
        capacity = self._row_capacity
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_row_move", "_row_bank"):
            column = getattr(self, name)
            grown = np.zeros(capacity, dtype=column.dtype)
            grown[: len(column)] = column
            setattr(self, name, grown)
        self._row_capacity = capacity

    def new_flit(self, core_id: int, bank_id: int, is_write: bool, cycle: int) -> int:
        """Allocate a flit row for a core -> bank transaction; return its id."""
        compiled = self.compiled
        path_id = compiled.template_row(core_id, not is_write)[
            compiled.tile_of_bank[bank_id]
        ]
        row = self.flits.allocate(core_id, bank_id, path_id, is_write, cycle)
        tables = compiled.move_tables()
        self._ensure_row_capacity(row + 1)
        self._row_move[row] = tables.path_head[path_id]
        self._row_bank[row] = bank_id
        return row

    # ------------------------------------------------------------------ #
    # Per-cycle operation
    # ------------------------------------------------------------------ #

    def advance(self, cycle: int) -> list[int]:
        """Advance all buffered flits by one cycle; return completed rows.

        The candidate gather (one boolean-mask index over the cycle's
        concatenated downstream-first visiting order) happens here in
        NumPy; everything else is one :func:`~repro.engine.kernel.advance_pass`
        call.  Pre-gathering is exact at visit time, not only at gather
        time: each stage appears once per full order and only its own
        visit pops it, so a stage occupied at the gather is still occupied
        when the kernel reaches it.
        """
        if not self.in_flight:
            return []
        compiled = self.compiled
        order = compiled.full_orders[cycle % compiled.order_pool_size]
        candidates = order[self.occupied[order]]
        if not candidates.size:
            return []
        tables = compiled.move_tables()
        rings = self.rings
        count = advance_pass(
            candidates,
            rings.buffer, rings.start, rings.capacity, rings.head, rings.size,
            self.occupied, self.free_slots, self.accepted_cycle,
            self.granted_cycle, self._slot_base, self._slot_arb_base,
            tables.target, tables.arb_start, tables.arb_end, tables.arbs,
            tables.next, self._row_move, self._row_bank, self._bank_stage,
            self.flits.completed_cycle, self._completed_out, cycle,
        )
        if not count:
            return []
        self.in_flight -= count
        self.total_completed += count
        return self._completed_out[:count].tolist()

    def try_inject(self, row: int, cycle: int) -> bool:
        """Try to move ``row`` from its core into the first register stage."""
        if self.flits.injected_cycle[row] != -1:
            raise ValueError("flit was already injected")
        return self._inject(row, cycle)

    def _inject(self, row: int, cycle: int) -> bool:
        """Single-row injection hop (the non-batched facade path)."""
        tables = self.compiled.move_tables()
        move = int(self._row_move[row])
        target = int(tables.target[move])
        if target == BANK:
            target = int(self._bank_stage[self._row_bank[row]])
        if target >= 0 and (
            not self.free_slots[target] or self.accepted_cycle[target] == cycle
        ):
            return False
        arb_lo = int(tables.arb_start[move])
        arb_hi = int(tables.arb_end[move])
        if arb_hi > arb_lo:
            granted = self.granted_cycle
            arbs = tables.arbs
            for j in range(arb_lo, arb_hi):
                if granted[arbs[j]] == cycle:
                    return False
            for j in range(arb_lo, arb_hi):
                granted[arbs[j]] = cycle
        flits = self.flits
        flits.injected_cycle[row] = cycle
        self.total_injected += 1
        if target >= 0:
            self._row_move[row] = tables.next[move]
            self.rings.push(target, row)
            self.occupied[target] = True
            self.free_slots[target] -= 1
            self.accepted_cycle[target] = cycle
            self.in_flight += 1
        else:
            # Degenerate zero-register path: completes at injection.
            flits.completed_cycle[row] = cycle
            self.total_completed += 1
        return True

    def inject_new(
        self, core_id: int, bank_id: int, is_write: bool,
        created_cycle: int, cycle: int,
    ) -> int | None:
        """Atomically allocate-and-inject a new flit row.

        Check-then-allocate, exactly like
        :meth:`VectorEngine.inject_new <repro.engine.vector.VectorEngine.inject_new>`:
        a blocked first hop allocates nothing, so object-facade callers may
        retry every cycle without leaking rows.
        """
        compiled = self.compiled
        path_id = compiled.template_row(core_id, not is_write)[
            compiled.tile_of_bank[bank_id]
        ]
        tables = compiled.move_tables()
        move = int(tables.path_head[path_id])
        target = int(tables.target[move])
        if target == BANK:
            target = int(self._bank_stage[bank_id])
        if target >= 0 and (
            not self.free_slots[target] or self.accepted_cycle[target] == cycle
        ):
            return None
        arb_lo = int(tables.arb_start[move])
        arb_hi = int(tables.arb_end[move])
        if arb_hi > arb_lo:
            granted = self.granted_cycle
            arbs = tables.arbs
            for j in range(arb_lo, arb_hi):
                if granted[arbs[j]] == cycle:
                    return None
            for j in range(arb_lo, arb_hi):
                granted[arbs[j]] = cycle
        flits = self.flits
        row = flits.allocate(core_id, bank_id, path_id, is_write, created_cycle)
        self._ensure_row_capacity(row + 1)
        self._row_bank[row] = bank_id
        flits.injected_cycle[row] = cycle
        self.total_injected += 1
        if target >= 0:
            self._row_move[row] = tables.next[move]
            self.rings.push(target, row)
            self.occupied[target] = True
            self.free_slots[target] -= 1
            self.accepted_cycle[target] = cycle
            self.in_flight += 1
        else:
            # Degenerate zero-register path: completes at injection.
            self._row_move[row] = move
            flits.completed_cycle[row] = cycle
            self.total_completed += 1
        return row

    def inject_queues(self, source_queues, order, cycle: int) -> int:
        """Inject the head row of each source queue, in ``order``.

        Gathers every non-empty queue's head into one candidate array (each
        queue appears at most once per permutation, so the snapshot cannot
        go stale mid-pass), runs :func:`~repro.engine.kernel.inject_pass`,
        and pops the queues the kernel flagged as accepted.  Returns the
        number of injected rows.
        """
        heads: list[int] = []
        queue_refs = []
        for index in order:
            queue = source_queues[index]
            if queue:
                heads.append(queue[0])
                queue_refs.append(queue)
        if not heads:
            return 0
        rows = np.asarray(heads, dtype=np.int64)
        flags = np.zeros(len(heads), dtype=bool)
        tables = self.compiled.move_tables()
        rings = self.rings
        flits = self.flits
        injected, entered, completed = inject_pass(
            rows, rows, flags,
            rings.buffer, rings.start, rings.capacity, rings.head, rings.size,
            self.occupied, self.free_slots, self.accepted_cycle,
            self.granted_cycle, tables.target, tables.arb_start,
            tables.arb_end, tables.arbs, tables.next, self._row_move,
            self._row_bank, self._bank_stage, flits.injected_cycle,
            flits.completed_cycle, cycle, 0, 0,
        )
        for queue, accepted in zip(queue_refs, flags.tolist()):
            if accepted:
                queue.popleft()
        self.total_injected += int(injected)
        self.in_flight += int(entered)
        self.total_completed += int(completed)
        return int(injected)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def occupancy(self) -> int:
        """Total number of flit rows buffered in register stages."""
        return int(self.rings.size.sum())

    def drain(self, max_cycles: int, start_cycle: int) -> int:
        """Advance until the network is empty; return the cycle reached."""
        cycle = start_cycle
        while self.in_flight > 0:
            if cycle - start_cycle > max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight} flits in flight)"
                )
            self.advance(cycle)
            cycle += 1
        return cycle


class CompiledSimBatch:
    """Batched compiled engine: ``num_sims`` disjoint sims, one kernel pass.

    The :class:`~repro.engine.batch.SimBatch` API (``advance`` /
    ``new_rows`` / ``inject_rows`` / ``retire`` / ``resume`` /
    ``occupancy`` and the per-sim counters) over the
    :mod:`repro.engine.kernel` kernels, so
    :class:`~repro.engine.batch.TrafficBatch` drives it unchanged.

    Rows are numbered **globally** in the kernel state (``row_move``,
    ``row_bank`` and ring contents hold global ids, valid across the whole
    flat ``sim * N + stage`` state) but **locally** in each member's
    :class:`~repro.engine.soa.FlitTable` (ids match the member's own
    per-sim run, which is what keeps batched flit logs bit-identical).
    ``_row_sim`` / ``_row_local`` translate global -> (sim, local) at
    completion time; ``_g_of_local[sim]`` translates local -> global at
    injection time.

    Parameters
    ----------
    compiled : CompiledNetwork
        The shared compiled topology.
    num_sims : int
        Number of member simulations (the length of the sim axis).
    """

    def __init__(self, compiled: CompiledNetwork, num_sims: int) -> None:
        if num_sims < 1:
            raise ValueError(f"a SimBatch needs at least one sim, got {num_sims}")
        self.compiled = compiled
        self.num_sims = num_sims
        num_stages = compiled.num_stages
        num_arbiters = compiled.num_arbiters
        self.num_stages = num_stages
        flat = num_sims * num_stages
        #: Per-(sim, stage) ring buffers holding *global* flit row ids.
        self.rings = RingQueues(compiled.stage_depth, copies=num_sims)
        #: Flat occupancy column over every (sim, stage) slot.
        self.occupied = np.zeros(flat, dtype=bool)
        #: Free elastic-buffer slots per (sim, stage) slot.
        self.free_slots = np.asarray(
            list(compiled.stage_depth) * num_sims, dtype=np.int32
        )
        #: Cycle in which each (sim, stage) slot last accepted a flit.
        self.accepted_cycle = np.full(flat, -1, dtype=np.int64)
        #: Cycle in which each (sim, arbiter) slot last granted.
        self.granted_cycle = np.full(
            max(num_sims * num_arbiters, 1), -1, dtype=np.int64
        )
        #: Flat-slot lookup columns: stage base and arbiter base per slot.
        self._slot_base = np.repeat(
            np.arange(num_sims, dtype=np.int64) * num_stages, num_stages
        )
        self._slot_arb_base = np.repeat(
            np.arange(num_sims, dtype=np.int64) * num_arbiters, num_stages
        )
        self._bank_stage = np.asarray(compiled.bank_stage_ids, dtype=np.int64)
        #: Per-sim flit tables — row ids therefore match per-sim engine runs.
        self.flits = [FlitTable() for _ in range(num_sims)]
        #: Per-sim completion log (local row ids, in completion order).
        self.completed_log: list[list[int]] = [[] for _ in range(num_sims)]
        self.in_flight = [0] * num_sims
        self.total_in_flight = 0
        self.total_injected = [0] * num_sims
        self.total_completed = [0] * num_sims
        self._retired = [False] * num_sims
        #: Global row state: kernel columns + the numbering translations.
        self._row_move = np.zeros(DEFAULT_CAPACITY, dtype=np.int32)
        self._row_bank = np.zeros(DEFAULT_CAPACITY, dtype=np.int32)
        #: Kernel completion-stamp scratch (per-sim tables hold the real
        #: timestamps, stamped in the completion fan-out of :meth:`advance`).
        self._g_completed = np.zeros(DEFAULT_CAPACITY, dtype=np.int64)
        self._row_capacity = DEFAULT_CAPACITY
        self._num_rows = 0
        self._row_sim: list[int] = []
        self._row_local: list[int] = []
        self._g_of_local: list[list[int]] = [[] for _ in range(num_sims)]
        self._completed_out = np.empty(max(flat, 1), dtype=np.int64)
        #: One concatenated visiting order per pooled cycle covering every
        #: sim (each sim's internal downstream-first order preserved).
        self.batch_orders = tuple(
            np.concatenate(
                [order + sim * num_stages for sim in range(num_sims)]
            )
            if order.size
            else order
            for order in compiled.full_orders
        )

    # ------------------------------------------------------------------ #
    # Per-cycle operation
    # ------------------------------------------------------------------ #

    def _ensure_row_capacity(self, needed: int) -> None:
        """Grow the global per-row kernel columns to ``needed`` rows."""
        capacity = self._row_capacity
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_row_move", "_row_bank", "_g_completed"):
            column = getattr(self, name)
            grown = np.zeros(capacity, dtype=column.dtype)
            grown[: len(column)] = column
            setattr(self, name, grown)
        self._row_capacity = capacity

    def advance(self, cycle: int) -> None:
        """Advance every active simulation by one cycle.

        One occupancy gather over the flat ``(sim, stage)`` column, one
        :func:`~repro.engine.kernel.advance_pass` call, then a small
        Python fan-out over the (few) completions of the cycle translating
        global rows back to their member sims — per-sim completion logs
        and flit-table timestamps stay identical to per-sim runs.
        """
        if not self.total_in_flight:
            return
        compiled = self.compiled
        order = self.batch_orders[cycle % compiled.order_pool_size]
        candidates = order[self.occupied[order]]
        if not candidates.size:
            return
        tables = compiled.move_tables()
        rings = self.rings
        count = advance_pass(
            candidates,
            rings.buffer, rings.start, rings.capacity, rings.head, rings.size,
            self.occupied, self.free_slots, self.accepted_cycle,
            self.granted_cycle, self._slot_base, self._slot_arb_base,
            tables.target, tables.arb_start, tables.arb_end, tables.arbs,
            tables.next, self._row_move, self._row_bank, self._bank_stage,
            self._g_completed, self._completed_out, cycle,
        )
        if not count:
            return
        row_sim = self._row_sim
        row_local = self._row_local
        in_flight = self.in_flight
        total_completed = self.total_completed
        completed_log = self.completed_log
        completed_columns = [table.completed_cycle for table in self.flits]
        for global_row in self._completed_out[:count].tolist():
            sim = row_sim[global_row]
            local = row_local[global_row]
            completed_columns[sim][local] = cycle
            in_flight[sim] -= 1
            total_completed[sim] += 1
            completed_log[sim].append(local)
        self.total_in_flight -= count

    def new_rows(
        self, sim: int, core_ids: list, bank_ids: list, cycle: int
    ) -> range:
        """Bulk-allocate one flit row per (core, bank) pair for ``sim``.

        Local rows are allocated in the member's own flit table exactly as
        the per-sim engine would number them; the matching global rows are
        appended to the kernel columns with their move cursors set to the
        path template's chain head.  Read transactions only (the open-loop
        traffic workloads).
        """
        compiled = self.compiled
        tile_of_bank = compiled.tile_of_bank
        templates = compiled.template_table(True)
        template_row = compiled.template_row
        path_ids = [
            (templates[core] or template_row(core, True))[tile_of_bank[bank]]
            for core, bank in zip(core_ids, bank_ids)
        ]
        rows = self.flits[sim].allocate_batch(
            core_ids, bank_ids, path_ids, False, cycle
        )
        tables = compiled.move_tables()
        count = len(core_ids)
        start = self._num_rows
        self._ensure_row_capacity(start + count)
        self._num_rows = start + count
        self._row_move[start : start + count] = tables.path_head[path_ids]
        self._row_bank[start : start + count] = bank_ids
        self._row_sim.extend([sim] * count)
        self._row_local.extend(rows)
        self._g_of_local[sim].extend(range(start, start + count))
        return rows

    def inject_rows(self, sim: int, source_queues, order, cycle: int) -> int:
        """Inject the head row of each non-empty source queue, in ``order``.

        Source queues hold *local* row ids (they come from
        :meth:`new_rows`); the candidate gather translates them to global
        ids for the kernel while the per-sim flit table is stamped through
        the local ids — the two-numbering contract of
        :func:`~repro.engine.kernel.inject_pass`.  Returns the number of
        injected rows.
        """
        g_of_local = self._g_of_local[sim]
        heads: list[int] = []
        queue_refs = []
        for index in order:
            queue = source_queues[index]
            if queue:
                heads.append(queue[0])
                queue_refs.append(queue)
        if not heads:
            return 0
        local_rows = np.asarray(heads, dtype=np.int64)
        global_rows = np.fromiter(
            (g_of_local[row] for row in heads), dtype=np.int64, count=len(heads)
        )
        flags = np.zeros(len(heads), dtype=bool)
        tables = self.compiled.move_tables()
        rings = self.rings
        flits = self.flits[sim]
        injected, entered, completed = inject_pass(
            global_rows, local_rows, flags,
            rings.buffer, rings.start, rings.capacity, rings.head, rings.size,
            self.occupied, self.free_slots, self.accepted_cycle,
            self.granted_cycle, tables.target, tables.arb_start,
            tables.arb_end, tables.arbs, tables.next, self._row_move,
            self._row_bank, self._bank_stage, flits.injected_cycle,
            flits.completed_cycle, cycle, sim * self.num_stages,
            sim * self.compiled.num_arbiters,
        )
        for queue, accepted in zip(queue_refs, flags.tolist()):
            if accepted:
                queue.popleft()
        injected = int(injected)
        entered = int(entered)
        self.total_injected[sim] += injected
        self.in_flight[sim] += entered
        self.total_in_flight += entered
        self.total_completed[sim] += int(completed)
        return injected

    # ------------------------------------------------------------------ #
    # Member lifecycle and introspection
    # ------------------------------------------------------------------ #

    def retire(self, sim: int) -> None:
        """Freeze ``sim``: its in-flight flits stop advancing (idempotent)."""
        if self._retired[sim]:
            return
        base = sim * self.num_stages
        self.occupied[base : base + self.num_stages] = False
        self.total_in_flight -= self.in_flight[sim]
        self._retired[sim] = True

    def resume(self, sim: int) -> None:
        """Reactivate a retired ``sim`` (restores its occupancy slice)."""
        if not self._retired[sim]:
            return
        base = sim * self.num_stages
        occupied_slice = self.rings.size[base : base + self.num_stages] > 0
        self.occupied[base : base + self.num_stages] = occupied_slice
        self.total_in_flight += self.in_flight[sim]
        self._retired[sim] = False

    def occupancy(self, sim: int) -> int:
        """Number of flit rows buffered in ``sim``'s register stages."""
        base = sim * self.num_stages
        return int(self.rings.size[base : base + self.num_stages].sum())
