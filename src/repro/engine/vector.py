"""The vectorized flit-transport engine and its object-model facade.

:class:`VectorEngine` is the structure-of-arrays re-implementation of
:class:`repro.interconnect.resources.StageNetwork`: flits are integer rows
of a :class:`~repro.engine.soa.FlitTable`, resource paths are the compiled
move chains of a :class:`~repro.engine.compile.CompiledNetwork`, and one
call to :meth:`VectorEngine.advance` performs the same level-ordered passes
as the object engine — downstream levels first, per-cycle arbitration
permutations within each level — over flat arrays instead of object graphs.

Each cycle is two steps:

1. **Occupancy gather (vectorized).**  A NumPy boolean column tracks which
   stages hold at least one flit; one boolean-mask index over the cycle's
   concatenated downstream-first visiting order yields every candidate
   stage of the cycle, in exact arbitration order, without visiting the
   (mostly empty) remainder of the network.
2. **Head-flit moves (per candidate).**  Each candidate stage's head row
   carries its *resolved next hop* — the ``(target stage, arbiter run,
   following hop)`` triple of its move chain, with the bank-stage
   placeholder already substituted — so a hop attempt reads one list cell,
   checks target space and arbiter grants, and either moves the row or
   leaves every piece of state untouched.

The engine is *cycle-exact* with respect to the object engine: for the same
topology and the same injection sequence it produces flit-for-flit identical
injection and completion cycles (enforced by ``tests/test_engine_equivalence``).
The per-hop rules it replays are:

* a register stage accepts at most one flit per cycle and releases at most
  its head flit per cycle, subject to elastic-buffer space;
* an arbitration point grants at most one flit per cycle, and a flit only
  consumes grants when its whole hop succeeds;
* within a level, stages are visited in a pooled random permutation (the
  same :class:`~repro.utils.rotation.PermutationSchedule` stream), which is
  what makes the arbitration decisions reproducible across engines.

What the vector engine deliberately does **not** replicate are the
per-resource utilisation counters (``RegisterStage.accepts`` and friends):
they exist for structural statistics on the object model and would cost two
extra writes per hop here.

:class:`VectorStageNetwork` wraps the engine in the ``StageNetwork`` call
interface (``advance`` / ``try_inject`` / ``drain`` over
:class:`~repro.interconnect.resources.Flit` objects) so the execution-driven
simulator (:class:`repro.core.system.MemPoolSystem`) and every other object
-model caller run on the vector engine unchanged.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.engine.compile import BANK, CompiledNetwork
from repro.engine.soa import FlitTable
from repro.interconnect.resources import Flit
from repro.interconnect.topology import ClusterTopology


class VectorEngine:
    """Cycle engine advancing flit rows through compiled move chains."""

    def __init__(self, compiled: CompiledNetwork, flits: FlitTable | None = None) -> None:
        self.compiled = compiled
        self.flits = flits or FlitTable()
        num_stages = compiled.num_stages
        #: Per-stage FIFO of buffered flit rows.
        self.queues: list[deque[int]] = [deque() for _ in range(num_stages)]
        #: Vectorized occupancy column: True where a stage buffers >= 1 flit.
        self.occupied = np.zeros(num_stages, dtype=bool)
        #: Free elastic-buffer slots per stage (depth minus queue length) —
        #: lets a blocked hop fail on one list read instead of a queue fetch.
        self.free_slots = list(compiled.stage_depth)
        #: Resolved next hop of each stage's *head* row (None when empty).
        #: A head changes only when its stage pops or an empty stage is
        #: pushed, so keeping the head's hop at hand turns every attempt —
        #: and in particular every blocked attempt — into a single list
        #: read instead of a queue peek plus a per-row lookup.
        self._head_move: list[tuple | None] = [None] * num_stages
        #: Cycle in which each stage last accepted a flit (one accept/cycle).
        self.accepted_cycle = [-1] * num_stages
        #: Cycle in which each arbiter last granted (one grant/cycle).
        self.granted_cycle = [-1] * compiled.num_arbiters
        #: Per-row resolved next hop (see the module docstring).
        self._next_move: list[tuple] = []
        self.in_flight = 0
        self.total_injected = 0
        self.total_completed = 0

    # ------------------------------------------------------------------ #
    # Request construction
    # ------------------------------------------------------------------ #

    def _path_template(self, core_id: int, bank_id: int, is_write: bool) -> int:
        """Template id for a core -> bank transaction.

        Resolved through the compiled network's dense per-core template
        rows (:meth:`~repro.engine.compile.CompiledNetwork.template_row`):
        two list reads in steady state, with the rows — bounded at
        ``num_cores * num_tiles`` entries per direction — shared by every
        engine instance on the same compiled network, so large sweeps no
        longer grow a per-instance cache dict in the inject path.
        """
        compiled = self.compiled
        return compiled.template_row(core_id, not is_write)[
            compiled.tile_of_bank[bank_id]
        ]

    def new_flit(self, core_id: int, bank_id: int, is_write: bool, cycle: int) -> int:
        """Allocate a flit row for a core -> bank transaction; return its id."""
        compiled = self.compiled
        path_id = self._path_template(core_id, bank_id, is_write)
        row = self.flits.allocate(core_id, bank_id, path_id, is_write, cycle)
        entry = compiled.path_moves[path_id]
        if entry[0] == BANK:
            entry = (compiled.bank_stage_ids[bank_id], entry[1], entry[2])
        self._next_move.append(entry)
        return row

    # ------------------------------------------------------------------ #
    # Per-cycle operation
    # ------------------------------------------------------------------ #

    def advance(self, cycle: int) -> list[int]:
        """Advance all buffered flits by one cycle; return completed rows.

        The pass structure mirrors the object engine exactly: levels from
        most downstream to most upstream, stages within a level in the
        pooled permutation order for ``cycle``, one head-flit move attempt
        per non-empty stage.  The candidates of the *whole cycle* are
        gathered in one vectorized occupancy index over the concatenated
        downstream-first visiting order: the single gather is exact because
        a stage pops only when visited, and a stage that fills *during* the
        cycle can only be downstream of the filler — i.e. in a level the
        object engine had already finished before the push happened.
        """
        if not self.in_flight:
            return []
        compiled = self.compiled
        queues = self.queues
        occupied = self.occupied
        free_slots = self.free_slots
        accepted = self.accepted_cycle
        granted = self.granted_cycle
        bank_stage = compiled.bank_stage_ids
        flits = self.flits
        bank_of = flits.bank
        next_move = self._next_move
        head_move = self._head_move
        # Safe to hold for the duration of this call: rows are allocated
        # (and columns replaced by growth) only between advance calls.
        completed_column = flits.completed_cycle
        completed: list[int] = []

        order = compiled.full_orders[cycle % compiled.order_pool_size]
        for stage in order[occupied[order]].tolist():
            target, arbiters, following = head_move[stage]
            if target >= 0 and (not free_slots[target] or accepted[target] == cycle):
                continue
            if arbiters:
                blocked = False
                for arbiter in arbiters:
                    if granted[arbiter] == cycle:
                        blocked = True
                        break
                if blocked:
                    continue
                for arbiter in arbiters:
                    granted[arbiter] = cycle
            queue = queues[stage]
            row = queue.popleft()
            free_slots[stage] += 1
            if queue:
                head_move[stage] = next_move[queue[0]]
            else:
                occupied[stage] = False
            if target >= 0:
                if following[0] == BANK:
                    following = (bank_stage[bank_of[row]], following[1], following[2])
                next_move[row] = following
                target_queue = queues[target]
                if not target_queue:
                    occupied[target] = True
                    head_move[target] = following
                target_queue.append(row)
                free_slots[target] -= 1
                accepted[target] = cycle
            else:
                completed_column[row] = cycle
                self.in_flight -= 1
                self.total_completed += 1
                completed.append(row)
        return completed

    def try_inject(self, row: int, cycle: int) -> bool:
        """Try to move ``row`` from its core into the first register stage.

        Mirrors :meth:`StageNetwork.try_inject`: called after
        :meth:`advance` so a slot freed this cycle can receive the new flit,
        while the one-accept-per-cycle rule keeps it from moving twice.
        """
        if self.flits.injected_cycle[row] != -1:
            raise ValueError("flit was already injected")
        return self._inject(row, cycle)

    def _inject(self, row: int, cycle: int) -> bool:
        """Injection hop shared by :meth:`try_inject` and :meth:`inject_queues`."""
        flits = self.flits
        compiled = self.compiled
        target, arbiters, following = self._next_move[row]
        if target >= 0 and (
            not self.free_slots[target] or self.accepted_cycle[target] == cycle
        ):
            return False
        if arbiters:
            granted = self.granted_cycle
            for arbiter in arbiters:
                if granted[arbiter] == cycle:
                    return False
            for arbiter in arbiters:
                granted[arbiter] = cycle
        flits.injected_cycle[row] = cycle
        self.total_injected += 1
        if target >= 0:
            if following[0] == BANK:
                following = (
                    compiled.bank_stage_ids[flits.bank[row]],
                    following[1],
                    following[2],
                )
            self._next_move[row] = following
            queue = self.queues[target]
            if not queue:
                self.occupied[target] = True
                self._head_move[target] = following
            queue.append(row)
            self.free_slots[target] -= 1
            self.accepted_cycle[target] = cycle
            self.in_flight += 1
        else:
            # Degenerate zero-register path (not used by real topologies,
            # but keeps counter semantics aligned with the object engine).
            flits.completed_cycle[row] = cycle
            self.total_completed += 1
        return True

    def inject_new(
        self, core_id: int, bank_id: int, is_write: bool,
        created_cycle: int, cycle: int,
    ) -> int | None:
        """Atomically allocate-and-inject a new flit row.

        The check-then-allocate order matters: a failed injection allocates
        nothing, so callers that retry every cycle (the execution-driven
        core models, via the object facade) do not leak one row per failed
        attempt.  Returns the injected row id, or ``None`` when the first
        hop is blocked this cycle.
        """
        compiled = self.compiled
        path_id = self._path_template(core_id, bank_id, is_write)
        target, arbiters, following = compiled.path_moves[path_id]
        if target == BANK:
            target = compiled.bank_stage_ids[bank_id]
        if target >= 0 and (
            not self.free_slots[target] or self.accepted_cycle[target] == cycle
        ):
            return None
        granted = self.granted_cycle
        if arbiters:
            for arbiter in arbiters:
                if granted[arbiter] == cycle:
                    return None
            for arbiter in arbiters:
                granted[arbiter] = cycle
        flits = self.flits
        row = flits.allocate(core_id, bank_id, path_id, is_write, created_cycle)
        flits.injected_cycle[row] = cycle
        self.total_injected += 1
        if target >= 0:
            if following[0] == BANK:
                following = (
                    compiled.bank_stage_ids[bank_id], following[1], following[2]
                )
            self._next_move.append(following)
            queue = self.queues[target]
            if not queue:
                self.occupied[target] = True
                self._head_move[target] = following
            queue.append(row)
            self.free_slots[target] -= 1
            self.accepted_cycle[target] = cycle
            self.in_flight += 1
        else:
            # Degenerate zero-register path: completes at injection.
            self._next_move.append(following)
            flits.completed_cycle[row] = cycle
            self.total_completed += 1
        return row

    def inject_queues(self, source_queues, order, cycle: int) -> int:
        """Inject the head row of each source queue, in ``order``.

        The batched equivalent of the per-core injection loop of the
        open-loop traffic simulation: ``order`` is the cycle's injection
        permutation over source-queue indices, each non-empty queue's head
        row attempts the injection hop, and accepted heads are popped.
        Returns the number of injected rows.
        """
        inject = self._inject
        injected = 0
        for index in order:
            queue = source_queues[index]
            if queue and inject(queue[0], cycle):
                queue.popleft()
                injected += 1
        return injected

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def occupancy(self) -> int:
        """Total number of flit rows buffered in register stages."""
        return sum(len(queue) for queue in self.queues)

    def drain(self, max_cycles: int, start_cycle: int) -> int:
        """Advance until the network is empty; return the cycle reached."""
        cycle = start_cycle
        while self.in_flight > 0:
            if cycle - start_cycle > max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight} flits in flight)"
                )
            self.advance(cycle)
            cycle += 1
        return cycle


class VectorStageNetwork:
    """Drop-in ``StageNetwork`` facade running on the vector engine.

    Object-model callers keep building :class:`Flit` instances (the
    execution-driven core models hang response tags off them); this facade
    maps each injected flit onto an engine row, lets the SoA engine do the
    timing, and mirrors the lifecycle timestamps back onto the objects the
    moment they matter (injection and completion).
    """

    def __init__(
        self,
        topology: ClusterTopology,
        compiled: CompiledNetwork | None = None,
        engine_cls: type = VectorEngine,
    ) -> None:
        self.compiled = compiled or CompiledNetwork(topology)
        #: The SoA engine behind the facade — :class:`VectorEngine` by
        #: default, :class:`repro.engine.compiled.CompiledEngine` when the
        #: cluster was built with ``engine="compiled"``.  Both expose the
        #: same per-row API, so the facade is engine-agnostic.
        self.engine = engine_cls(self.compiled)
        #: Rows of in-flight object flits, keyed by row id.
        self._flit_of_row: dict[int, Flit] = {}

    # -- StageNetwork interface ------------------------------------------ #

    @property
    def in_flight(self) -> int:
        """Number of flits currently inside the network."""
        return self.engine.in_flight

    @property
    def total_injected(self) -> int:
        """Total flits accepted into the network so far."""
        return self.engine.total_injected

    @property
    def total_completed(self) -> int:
        """Total flits that finished their path so far."""
        return self.engine.total_completed

    def advance(self, cycle: int) -> list[Flit]:
        """Advance one cycle; return the completed :class:`Flit` objects."""
        completed = []
        path_of = self.engine.flits.path_id
        resource_len = self.compiled.path_resource_len
        for row in self.engine.advance(cycle):
            flit = self._flit_of_row.pop(row)
            flit.completed_cycle = cycle
            flit.position = resource_len[path_of[row]]
            completed.append(flit)
        return completed

    def try_inject(self, flit: Flit, cycle: int) -> bool:
        """Try to inject an object flit; mirrors ``StageNetwork.try_inject``.

        A failed attempt allocates nothing (see
        :meth:`VectorEngine.inject_new`), so core models may retry with the
        same — or a different — flit object every cycle.
        """
        if flit.position != -1:
            raise ValueError("flit was already injected")
        row = self.engine.inject_new(
            flit.core_id, flit.bank_id, flit.is_write, flit.created_cycle, cycle
        )
        if row is None:
            return False
        flit.injected_cycle = cycle
        path_id = self.engine.flits.path_id[row]
        if self.compiled.path_stage_seq[path_id]:
            flit.position = self.compiled.path_first_stage_pos[path_id]
            self._flit_of_row[row] = flit
        else:
            flit.position = self.compiled.path_resource_len[path_id]
            flit.completed_cycle = cycle
        return True

    def occupancy(self) -> int:
        """Total number of flits buffered in register stages."""
        return self.engine.occupancy()

    def drain(self, max_cycles: int, start_cycle: int) -> int:
        """Advance until the network is empty; return the cycle reached."""
        cycle = start_cycle
        while self.in_flight > 0:
            if cycle - start_cycle > max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight} flits in flight)"
                )
            self.advance(cycle)
            cycle += 1
        return cycle
