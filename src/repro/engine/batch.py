"""SimBatch: many independent simulations in one structure-of-arrays state.

:class:`repro.engine.vector.VectorEngine` made a *single* simulation fast;
what dominates figure regeneration after that is Python per-point overhead —
every sweep point builds its own topology, compiles its own path tables,
allocates its flits one method call at a time and pays its own per-cycle
loop.  :class:`SimBatch` amortises all of that by advancing ``S``
independent simulations (differing in seed, injected load, destination
pattern, injection process, and per-sim measurement windows) inside one
flattened state with a leading sim axis.

Layout: the sim axis is *flattened* into the stage and arbiter dimensions.
A batch over a compiled network with ``N`` register stages and ``A``
arbitration points keeps one state slot per ``(sim, stage)`` pair at flat
index ``sim * N + stage`` (and ``sim * A + arbiter`` for grants):

========================  ===========================  =======================
column                    shape / type                 role
========================  ===========================  =======================
``occupied``              bool ndarray, ``S * N``      stage buffers >= 1 flit
``free_slots``            int list, ``S * N``          elastic-buffer slack
``accepted_cycle``        int list, ``S * N``          one-accept/cycle rule
``granted_cycle``         int list, ``S * A``          one-grant/cycle rule
``queues``                deque list, ``S * N``        per-stage flit FIFOs
``_head_move``            tuple list, ``S * N``        head's resolved next hop
``batch_orders``          intp ndarray pool, ``S*N``   per-cycle visiting order
``flits`` / ``_next_move``  per-sim ``FlitTable``/list  sim-local row state
========================  ===========================  =======================

Because the ``S`` simulations are *disjoint* — no flit ever crosses a sim
boundary — the concatenated per-cycle visiting order preserves each sim's
internal arbitration order exactly, and one occupancy gather over the
``S * N`` flat column yields every candidate stage of every simulation of
the cycle.  The batch is therefore **flit-for-flit identical** to ``S``
sequential :class:`~repro.engine.vector.VectorEngine` runs (pinned by
``tests/test_engine_batch.py``) while paying the per-point and per-cycle
overhead — topology build, path compilation, template resolution, flit
allocation, occupancy gathers, measurement bookkeeping — once per batch
or cycle instead of once per simulation.

All simulations of a batch share one
:class:`~repro.engine.compile.CompiledNetwork` — the compatibility
contract: identical topology (and therefore identical stage depths, levels
and arbitration permutation pools).  Everything else is per-sim: each
member keeps its own :class:`~repro.engine.soa.FlitTable` (row ids match
the per-sim engine's), its own move-chain cursors and its own workload
RNG substreams (the splitmix64 contract of :mod:`repro.workloads.rng` is
untouched — components are built per simulation exactly as
:class:`~repro.traffic.simulation.TrafficSimulation` builds them).

:class:`TrafficBatch` is the open-loop measurement driver on top: the
batched sibling of :func:`repro.engine.traffic.run_vector_traffic`, running
the warm-up/measure loop of every member simulation in one pass and
assembling one :class:`~repro.traffic.simulation.TrafficResult` per member.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.engine.compile import BANK, CompiledNetwork
from repro.engine.soa import FlitTable
from repro.utils.stats import Histogram, OnlineStats
from repro.workloads.base import DestinationPattern

#: The inherited scalar-loop ``destinations`` — patterns still on it are
#: driven through per-request ``destination`` calls (identical draws, no
#: iterator machinery); table-backed patterns use their own array gather.
_BASE_DESTINATIONS = DestinationPattern.destinations


class SimBatch:
    """Cycle engine advancing ``num_sims`` disjoint simulations in lockstep.

    Parameters
    ----------
    compiled : CompiledNetwork
        The shared compiled topology.  Every member simulation replays the
        same arbitration permutation pools, which is what makes batched
        decisions identical to per-sim
        :class:`~repro.engine.vector.VectorEngine` decisions.
    num_sims : int
        Number of member simulations (the length of the sim axis).
    """

    def __init__(self, compiled: CompiledNetwork, num_sims: int) -> None:
        if num_sims < 1:
            raise ValueError(f"a SimBatch needs at least one sim, got {num_sims}")
        self.compiled = compiled
        self.num_sims = num_sims
        num_stages = compiled.num_stages
        num_arbiters = compiled.num_arbiters
        self.num_stages = num_stages
        flat = num_sims * num_stages
        #: Per-(sim, stage) FIFOs of buffered flit rows (sim-local row ids).
        self.queues: list[deque[int]] = [deque() for _ in range(flat)]
        #: Flat occupancy column over every (sim, stage) slot.
        self.occupied = np.zeros(flat, dtype=bool)
        #: Free elastic-buffer slots per (sim, stage) slot.
        self.free_slots = list(compiled.stage_depth) * num_sims
        #: Cycle in which each (sim, stage) slot last accepted a flit.
        self.accepted_cycle = [-1] * flat
        #: Cycle in which each (sim, arbiter) slot last granted.
        self.granted_cycle = [-1] * (num_sims * num_arbiters)
        #: Resolved next hop of each slot's head row (stage and arbiter ids
        #: are *relative* to the shared compiled network; the hop loops add
        #: the slot's sim bases from the lookup columns below).
        self._head_move: list[tuple | None] = [None] * flat
        #: Per-sim flit tables — row ids therefore match per-sim engine runs.
        self.flits = [FlitTable() for _ in range(num_sims)]
        #: Per-sim resolved next hop of every row (relative ids).
        self._next_move: list[list[tuple]] = [[] for _ in range(num_sims)]
        #: Per-sim completion log: rows in completion order, across the
        #: batch's whole lifetime (measurement code slices per window).
        self.completed_log: list[list[int]] = [[] for _ in range(num_sims)]
        self.in_flight = [0] * num_sims
        self.total_in_flight = 0
        self.total_injected = [0] * num_sims
        self.total_completed = [0] * num_sims
        self._retired = [False] * num_sims
        #: Flat-slot lookup columns: owning sim, stage base, arbiter base.
        self._slot_sim = [sim for sim in range(num_sims) for _ in range(num_stages)]
        self._slot_base = [
            sim * num_stages for sim in range(num_sims) for _ in range(num_stages)
        ]
        self._slot_arb_base = [
            sim * num_arbiters for sim in range(num_sims) for _ in range(num_stages)
        ]
        #: One concatenated visiting order per pooled cycle covering every
        #: sim — each sim's internal (downstream-first, permuted) order is
        #: preserved, so arbitration replays the per-sim engine exactly.
        self.batch_orders = tuple(
            np.concatenate(
                [order + sim * num_stages for sim in range(num_sims)]
            )
            if order.size
            else order
            for order in compiled.full_orders
        )

    # ------------------------------------------------------------------ #
    # Per-cycle operation
    # ------------------------------------------------------------------ #

    def advance(self, cycle: int) -> None:
        """Advance every active simulation by one cycle.

        One occupancy gather over the flat ``(sim, stage)`` column yields
        the cycle's candidates of *all* simulations in visiting order; the
        per-candidate hop rules are those of
        :meth:`repro.engine.vector.VectorEngine.advance`, with targets and
        arbiter grants offset into the candidate's sim slice.  Completions
        are appended to :attr:`completed_log` (per sim, in completion
        order) and stamped into the sim's flit table.
        """
        total_in_flight = self.total_in_flight
        if not total_in_flight:
            return
        compiled = self.compiled
        queues = self.queues
        occupied = self.occupied
        free_slots = self.free_slots
        accepted = self.accepted_cycle
        granted = self.granted_cycle
        bank_stage = compiled.bank_stage_ids
        slot_sim = self._slot_sim
        slot_base = self._slot_base
        slot_arb_base = self._slot_arb_base
        next_move = self._next_move
        head_move = self._head_move
        in_flight = self.in_flight
        total_completed = self.total_completed
        completed_log = self.completed_log
        # Safe to hold for the duration of this call: rows are allocated
        # (and columns replaced by growth) only between advance calls.
        completed_columns = [table.completed_cycle for table in self.flits]
        bank_columns = [table.bank for table in self.flits]

        order = self.batch_orders[cycle % compiled.order_pool_size]
        for slot in order[occupied[order]].tolist():
            target, arbiters, following = head_move[slot]
            base = slot_base[slot]
            if target >= 0:
                flat_target = base + target
                if not free_slots[flat_target] or accepted[flat_target] == cycle:
                    continue
            if arbiters:
                arb_base = slot_arb_base[slot]
                blocked = False
                for arbiter in arbiters:
                    if granted[arb_base + arbiter] == cycle:
                        blocked = True
                        break
                if blocked:
                    continue
                for arbiter in arbiters:
                    granted[arb_base + arbiter] = cycle
            queue = queues[slot]
            row = queue.popleft()
            free_slots[slot] += 1
            sim = slot_sim[slot]
            if queue:
                head_move[slot] = next_move[sim][queue[0]]
            else:
                occupied[slot] = False
            if target >= 0:
                if following[0] == BANK:
                    following = (
                        bank_stage[bank_columns[sim][row]], following[1], following[2]
                    )
                next_move[sim][row] = following
                target_queue = queues[flat_target]
                if not target_queue:
                    occupied[flat_target] = True
                    head_move[flat_target] = following
                target_queue.append(row)
                free_slots[flat_target] -= 1
                accepted[flat_target] = cycle
            else:
                completed_columns[sim][row] = cycle
                in_flight[sim] -= 1
                total_in_flight -= 1
                total_completed[sim] += 1
                completed_log[sim].append(row)
        self.total_in_flight = total_in_flight

    def new_rows(
        self, sim: int, core_ids: list, bank_ids: list, cycle: int
    ) -> range:
        """Bulk-allocate one flit row per (core, bank) pair for ``sim``.

        Rows are numbered exactly as the per-sim engine would number them
        (ascending, in generation order), their path templates resolved
        through the shared compiled network's eager
        :meth:`~repro.engine.compile.CompiledNetwork.template_table`, and
        their move-chain cursors initialised with the bank placeholder of
        the first hop already substituted.  Read transactions only (the
        open-loop traffic workloads) — the execution-driven simulator
        stays on the per-sim engines.
        """
        compiled = self.compiled
        tile_of_bank = compiled.tile_of_bank
        templates = compiled.template_table(True)
        template_row = compiled.template_row
        path_ids = [
            (templates[core] or template_row(core, True))[tile_of_bank[bank]]
            for core, bank in zip(core_ids, bank_ids)
        ]
        rows = self.flits[sim].allocate_batch(
            core_ids, bank_ids, path_ids, False, cycle
        )
        moves = compiled.path_moves
        bank_stage = compiled.bank_stage_ids
        self._next_move[sim].extend(
            (bank_stage[bank], entry[1], entry[2]) if entry[0] == BANK else entry
            for entry, bank in zip(map(moves.__getitem__, path_ids), bank_ids)
        )
        return rows

    def inject_rows(self, sim: int, source_queues, order, cycle: int) -> int:
        """Inject the head row of each non-empty source queue, in ``order``.

        The batched sibling of
        :meth:`repro.engine.vector.VectorEngine.inject_queues`: one
        injection-hop attempt per non-empty source queue, in the cycle's
        injection permutation, against the sim's slice of the flat state.
        Returns the number of injected rows.  (Callers skip the call
        entirely when no rows are queued — the empty walk would change no
        state.)
        """
        base = sim * self.num_stages
        arb_base = sim * self.compiled.num_arbiters
        next_move = self._next_move[sim]
        flits = self.flits[sim]
        injected_column = flits.injected_cycle
        bank_column = flits.bank
        bank_stage = self.compiled.bank_stage_ids
        queues = self.queues
        occupied = self.occupied
        free_slots = self.free_slots
        accepted = self.accepted_cycle
        granted = self.granted_cycle
        injected = 0
        sim_in_flight = 0
        for index in order:
            source = source_queues[index]
            if not source:
                continue
            row = source[0]
            target, arbiters, following = next_move[row]
            if target >= 0:
                flat_target = base + target
                if not free_slots[flat_target] or accepted[flat_target] == cycle:
                    continue
            if arbiters:
                blocked = False
                for arbiter in arbiters:
                    if granted[arb_base + arbiter] == cycle:
                        blocked = True
                        break
                if blocked:
                    continue
                for arbiter in arbiters:
                    granted[arb_base + arbiter] = cycle
            source.popleft()
            injected_column[row] = cycle
            injected += 1
            if target >= 0:
                if following[0] == BANK:
                    following = (
                        bank_stage[bank_column[row]], following[1], following[2]
                    )
                next_move[row] = following
                queue = queues[flat_target]
                if not queue:
                    occupied[flat_target] = True
                    self._head_move[flat_target] = following
                queue.append(row)
                free_slots[flat_target] -= 1
                accepted[flat_target] = cycle
                sim_in_flight += 1
            else:
                # Degenerate zero-register path: completes at injection
                # (kept for counter parity with the per-sim engines).  Not
                # logged: the vector traffic loop surfaces only completions
                # returned by advance(), never injection-time ones.
                flits.completed_cycle[row] = cycle
                self.total_completed[sim] += 1
        self.total_injected[sim] += injected
        self.in_flight[sim] += sim_in_flight
        self.total_in_flight += sim_in_flight
        return injected

    # ------------------------------------------------------------------ #
    # Member lifecycle and introspection
    # ------------------------------------------------------------------ #

    def retire(self, sim: int) -> None:
        """Freeze ``sim``: its in-flight flits stop advancing.

        Used when member simulations have different horizons (per-sim
        warm-up/measure windows): a member past its horizon must not keep
        completing flits the equivalent per-sim run never simulated.
        Idempotent; :meth:`resume` reverses it.
        """
        if self._retired[sim]:
            return
        base = sim * self.num_stages
        self.occupied[base : base + self.num_stages] = False
        self.total_in_flight -= self.in_flight[sim]
        self._retired[sim] = True

    def resume(self, sim: int) -> None:
        """Reactivate a retired ``sim`` (restores its occupancy slice)."""
        if not self._retired[sim]:
            return
        base = sim * self.num_stages
        queues = self.queues
        occupied = self.occupied
        for stage in range(self.num_stages):
            occupied[base + stage] = bool(queues[base + stage])
        self.total_in_flight += self.in_flight[sim]
        self._retired[sim] = False

    def occupancy(self, sim: int) -> int:
        """Number of flit rows buffered in ``sim``'s register stages."""
        base = sim * self.num_stages
        return sum(
            len(self.queues[base + stage]) for stage in range(self.num_stages)
        )


class TrafficBatch:
    """Open-loop traffic measurement over a batch of simulations.

    The batched sibling of :func:`repro.engine.traffic.run_vector_traffic`:
    every member is a fully built
    :class:`~repro.traffic.simulation.TrafficSimulation` (its own injector,
    pattern, injection schedule and source queues — the same construction
    path as a per-sim run, so every RNG substream is identical), and one
    :meth:`run` call drives all members through the shared
    :class:`SimBatch` in a single cycle loop.

    Members must be topology-compatible: built on clusters whose
    :class:`~repro.core.config.MemPoolConfig` compare equal.  They may
    differ in seed, injected load, pattern, injector — and, per
    :meth:`run`, in measurement windows.

    Parameters
    ----------
    simulations : sequence of TrafficSimulation
        The member simulations.  Their clusters must share one
        configuration; the first member's topology is compiled (or the
        cluster's cached compilation reused) for the whole batch.
    compiled : CompiledNetwork, optional
        Pre-compiled shared network (reused when given, e.g. by the
        sweep-level :class:`repro.experiments.batch.BatchRunner`).
    """

    @classmethod
    def of_seeds(
        cls,
        cluster,
        injection_rate: float,
        seeds,
        pattern=None,
        injector=None,
        pattern_params: dict | None = None,
        injector_params: dict | None = None,
    ) -> "TrafficBatch":
        """Batch one workload configuration across many seeds.

        The batch-of-seeds constructor behind the statistical result
        validator (:mod:`repro.validation`): ``len(seeds)`` member
        simulations differing *only* in their experiment seed share one
        compiled network and one cycle loop, so attaching per-seed
        confidence intervals to a metric costs barely more than a single
        run.  Each member is built exactly as
        :class:`~repro.traffic.simulation.TrafficSimulation` builds a
        per-sim run (same RNG substream contract), so per-seed results
        equal the per-sim engines' bit for bit.

        Parameters
        ----------
        cluster : MemPoolCluster
            Shared cluster (must be a SoA engine, e.g. ``engine="batch"``).
        injection_rate : float
            Offered load of every member.
        seeds : iterable of int
            One member simulation per seed, in order.
        pattern, injector, pattern_params, injector_params
            Workload selection forwarded to every member (registry names
            with optional parameters).
        """
        from repro.traffic.simulation import TrafficSimulation

        seeds = list(seeds)
        if not seeds:
            raise ValueError("of_seeds needs at least one seed")
        return cls(
            [
                TrafficSimulation(
                    cluster,
                    injection_rate,
                    pattern=pattern,
                    seed=seed,
                    injector=injector,
                    pattern_params=dict(pattern_params) if pattern_params else None,
                    injector_params=dict(injector_params) if injector_params else None,
                )
                for seed in seeds
            ]
        )

    def __init__(self, simulations, compiled: CompiledNetwork | None = None) -> None:
        simulations = list(simulations)
        if not simulations:
            raise ValueError("a TrafficBatch needs at least one simulation")
        config = simulations[0].cluster.config
        for simulation in simulations:
            if simulation._row_queues is None:
                raise ValueError(
                    "TrafficBatch members must be built on a SoA-engine "
                    "cluster (engine='batch', 'vector' or 'compiled'); got "
                    f"a {simulation.cluster.engine_kind!r}-engine simulation"
                )
            if simulation.cluster.config != config:
                raise ValueError(
                    "TrafficBatch members must share one cluster configuration; "
                    f"got {simulation.cluster.config.describe()!r} alongside "
                    f"{config.describe()!r}"
                )
        self.simulations = simulations
        self.compiled = compiled or simulations[0].cluster.compiled_network()
        self.config = config
        #: Tile of each core / bank as NumPy columns (locality accounting).
        self._core_tile = np.asarray(
            [config.tile_of_core(core) for core in range(config.num_cores)],
            dtype=np.int64,
        )
        self._bank_tile = np.asarray(self.compiled.tile_of_bank, dtype=np.int64)
        # A batch of compiled-engine members runs on the kernel-backed
        # batched engine; everything else (batch/vector members) stays on
        # the deque-based SimBatch.  Both are flit-for-flit identical.
        if simulations[0].cluster.engine_kind == "compiled":
            from repro.engine.compiled import CompiledSimBatch

            self.engine = CompiledSimBatch(self.compiled, len(simulations))
        else:
            self.engine = SimBatch(self.compiled, len(simulations))

    @staticmethod
    def _per_sim(value, count: int, name: str) -> list:
        """Broadcast a scalar window knob to ``count`` members, or validate."""
        if isinstance(value, (list, tuple)):
            if len(value) != count:
                raise ValueError(
                    f"{name} must have one entry per member simulation "
                    f"({count}), got {len(value)}"
                )
            return list(value)
        return [value] * count

    def run(
        self,
        warmup_cycles,
        measure_cycles,
        record_flits: bool = False,
    ):
        """Run one measurement window on every member; return their results.

        Parameters
        ----------
        warmup_cycles, measure_cycles : int or sequence of int
            Warm-up and measurement windows — scalars are shared by every
            member, sequences give each member its own horizon (members
            past their horizon are retired and stop advancing, exactly as
            their per-sim run would have ended).
        record_flits : bool
            Attach per-flit completion logs to the results (used by the
            cross-engine golden tests).

        Returns
        -------
        list of repro.traffic.simulation.TrafficResult
            One result per member, field-for-field identical to what the
            member's own
            :meth:`~repro.traffic.simulation.TrafficSimulation.run` would
            have returned on the ``vector`` (or ``legacy``) engine.
        """
        engine = self.engine
        simulations = self.simulations
        count = len(simulations)
        warmups = self._per_sim(warmup_cycles, count, "warmup_cycles")
        measures = self._per_sim(measure_cycles, count, "measure_cycles")
        horizons = [w + m for w, m in zip(warmups, measures)]
        total_cycles = max(horizons)

        for sim_index in range(count):
            engine.resume(sim_index)
        row_start = [table.count for table in engine.flits]
        log_start = [len(log) for log in engine.completed_log]
        generated_in_window = [0] * count
        injected_in_window = [0] * count
        # Source-queue backlog per sim (persistent queues may carry backlog
        # from an earlier window) — lets idle cycles skip the whole
        # injection walk.
        pending = [
            sum(len(queue) for queue in simulation._row_queues)
            for simulation in simulations
        ]

        injectors = [simulation.injector for simulation in simulations]
        patterns = [simulation.pattern for simulation in simulations]
        scalar_pattern = [
            type(pattern).destinations is _BASE_DESTINATIONS
            for pattern in patterns
        ]
        schedules = [simulation._injection_schedule for simulation in simulations]
        source_queues = [simulation._row_queues for simulation in simulations]
        new_rows = engine.new_rows
        inject_rows = engine.inject_rows
        advance = engine.advance
        active = list(range(count))

        for cycle in range(total_cycles):
            advance(cycle)
            for sim_index in active:
                batch = injectors[sim_index].arrivals_batch(cycle)
                if batch:
                    sources: list[int] = []
                    extend = sources.extend
                    for core_id, arrivals in batch:
                        extend([core_id] * arrivals)
                    pattern = patterns[sim_index]
                    if scalar_pattern[sim_index]:
                        destination = pattern.destination
                        destinations = [destination(core) for core in sources]
                    else:
                        destinations = pattern.destinations(sources).tolist()
                    rows = new_rows(sim_index, sources, destinations, cycle)
                    queues = source_queues[sim_index]
                    for core_id, row in zip(sources, rows):
                        queues[core_id].append(row)
                    generated = len(sources)
                    pending[sim_index] += generated
                    if cycle >= warmups[sim_index]:
                        generated_in_window[sim_index] += generated
                if pending[sim_index]:
                    injected = inject_rows(
                        sim_index,
                        source_queues[sim_index],
                        schedules[sim_index].order(cycle),
                        cycle,
                    )
                    pending[sim_index] -= injected
                    if cycle >= warmups[sim_index]:
                        injected_in_window[sim_index] += injected
            if cycle + 1 in horizons and cycle + 1 < total_cycles:
                for sim_index in list(active):
                    if horizons[sim_index] == cycle + 1:
                        engine.retire(sim_index)
                        active.remove(sim_index)

        return [
            self._assemble(
                sim_index,
                warmups[sim_index],
                measures[sim_index],
                row_start[sim_index],
                log_start[sim_index],
                generated_in_window[sim_index],
                injected_in_window[sim_index],
                record_flits,
            )
            for sim_index in range(count)
        ]

    def _assemble(
        self,
        sim_index: int,
        warmup: int,
        measure: int,
        row_start: int,
        log_start: int,
        generated_in_window: int,
        injected_in_window: int,
        record_flits: bool,
    ):
        """Fold one member's batched run into its ``TrafficResult``.

        Latency statistics are replayed through the same accumulators the
        per-sim loop feeds (:class:`~repro.utils.stats.OnlineStats` is a
        running Welford mean, so sample *order* matters for bitwise
        equality) — but from the completion log after the run, over exact
        integer latencies gathered in one vectorized pass, instead of two
        method calls inside the hot cycle loop.
        """
        from repro.traffic.simulation import TrafficResult

        simulation = self.simulations[sim_index]
        engine = self.engine
        table = engine.flits[sim_index]
        table.sync()

        # Locality accounting over this window's generated rows (vectorized).
        generated_rows = slice(row_start, table.count)
        simulation._total_requests += table.count - row_start
        simulation._local_requests += int(
            np.count_nonzero(
                self._bank_tile[table.bank_id[generated_rows]]
                == self._core_tile[table.core_id[generated_rows]]
            )
        )
        local_fraction = (
            simulation._local_requests / simulation._total_requests
            if simulation._total_requests
            else 0.0
        )

        latency = OnlineStats()
        histogram = Histogram()
        log_slice = engine.completed_log[sim_index][log_start:]
        completed_in_window = 0
        if log_slice:
            rows = np.fromiter(log_slice, dtype=np.int64, count=len(log_slice))
            completed = table.completed_cycle[rows]
            in_window = completed >= warmup
            completed_in_window = int(np.count_nonzero(in_window))
            values = (completed - table.created_cycle[rows]).tolist()
            for value, measuring in zip(values, in_window.tolist()):
                if measuring:
                    latency.add(value)
                    histogram.add(value)

        return TrafficResult(
            topology=self.config.topology,
            injected_load=simulation.injection_rate,
            measured_cycles=measure,
            num_cores=self.config.num_cores,
            generated_requests=generated_in_window,
            injected_requests=injected_in_window,
            completed_requests=completed_in_window,
            average_latency=latency.mean,
            p95_latency=histogram.percentile(0.95),
            max_latency=int(latency.maximum) if latency.count else 0,
            local_fraction=local_fraction,
            flit_log=(
                [table.row_record(row) for row in log_slice]
                if record_flits
                else None
            ),
        )
