"""Compilation of a :class:`ClusterTopology` into flat integer tables.

The object-model timing core (:mod:`repro.interconnect.resources`) walks
graphs of :class:`RegisterStage` / :class:`ArbitrationPoint` instances one
Python object at a time.  The vectorized engine instead operates on dense
integer state, and this module is the bridge: it numbers every resource of a
built topology once and turns core-to-bank paths into *path tables* — flat
tuples of stage and arbiter indices — that the transport passes of
:class:`repro.engine.vector.VectorEngine` consume without ever touching a
resource object again.

Every path of every topology has the shape ``request resources + bank stage
(+ response resources)``, where the request/response halves depend only on
the issuing core and the *tile* of the destination bank.  The compiler
exploits that: it compiles one **path template** per ``(core, destination
tile, direction)`` triple — about ``num_cores * num_tiles * 2`` templates,
versus ``num_cores * num_banks * 2`` concrete paths — and marks the bank
stage with the :data:`BANK` placeholder.  The engine resolves the
placeholder against the flit's destination bank at move time, so no
per-bank instantiation ever happens.

A compiled template is a *move chain*: a singly linked chain of
``(target, arbiters, next)`` triples, one per hop.  ``target`` is the next
register stage to enter (:data:`BANK`, a stage id, or :data:`COMPLETE`),
``arbiters`` the run of combinational arbitration points crossed on the
way, and ``next`` the following hop's triple (``None`` past the end).
``path_moves[p]`` is the chain head — the injection hop from the core.
The engine keeps each flit's *current* triple at hand, so advancing a flit
never indexes back into per-path tables: one list read yields everything
the hop needs, and the chain link yields the next hop on success.

The compiler also checks the *level monotonicity* invariant the vectorized
level-ordered passes rely on: along every path, register-stage pipeline
levels strictly increase.  Every topology of the paper satisfies this
(requests flow master -> boundary -> bank, responses bank -> boundary ->
master), and every family in :mod:`repro.topologies` is constructed to
satisfy it too (mesh/torus rings allocate one level per hop position, with
dateline virtual channels breaking the torus wrap cycle); a topology that
violated it could change arbitration behaviour under the vector engine, so
compilation fails loudly instead.
"""

from __future__ import annotations

import numpy as np

from repro.interconnect.resources import (
    RegisterStage,
    Resource,
    StageNetwork,
)
from repro.interconnect.topology import ClusterTopology
from repro.utils.rotation import PermutationSchedule

#: Move-table target marking the end of the path (the flit completes).
COMPLETE = -1
#: Move-table target marking the destination bank's stage, resolved against
#: the flit's ``bank_id`` at move time.
BANK = -2


class EngineCompileError(ValueError):
    """Raised when a topology cannot be compiled for the vector engine."""


class MoveTables:
    """Move chains flattened into parallel ndarrays for the compiled kernel.

    The array mirror of :attr:`CompiledNetwork.path_moves`: each linked
    ``(target, arbiters, next)`` chain becomes a contiguous run of *move
    ids*, and a move id indexes four parallel columns —

    ==============  =======  ==============================================
    column          dtype    meaning
    ==============  =======  ==============================================
    ``target``      int32    next stage id, :data:`BANK` or :data:`COMPLETE`
    ``arb_start``   int32    first index of the hop's run inside ``arbs``
    ``arb_end``     int32    one past the last index of that run
    ``next``        int32    move id of the following hop (-1 past the end)
    ==============  =======  ==============================================

    plus the flat ``arbs`` (int32) array holding every hop's arbiter run
    and ``path_head`` (int32) mapping a path-template id to its first move.
    :data:`BANK` targets stay unresolved in the table; the kernels of
    :mod:`repro.engine.kernel` resolve them against the flit's destination
    bank on every attempt, which is equivalent to the vector engine's
    resolve-once-per-hop because a hop's target never changes between
    attempts.

    Tables are extended **append-only** as templates are compiled lazily
    (see :meth:`CompiledNetwork.move_tables`): existing move ids stay
    valid forever, only the ndarray objects are replaced — engines
    therefore re-fetch the arrays per pass instead of caching them.
    """

    def __init__(self) -> None:
        self.num_paths = 0
        self._path_head: list[int] = []
        self._target: list[int] = []
        self._arb_start: list[int] = []
        self._arb_end: list[int] = []
        self._next: list[int] = []
        self._arbs: list[int] = []
        self._refresh()

    def extend(self, path_moves: list, start: int) -> None:
        """Flatten the chains of paths ``start ..`` into the tables."""
        for path in range(start, len(path_moves)):
            node = path_moves[path]
            index = len(self._target)
            self._path_head.append(index)
            while node is not None:
                target, arbiters, following = node
                self._target.append(target)
                self._arb_start.append(len(self._arbs))
                self._arbs.extend(arbiters)
                self._arb_end.append(len(self._arbs))
                index += 1
                self._next.append(index if following is not None else -1)
                node = following
        self.num_paths = len(path_moves)
        self._refresh()

    def _refresh(self) -> None:
        """Rebuild the ndarray views after an extension."""
        self.path_head = np.asarray(self._path_head, dtype=np.int32)
        self.target = np.asarray(self._target, dtype=np.int32)
        self.arb_start = np.asarray(self._arb_start, dtype=np.int32)
        self.arb_end = np.asarray(self._arb_end, dtype=np.int32)
        self.next = np.asarray(self._next, dtype=np.int32)
        self.arbs = np.asarray(self._arbs, dtype=np.int32)


class CompiledNetwork:
    """Flat integer tables describing one built topology.

    Parameters
    ----------
    topology : ClusterTopology
        A fully built topology.  Its :class:`StageNetwork` is used purely as
        the structural description: the compiler snapshots stage depths,
        levels, the per-level stage enumeration and the per-level arbitration
        permutation pools, so the vector engine replays the exact arbitration
        decisions the object engine would make.

    Attributes
    ----------
    stage_depth, stage_level : list of int
        Per-stage elastic-buffer depth and pipeline level, indexed by the
        stage ids used throughout the engine.
    bank_stage_ids : list of int
        Stage id of every bank's register stage, indexed by global bank id —
        the resolution table for the :data:`BANK` placeholder.
    level_orders : dict
        ``level -> tuple of permutations``, each permutation a tuple of
        *global stage ids* in the visiting order of one pooled cycle.
    level_orders_np : dict
        The same permutations as NumPy index arrays.
    full_orders : tuple of numpy.ndarray
        One concatenated downstream-first visiting order per pooled cycle —
        the index array behind the engine's single per-cycle occupancy
        gather.
    path_moves : list
        Per-template move-chain heads (see the module docstring).
    path_stage_seq : list
        Per-template register-stage sequences (with the :data:`BANK`
        placeholder), used for introspection and latency book-keeping.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        network: StageNetwork = topology.network
        stages = network.stages
        arbiters = network.arbiters
        self._stage_index = {id(stage): index for index, stage in enumerate(stages)}
        self._arbiter_index = {
            id(arbiter): index for index, arbiter in enumerate(arbiters)
        }
        self.num_stages = len(stages)
        self.num_arbiters = len(arbiters)
        self.stage_depth = [stage.depth for stage in stages]
        self.stage_level = [stage.level for stage in stages]
        self.stage_names = [stage.name for stage in stages]
        self.bank_stage_ids = [
            self._stage_index[id(stage)] for stage in topology.bank_stages
        ]
        # The network's own downstream-first level order: exactly
        # PIPELINE_LEVELS for the paper topologies, and the same order
        # extended with per-hop levels for the parameterized families of
        # :mod:`repro.topologies` (mesh/torus rings allocate one level per
        # hop position, so a path's stages always sort downstream-first).
        self.levels = network.active_levels
        self.level_orders: dict[int, tuple[tuple[int, ...], ...]] = {}
        self.level_orders_np: dict[int, tuple[np.ndarray, ...]] = {}
        self.level_pool_size: dict[int, int] = {}
        for level in self.levels:
            level_stages = network.stages_at_level(level)
            if not level_stages:
                continue
            ids = [self._stage_index[id(stage)] for stage in level_stages]
            schedule = PermutationSchedule(
                len(ids), seed=network.arbitration_seed + level
            )
            self.level_orders[level] = tuple(
                tuple(ids[i] for i in schedule.order(entry))
                for entry in range(schedule.pool_size)
            )
            self.level_orders_np[level] = tuple(
                np.array(order, dtype=np.intp)
                for order in self.level_orders[level]
            )
            self.level_pool_size[level] = schedule.pool_size

        # One concatenated visiting order per pooled cycle, covering every
        # level downstream-first.  Advancing a cycle is then a single
        # occupancy gather over this array: the flattening is exact because
        # a stage pops only when visited and level monotonicity rules out
        # pushes into a not-yet-visited level (see VectorEngine.advance).
        pool_sizes = set(self.level_pool_size.values())
        if len(pool_sizes) > 1:  # pragma: no cover - schedules share a pool
            raise EngineCompileError(
                f"arbitration pools of different sizes {sorted(pool_sizes)} "
                "cannot be flattened into one visiting order"
            )
        self.order_pool_size = pool_sizes.pop() if pool_sizes else 1
        self.full_orders = tuple(
            np.concatenate(
                [
                    self.level_orders_np[level][entry]
                    for level in self.levels
                    if level in self.level_orders_np
                ]
            )
            if self.level_orders_np
            else np.empty(0, dtype=np.intp)
            for entry in range(self.order_pool_size)
        )

        # Path-template tables, appended to lazily as (core, tile,
        # direction) triples are first requested.
        self.path_moves: list[tuple] = []
        self.path_stage_seq: list[tuple[int, ...]] = []
        #: Index (within the original resource list) of each template's
        #: first register stage, and the resource list's total length —
        #: used by the object facade to keep ``Flit.position`` semantics
        #: without materialising resource paths per flit.
        self.path_first_stage_pos: list[int] = []
        self.path_resource_len: list[int] = []
        self._template_ids: dict[tuple[int, int, bool], int] = {}
        self._template_tables: dict[bool, list[list[int]]] = {}
        self._move_tables: MoveTables | None = None
        #: Tile of every global bank id (placeholder-resolution helper).
        self.tile_of_bank = [
            topology.config.tile_of_bank(bank)
            for bank in range(topology.config.num_banks)
        ]

    # ------------------------------------------------------------------ #
    # Path compilation
    # ------------------------------------------------------------------ #

    def path_id(self, core_id: int, bank_id: int, needs_response: bool) -> int:
        """The path-template id for a ``core_id`` -> ``bank_id`` transaction.

        Templates are shared by every bank of the destination tile and are
        compiled on first use, so steady-state traffic only pays one
        dictionary lookup per request.
        """
        key = (core_id, self.tile_of_bank[bank_id], needs_response)
        path_id = self._template_ids.get(key)
        if path_id is None:
            resources = self.topology.build_path(core_id, bank_id, needs_response)
            path_id = self._compile_path(resources, self.bank_stage_ids[bank_id])
            self._template_ids[key] = path_id
        return path_id

    def template_table(self, needs_response: bool) -> list[list[int] | None]:
        """Per-core ``[core][tile] -> template id`` rows, compiled on demand.

        Returns a list with one slot per core, lazily filled by
        :meth:`template_row`: a core's row is compiled in one go the first
        time any flit of that core needs it, so hot loops resolve a
        template with two list reads instead of a dictionary lookup — and
        a batch of simulations sharing this compiled network
        (:class:`repro.engine.batch.SimBatch`) pays each compilation once
        instead of once per simulation.  Cached per direction.
        """
        table = self._template_tables.get(needs_response)
        if table is None:
            table = [None] * self.topology.config.num_cores
            self._template_tables[needs_response] = table
        return table

    def template_row(self, core_id: int, needs_response: bool) -> list[int]:
        """Compile (or fetch) ``core_id``'s per-tile template-id row."""
        table = self.template_table(needs_response)
        row = table[core_id]
        if row is None:
            config = self.topology.config
            banks_per_tile = config.banks_per_tile
            row = table[core_id] = [
                self.path_id(core_id, tile * banks_per_tile, needs_response)
                for tile in range(config.num_tiles)
            ]
        return row

    def _compile_path(self, resources: list[Resource], bank_stage: int) -> int:
        """Compile one resource path into a move chain; return its id."""
        stage_seq: list[int] = []
        moves: list[tuple[int, tuple[int, ...]]] = []
        pending_arbiters: list[int] = []
        first_stage_pos = -1
        for position, resource in enumerate(resources):
            if isinstance(resource, RegisterStage):
                stage_id = self._stage_index.get(id(resource))
                if stage_id is None:
                    raise EngineCompileError(
                        f"register stage {resource.name!r} is not part of the "
                        "compiled topology's stage network"
                    )
                target = BANK if stage_id == bank_stage else stage_id
                moves.append((target, tuple(pending_arbiters)))
                pending_arbiters.clear()
                stage_seq.append(target)
                if first_stage_pos < 0:
                    first_stage_pos = position
            else:
                arbiter_id = self._arbiter_index.get(id(resource))
                if arbiter_id is None:
                    raise EngineCompileError(
                        f"arbitration point {resource.name!r} is not part of "
                        "the compiled topology's stage network"
                    )
                pending_arbiters.append(arbiter_id)
        moves.append((COMPLETE, tuple(pending_arbiters)))

        levels = [
            self.stage_level[bank_stage if stage == BANK else stage]
            for stage in stage_seq
        ]
        if any(later <= earlier for earlier, later in zip(levels, levels[1:])):
            raise EngineCompileError(
                "path violates the level-monotonicity invariant of the "
                f"vector engine (stage levels {levels}); the object engine "
                "must be used for this topology"
            )

        # Link the hops back to front into the (target, arbiters, next)
        # chain the engine walks (see the module docstring).
        chain = None
        for target, arbiters in reversed(moves):
            chain = (target, arbiters, chain)

        path_id = len(self.path_moves)
        self.path_moves.append(chain)
        self.path_stage_seq.append(tuple(stage_seq))
        self.path_first_stage_pos.append(first_stage_pos)
        self.path_resource_len.append(len(resources))
        return path_id

    def move_tables(self) -> MoveTables:
        """The flattened :class:`MoveTables`, extended to every compiled path.

        Compiled-engine passes call this once per kernel invocation: the
        call is a no-op attribute read while no new templates were
        compiled, and an append-only extension (existing move ids stay
        valid) when lazy path compilation added templates since the last
        fetch.  Shared — like the template tables — by every engine
        instance built on this compiled network.
        """
        tables = self._move_tables
        if tables is None:
            tables = self._move_tables = MoveTables()
        if tables.num_paths < len(self.path_moves):
            tables.extend(self.path_moves, tables.num_paths)
        return tables

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_paths(self) -> int:
        """Number of distinct path templates compiled so far."""
        return len(self.path_moves)

    def zero_load_latency(self, core_id: int, bank_id: int) -> int:
        """Register-stage count of the load path (matches the topology's)."""
        return len(self.path_stage_seq[self.path_id(core_id, bank_id, True)])
