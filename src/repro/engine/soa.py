"""Structure-of-arrays flit state.

Instead of one Python object per in-flight request, the vector engine keeps
every flit as a *row* across a set of columns.  A row is allocated when the
request is generated and never reused.

The columns come in two flavours, chosen by access pattern:

* **Event columns** (``injected_cycle``, ``completed_cycle``) are
  preallocated NumPy arrays written by the engine at the (rare) lifecycle
  events of each flit, then sliced wholesale by the measurement code.
* **Append/hot columns** (``core``, ``bank``, ``created``, ``write_flag``,
  ``path_id``) are plain Python lists: they are appended once per
  allocation and read on every hop of the per-cycle transport loop, where
  ``list`` element access is several times faster than NumPy scalar
  indexing.  :meth:`sync` bulk-copies them into the matching preallocated
  NumPy arrays (``core_id``, ``bank_id``, ``created_cycle``, ``is_write``)
  whenever vectorized analytics need array views.

The flit's step along its path lives outside the table: the engine keeps a
per-row *resolved next hop* (a link into the compiled move chain), which
encodes position and next move in one cell.

Nothing outside this class needs to know the split: analytics call
:meth:`sync` (or :meth:`latencies`, which does) and get NumPy columns; the
engine touches the hot lists.

:class:`RingQueues` extends the same philosophy to the stage buffers: the
``compiled`` engine replaces the vector engine's per-stage deques with
fixed-capacity ring buffers packed into one flat ``int32`` array, so the
typed-array kernels of :mod:`repro.engine.kernel` address them with pure
integer arithmetic.
"""

from __future__ import annotations

import numpy as np

#: Initial number of preallocated rows (doubled on demand).
DEFAULT_CAPACITY = 4096


class FlitTable:
    """Columnar storage for every flit of one simulation.

    Attributes
    ----------
    core, bank, created, write_flag : list
        Append-path creation columns (see the module docstring).
    path_id : list of int
        The flit's path-template id (transient routing state).
    core_id, bank_id, created_cycle, is_write : numpy.ndarray
        NumPy views of the creation columns, valid after :meth:`sync`.
    injected_cycle, completed_cycle : numpy.ndarray of int64
        Event timestamps, live at all times; ``-1`` until the event.

    Examples
    --------
    >>> table = FlitTable(capacity=2)
    >>> table.allocate(core_id=1, bank_id=7, path_id=0, is_write=False, cycle=5)
    0
    >>> table.allocate(2, 8, 1, True, 5), table.allocate(3, 9, 2, False, 6)
    (1, 2)
    >>> table.count, table.capacity >= 3
    (3, True)
    >>> table.sync()
    >>> int(table.created_cycle[2])
    6
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.core: list[int] = []
        self.bank: list[int] = []
        self.created: list[int] = []
        self.write_flag: list[bool] = []
        self.path_id: list[int] = []
        self.core_id = np.empty(capacity, dtype=np.int64)
        self.bank_id = np.empty(capacity, dtype=np.int64)
        self.created_cycle = np.empty(capacity, dtype=np.int64)
        self.is_write = np.zeros(capacity, dtype=bool)
        self.injected_cycle = np.full(capacity, -1, dtype=np.int64)
        self.completed_cycle = np.full(capacity, -1, dtype=np.int64)
        self._synced = 0

    def _grow(self) -> None:
        """Double the preallocated capacity, preserving existing rows."""
        new_capacity = self.capacity * 2

        def extend(column: np.ndarray, fill) -> np.ndarray:
            grown = np.full(new_capacity, fill, dtype=column.dtype)
            grown[: self.count] = column[: self.count]
            return grown

        self.core_id = extend(self.core_id, 0)
        self.bank_id = extend(self.bank_id, 0)
        self.created_cycle = extend(self.created_cycle, 0)
        self.is_write = extend(self.is_write, False)
        self.injected_cycle = extend(self.injected_cycle, -1)
        self.completed_cycle = extend(self.completed_cycle, -1)
        self.capacity = new_capacity

    def allocate(
        self, core_id: int, bank_id: int, path_id: int, is_write: bool, cycle: int
    ) -> int:
        """Append one flit row; return its id (row index)."""
        row = self.count
        if row == self.capacity:
            self._grow()
        self.count = row + 1
        self.core.append(core_id)
        self.bank.append(bank_id)
        self.created.append(cycle)
        self.write_flag.append(is_write)
        self.path_id.append(path_id)
        return row

    def allocate_batch(
        self,
        core_ids: list,
        bank_ids: list,
        path_ids: list,
        is_write: bool,
        cycle: int,
    ) -> range:
        """Append one row per entry of the parallel columns; return the row range.

        The batched sibling of :meth:`allocate` used by the SimBatch traffic
        driver (:mod:`repro.engine.batch`): one capacity check and five
        ``list.extend`` calls allocate a whole cycle's arrivals, instead of
        per-flit method calls.  Rows are numbered exactly as ``len(core_ids)``
        sequential :meth:`allocate` calls would number them, which is what
        keeps batched runs flit-for-flit identical to per-sim runs.

        Examples
        --------
        >>> table = FlitTable(capacity=2)
        >>> table.allocate_batch([1, 2, 3], [7, 8, 9], [0, 1, 2], False, cycle=4)
        range(0, 3)
        >>> table.count, table.capacity >= 3
        (3, True)
        """
        start = self.count
        count = start + len(core_ids)
        while count > self.capacity:
            self._grow()
        self.count = count
        self.core.extend(core_ids)
        self.bank.extend(bank_ids)
        self.created.extend([cycle] * len(core_ids))
        self.write_flag.extend([is_write] * len(core_ids))
        self.path_id.extend(path_ids)
        return range(start, count)

    def sync(self) -> None:
        """Bulk-copy buffered creation columns into their NumPy arrays."""
        start, count = self._synced, self.count
        if start == count:
            return
        self.core_id[start:count] = self.core[start:count]
        self.bank_id[start:count] = self.bank[start:count]
        self.created_cycle[start:count] = self.created[start:count]
        self.is_write[start:count] = self.write_flag[start:count]
        self._synced = count

    # ------------------------------------------------------------------ #
    # Vectorized measurement views
    # ------------------------------------------------------------------ #

    def latencies(self) -> np.ndarray:
        """Round-trip latency of every completed row (vectorized).

        Examples
        --------
        >>> table = FlitTable()
        >>> row = table.allocate(0, 0, 0, False, cycle=3)
        >>> table.completed_cycle[row] = 8
        >>> table.latencies().tolist()
        [5]
        """
        self.sync()
        completed = self.completed_cycle[: self.count]
        mask = completed >= 0
        return completed[mask] - self.created_cycle[: self.count][mask]

    def row_record(self, row: int) -> tuple[int, int, int, int, int, int]:
        """One flit's record in the legacy log layout.

        Returns ``(flit_id, core_id, bank_id, created, injected, completed)``
        — the same tuple the object engine logs for equivalence checks.
        """
        return (
            row,
            self.core[row],
            self.bank[row],
            self.created[row],
            int(self.injected_cycle[row]),
            int(self.completed_cycle[row]),
        )


class RingQueues:
    """Fixed-capacity int32 ring buffers replacing per-stage Python deques.

    The queue state of the ``compiled`` engine
    (:mod:`repro.engine.compiled`): one ring per flat stage slot, all rings
    packed into a single flat ``buffer`` array so the typed-array kernels of
    :mod:`repro.engine.kernel` index them with nothing but integer
    arithmetic.  A slot's ring capacity equals its stage's elastic-buffer
    depth — the engine checks ``free_slots`` (depth minus fill) before every
    push, so a ring can never overflow.

    Parameters
    ----------
    capacities : iterable of int
        Per-stage ring capacity (the compiled network's ``stage_depth``).
    copies : int
        Number of back-to-back copies of the capacity vector — ``S`` for a
        batch of ``S`` simulations sharing one flat state (slot
        ``sim * N + stage``), 1 for a single simulation.

    Attributes
    ----------
    capacity : numpy.ndarray of int32
        Ring capacity per flat slot.
    start : numpy.ndarray of int64
        Offset of each slot's ring inside :attr:`buffer`
        (``start[slot] .. start[slot] + capacity[slot]``); one trailing
        entry holds the total size.
    buffer : numpy.ndarray of int32
        The concatenated ring storage (flit row ids).
    head, size : numpy.ndarray of int32
        Per-slot ring cursor and fill level.

    Examples
    --------
    >>> rings = RingQueues([2, 3])
    >>> rings.push(0, 11); rings.push(0, 12)
    >>> rings.pop(0)
    11
    >>> rings.push(0, 13)  # wraps around the capacity-2 ring
    >>> rings.pop(0), rings.pop(0)
    (12, 13)
    """

    def __init__(self, capacities, copies: int = 1) -> None:
        if copies < 1:
            raise ValueError(f"copies must be positive, got {copies}")
        caps = list(capacities) * copies
        if any(cap < 1 for cap in caps):
            raise ValueError("every ring needs a positive capacity")
        self.num_queues = len(caps)
        self.capacity = np.asarray(caps, dtype=np.int32)
        self.start = np.zeros(self.num_queues + 1, dtype=np.int64)
        np.cumsum(self.capacity, out=self.start[1:])
        self.buffer = np.zeros(int(self.start[-1]), dtype=np.int32)
        self.head = np.zeros(self.num_queues, dtype=np.int32)
        self.size = np.zeros(self.num_queues, dtype=np.int32)

    def push(self, queue: int, row: int) -> None:
        """Append ``row`` to ``queue``'s tail; raise when the ring is full."""
        size = int(self.size[queue])
        capacity = int(self.capacity[queue])
        if size == capacity:
            raise IndexError(f"ring {queue} is full (capacity {capacity})")
        pos = int(self.head[queue]) + size
        if pos >= capacity:
            pos -= capacity
        self.buffer[int(self.start[queue]) + pos] = row
        self.size[queue] = size + 1

    def pop(self, queue: int) -> int:
        """Pop and return ``queue``'s head row; raise when empty."""
        size = int(self.size[queue])
        if size == 0:
            raise IndexError(f"ring {queue} is empty")
        head = int(self.head[queue])
        row = int(self.buffer[int(self.start[queue]) + head])
        head += 1
        if head == int(self.capacity[queue]):
            head = 0
        self.head[queue] = head
        self.size[queue] = size - 1
        return row

    def peek(self, queue: int) -> int:
        """Return ``queue``'s head row without popping; raise when empty."""
        if self.size[queue] == 0:
            raise IndexError(f"ring {queue} is empty")
        return int(self.buffer[int(self.start[queue]) + int(self.head[queue])])

    def length(self, queue: int) -> int:
        """Number of rows currently buffered in ``queue``."""
        return int(self.size[queue])

    def rows(self, queue: int) -> list[int]:
        """The rows of ``queue`` in FIFO order (introspection/tests)."""
        capacity = int(self.capacity[queue])
        start = int(self.start[queue])
        head = int(self.head[queue])
        return [
            int(self.buffer[start + (head + offset) % capacity])
            for offset in range(int(self.size[queue]))
        ]
