"""Typed-array transport kernels behind the ``compiled`` engine.

This module is the compute core of :mod:`repro.engine.compiled`: the whole
per-cycle transport pass — head-flit reads from ring-buffer stage queues,
target-space checks, arbiter check-then-grant runs, pops, pushes and
completions — as two flat-array functions (:func:`advance_pass` and
:func:`inject_pass`) that touch nothing but NumPy scalars and therefore
admit two interchangeable implementations:

* a **pure-Python reference**, always available, used when Numba is not
  installed (it is an optional ``[perf]`` extra) or when the
  ``MEMPOOL_JIT=0`` environment opt-out is set;
* a **Numba ``@njit(cache=True)``** build of the *same source functions*,
  selected at import time when :data:`JIT_ENABLED` resolves true.  The
  on-disk cache makes every process after the first pay zero compile time.

Both implementations execute identical statements over identical state, so
engine behaviour — and in particular flit-for-flit equivalence with the
``legacy`` and ``vector`` engines — is independent of which one is active.
The equivalence and fuzz suites run on whichever backend the environment
provides; CI exercises both.

State layout (everything indexed by *flat slot*, i.e. ``sim * N + stage``
for a batch of ``N``-stage simulations, plain stage ids when single-sim):

==================  ==========  ==============================================
array               dtype       role
==================  ==========  ==============================================
``qbuf``            int32       concatenated ring storage of all stage queues
``qstart``          int64       per-slot offset of its ring inside ``qbuf``
``qcap``            int32       per-slot ring capacity (== stage depth)
``qhead``, ``qlen``  int32      per-slot ring cursor and fill level
``occupied``        bool        per-slot "buffers >= 1 flit" column
``free_slots``      int32       per-slot elastic-buffer slack
``accepted``        int64       cycle each slot last accepted (one/cycle)
``granted``         int64       cycle each arbiter slot last granted
``move_*``          int32       flattened move chains (see ``MoveTables``)
``row_move``        int32       per-row cursor into the move tables
``row_bank``        int32       per-row destination bank (BANK resolution)
``bank_stage``      int64       bank id -> bank stage id table
==================  ==========  ==============================================

The ring capacity of a slot equals its stage depth, and ``free_slots``
(depth minus fill) is checked before every push, so the rings can never
overflow — the invariant the unit tests in ``tests/test_engine`` pin.
"""

from __future__ import annotations

import os

import numpy as np

#: Move-table target marking the end of the path (mirror of
#: :data:`repro.engine.compile.COMPLETE`, duplicated so the kernels have no
#: imports Numba would need to resolve).
COMPLETE = -1
#: Move-table target marking the destination bank's stage (mirror of
#: :data:`repro.engine.compile.BANK`), resolved against ``row_bank`` on
#: every attempt.
BANK = -2


def _advance_pass(
    candidates,
    qbuf,
    qstart,
    qcap,
    qhead,
    qlen,
    occupied,
    free_slots,
    accepted,
    granted,
    slot_base,
    slot_arb_base,
    move_target,
    move_arb_start,
    move_arb_end,
    move_arbs,
    move_next,
    row_move,
    row_bank,
    bank_stage,
    completed_cycle,
    completed_out,
    cycle,
):
    """One cycle's transport pass over the pre-gathered candidate slots.

    ``candidates`` is the cycle's occupancy gather over the concatenated
    downstream-first visiting order (``order[occupied[order]]``), computed
    by the caller with one vectorized index.  The gather is exact at visit
    time, not only at gather time: each slot appears exactly once per full
    order and only its own visit pops it, so a slot occupied at the gather
    is still occupied when the loop reaches it — no re-check needed.

    For each candidate: read the head row off the slot's ring, resolve the
    row's current move (``BANK`` targets lazily against ``bank_stage``),
    apply the target-space and one-accept/one-grant-per-cycle rules, and on
    success pop the ring and either push into the target ring or complete
    the row.  Completed row ids are written to ``completed_out`` (in
    completion order); the return value is how many were written.
    """
    count = 0
    for i in range(candidates.shape[0]):
        slot = candidates[i]
        row = qbuf[qstart[slot] + qhead[slot]]
        move = row_move[row]
        target = move_target[move]
        if target == BANK:
            target = bank_stage[row_bank[row]]
        if target >= 0:
            flat_target = slot_base[slot] + target
            if free_slots[flat_target] == 0 or accepted[flat_target] == cycle:
                continue
        arb_lo = move_arb_start[move]
        arb_hi = move_arb_end[move]
        if arb_hi > arb_lo:
            arb_base = slot_arb_base[slot]
            blocked = False
            for j in range(arb_lo, arb_hi):
                if granted[arb_base + move_arbs[j]] == cycle:
                    blocked = True
                    break
            if blocked:
                continue
            for j in range(arb_lo, arb_hi):
                granted[arb_base + move_arbs[j]] = cycle
        head = qhead[slot] + 1
        if head == qcap[slot]:
            head = 0
        qhead[slot] = head
        qlen[slot] -= 1
        free_slots[slot] += 1
        if qlen[slot] == 0:
            occupied[slot] = False
        if target >= 0:
            row_move[row] = move_next[move]
            flat_target = slot_base[slot] + target
            pos = qhead[flat_target] + qlen[flat_target]
            if pos >= qcap[flat_target]:
                pos -= qcap[flat_target]
            qbuf[qstart[flat_target] + pos] = row
            qlen[flat_target] += 1
            occupied[flat_target] = True
            free_slots[flat_target] -= 1
            accepted[flat_target] = cycle
        else:
            completed_cycle[row] = cycle
            completed_out[count] = row
            count += 1
    return count


def _inject_pass(
    rows,
    stamp_rows,
    flags,
    qbuf,
    qstart,
    qcap,
    qhead,
    qlen,
    occupied,
    free_slots,
    accepted,
    granted,
    move_target,
    move_arb_start,
    move_arb_end,
    move_arbs,
    move_next,
    row_move,
    row_bank,
    bank_stage,
    injected_cycle,
    completed_cycle,
    cycle,
    base,
    arb_base,
):
    """Attempt the injection hop of every candidate row, in order.

    The batched sibling of the per-core injection walk: ``rows`` holds the
    head row of each non-empty source queue in the cycle's injection
    permutation.  Each row attempts its first hop under the same
    target-space and arbitration rules as :func:`_advance_pass`; accepted
    rows get ``flags`` set (the caller pops the matching source queues),
    their injection cycle stamped, and either enter the target ring or —
    on the degenerate zero-register path — complete immediately.

    ``rows`` and ``stamp_rows`` decouple the engine-global row numbering
    (indexing ``row_move`` / ``row_bank`` and stored in the rings) from the
    per-simulation row numbering (indexing the flit table's
    ``injected_cycle`` / ``completed_cycle`` columns): a batch passes
    global ids in ``rows`` and sim-local ids in ``stamp_rows``, a
    single-sim engine passes the same array twice.  ``base`` and
    ``arb_base`` are the flat-slot offsets of the owning simulation (zero
    when single-sim).

    Returns ``(injected, entered, completed)``: total accepted rows, rows
    that entered the network, and rows that completed at injection.
    """
    injected = 0
    entered = 0
    completed = 0
    for i in range(rows.shape[0]):
        row = rows[i]
        move = row_move[row]
        target = move_target[move]
        if target == BANK:
            target = bank_stage[row_bank[row]]
        if target >= 0:
            flat_target = base + target
            if free_slots[flat_target] == 0 or accepted[flat_target] == cycle:
                continue
        arb_lo = move_arb_start[move]
        arb_hi = move_arb_end[move]
        if arb_hi > arb_lo:
            blocked = False
            for j in range(arb_lo, arb_hi):
                if granted[arb_base + move_arbs[j]] == cycle:
                    blocked = True
                    break
            if blocked:
                continue
            for j in range(arb_lo, arb_hi):
                granted[arb_base + move_arbs[j]] = cycle
        injected_cycle[stamp_rows[i]] = cycle
        flags[i] = True
        injected += 1
        if target >= 0:
            row_move[row] = move_next[move]
            flat_target = base + target
            pos = qhead[flat_target] + qlen[flat_target]
            if pos >= qcap[flat_target]:
                pos -= qcap[flat_target]
            qbuf[qstart[flat_target] + pos] = row
            qlen[flat_target] += 1
            occupied[flat_target] = True
            free_slots[flat_target] -= 1
            accepted[flat_target] = cycle
            entered += 1
        else:
            # Degenerate zero-register path: completes at injection (kept
            # for counter parity with the other engines, never logged).
            completed_cycle[stamp_rows[i]] = cycle
            completed += 1
    return injected, entered, completed


# --------------------------------------------------------------------- #
# Backend selection
# --------------------------------------------------------------------- #

try:  # pragma: no cover - exercised only where the [perf] extra is present
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the baseline environment
    numba = None
    HAVE_NUMBA = False

#: True when the Numba builds of the kernels are active: numba importable
#: and the ``MEMPOOL_JIT=0`` opt-out not set.
JIT_ENABLED = HAVE_NUMBA and os.environ.get("MEMPOOL_JIT", "1") != "0"

if JIT_ENABLED:  # pragma: no cover - exercised only with numba installed
    advance_pass = numba.njit(cache=True)(_advance_pass)
    inject_pass = numba.njit(cache=True)(_inject_pass)
else:
    advance_pass = _advance_pass
    inject_pass = _inject_pass


def warmup_jit() -> bool:
    """Force-compile (or cache-load) both kernels; return whether JIT ran.

    Calls each kernel once over a minimal one-stage state with the exact
    dtypes the engines use, so the first real :meth:`advance` of a run — or
    a CI leg priming the on-disk ``@njit(cache=True)`` cache — does not pay
    the compilation inside a timed region.  A no-op (returning ``False``)
    on the pure-Python backend.
    """
    qbuf = np.zeros(1, dtype=np.int32)
    qstart = np.zeros(2, dtype=np.int64)
    qcap = np.ones(1, dtype=np.int32)
    qhead = np.zeros(1, dtype=np.int32)
    qlen = np.ones(1, dtype=np.int32)
    occupied = np.ones(1, dtype=bool)
    free_slots = np.zeros(1, dtype=np.int32)
    accepted = np.full(1, -1, dtype=np.int64)
    granted = np.full(1, -1, dtype=np.int64)
    slot_base = np.zeros(1, dtype=np.int64)
    slot_arb_base = np.zeros(1, dtype=np.int64)
    move_target = np.full(1, COMPLETE, dtype=np.int32)
    move_arb_start = np.zeros(1, dtype=np.int32)
    move_arb_end = np.zeros(1, dtype=np.int32)
    move_arbs = np.zeros(0, dtype=np.int32)
    move_next = np.full(1, -1, dtype=np.int32)
    row_move = np.zeros(1, dtype=np.int32)
    row_bank = np.zeros(1, dtype=np.int32)
    bank_stage = np.zeros(1, dtype=np.int64)
    injected = np.full(1, -1, dtype=np.int64)
    completed = np.full(1, -1, dtype=np.int64)
    out = np.zeros(1, dtype=np.int64)
    candidates = np.zeros(1, dtype=np.intp)
    advance_pass(
        candidates, qbuf, qstart, qcap, qhead, qlen, occupied, free_slots,
        accepted, granted, slot_base, slot_arb_base, move_target,
        move_arb_start, move_arb_end, move_arbs, move_next, row_move,
        row_bank, bank_stage, completed, out, 0,
    )
    qlen[0] = 1
    occupied[0] = True
    free_slots[0] = 0
    rows = np.zeros(1, dtype=np.int64)
    flags = np.zeros(1, dtype=bool)
    inject_pass(
        rows, rows, flags, qbuf, qstart, qcap, qhead, qlen, occupied,
        free_slots, accepted, granted, move_target, move_arb_start,
        move_arb_end, move_arbs, move_next, row_move, row_bank, bank_stage,
        injected, completed, 1, 0, 0,
    )
    return JIT_ENABLED
