"""Open-loop traffic measurement running natively on the vector engine.

This is the fast path behind :meth:`repro.traffic.simulation.TrafficSimulation.run`
when the cluster was built with ``engine="vector"``: the same warm-up /
measure loop, the same random streams (arrival process, destination
pattern, injection permutation — drawn in exactly the legacy order, so
results are flit-for-flit identical), but no :class:`Flit` objects anywhere.
Workloads are consumed through their *batched* APIs
(:meth:`~repro.workloads.base.InjectionProcess.arrivals_batch`,
:meth:`~repro.workloads.base.DestinationPattern.destinations`), which are
contractually draw-order-equivalent to the scalar calls the legacy loop
makes — any registered pattern/injector pair therefore runs here unchanged.
Requests are rows of the engine's :class:`~repro.engine.soa.FlitTable` from
generation to completion, and each cycle's transport is the engine's
level-ordered array passes.
"""

from __future__ import annotations

from repro.utils.stats import Histogram, OnlineStats


def run_vector_traffic(
    simulation,
    warmup_cycles: int,
    measure_cycles: int,
    record_flits: bool = False,
):
    """Run one open-loop traffic measurement on the vector engine.

    Parameters
    ----------
    simulation : repro.traffic.simulation.TrafficSimulation
        The configured simulation; its cluster must have been built with
        ``engine="vector"``.  The driver reuses the simulation's injector,
        pattern and injection schedule so random draws match the legacy
        loop call for call.
    warmup_cycles, measure_cycles : int
        Warm-up and measurement windows.
    record_flits : bool
        Attach the per-flit completion log to the result (used by the
        engine-equivalence tests).

    Returns
    -------
    repro.traffic.simulation.TrafficResult
        Identical, field for field, to what the legacy object loop returns
        for the same seeds.
    """
    from repro.traffic.simulation import TrafficResult

    cluster = simulation.cluster
    config = cluster.config
    facade = cluster.network
    engine = facade.engine
    flits = engine.flits
    pattern = simulation.pattern
    injector = simulation.injector
    injection_schedule = simulation._injection_schedule
    num_cores = config.num_cores

    core_tile = [config.tile_of_core(core) for core in range(num_cores)]
    bank_tile = engine.compiled.tile_of_bank
    new_flit = engine.new_flit
    # The simulation-owned row queues: persistent across run() calls, like
    # the legacy loop's Flit queues, so repeated windows stay cycle-exact.
    queues = simulation._row_queues

    latency = OnlineStats()
    histogram = Histogram()
    flit_log: list[tuple[int, int, int, int, int, int]] = []
    completed_in_window = 0
    generated_in_window = 0
    injected_in_window = 0
    local_requests = 0
    total_requests = 0

    total_cycles = warmup_cycles + measure_cycles
    for cycle in range(total_cycles):
        completions = engine.advance(cycle)
        measuring = cycle >= warmup_cycles
        if measuring:
            completed_in_window += len(completions)
            created = flits.created
            for row in completions:
                value = cycle - created[row]
                latency.add(value)
                histogram.add(value)
        if record_flits:
            for row in completions:
                flit_log.append(flits.row_record(row))

        batch = injector.arrivals_batch(cycle)
        generated = 0
        if batch:
            # One batched destination call per cycle: the pattern consumes
            # its random draws in exactly the legacy order (cores ascending,
            # one draw sequence per arrival), but table-backed patterns
            # resolve the whole cycle in a single array gather.
            sources: list[int] = []
            for core_id, count in batch:
                sources.extend([core_id] * count)
            destinations = pattern.destinations(sources)
            for core_id, bank_id in zip(sources, destinations):
                bank_id = int(bank_id)
                queues[core_id].append(new_flit(core_id, bank_id, False, cycle))
                if bank_tile[bank_id] == core_tile[core_id]:
                    local_requests += 1
            generated = len(sources)
        total_requests += generated

        injected = engine.inject_queues(queues, injection_schedule.order(cycle), cycle)

        if measuring:
            generated_in_window += generated
            injected_in_window += injected

    # Keep the simulation object's counters consistent with the legacy loop.
    simulation._local_requests += local_requests
    simulation._total_requests += total_requests
    local_fraction = (
        simulation._local_requests / simulation._total_requests
        if simulation._total_requests
        else 0.0
    )
    return TrafficResult(
        topology=config.topology,
        injected_load=simulation.injection_rate,
        measured_cycles=measure_cycles,
        num_cores=num_cores,
        generated_requests=generated_in_window,
        injected_requests=injected_in_window,
        completed_requests=completed_in_window,
        average_latency=latency.mean,
        p95_latency=histogram.percentile(0.95),
        max_latency=int(latency.maximum) if latency.count else 0,
        local_fraction=local_fraction,
        flit_log=flit_log if record_flits else None,
    )
