"""Vectorized flit-transport engine (structure-of-arrays timing core).

The packages above this one describe *what* to simulate (topologies,
programs, traffic); :mod:`repro.engine` is an alternative implementation of
*how* the cycle-level transport is executed.  It compiles a built topology
into flat integer tables (:mod:`repro.engine.compile`), keeps every flit as
a row across preallocated NumPy columns (:mod:`repro.engine.soa`), and
advances all of them with level-ordered passes over dense lists
(:mod:`repro.engine.vector`) — several times faster than the per-object
legacy engine, and cycle-exact with it for fixed seeds.
:mod:`repro.engine.batch` stacks a *sim axis* on top: one
:class:`~repro.engine.batch.SimBatch` advances many independent
simulations (a whole load sweep) in one flattened state, amortising the
per-point Python overhead while staying flit-for-flit identical to
per-sim runs.  :mod:`repro.engine.compiled` goes one layer lower still:
per-stage queues become fixed-capacity ring buffers, move chains become
flat int32 tables, and the whole advance pass runs as one typed-array
kernel (:mod:`repro.engine.kernel`) — JIT-compiled by Numba when the
optional ``[perf]`` extra is installed, pure-Python reference otherwise.

Select an engine per cluster::

    cluster = MemPoolCluster(config, engine="vector")   # "batch", "compiled"

or from the command line::

    python -m repro.evaluation fig5 --engine vector
    python -m repro.experiments run fig5 --engine batch
    python -m repro.experiments run fig5 --engine compiled

Both the open-loop traffic simulator (through
:mod:`repro.engine.traffic`) and the execution-driven system simulator
(through :class:`~repro.engine.vector.VectorStageNetwork`, a drop-in
``StageNetwork`` facade) run on it unchanged; ``engine="batch"`` batches
the open-loop traffic sweeps and falls back to the vector facade
everywhere else.
"""

from repro.core.cluster import ENGINES
from repro.engine.batch import SimBatch, TrafficBatch
from repro.engine.compile import CompiledNetwork, EngineCompileError, MoveTables
from repro.engine.compiled import CompiledEngine, CompiledSimBatch
from repro.engine.kernel import HAVE_NUMBA, JIT_ENABLED
from repro.engine.soa import FlitTable, RingQueues
from repro.engine.vector import VectorEngine, VectorStageNetwork

__all__ = [
    "ENGINES",
    "HAVE_NUMBA",
    "JIT_ENABLED",
    "CompiledEngine",
    "CompiledNetwork",
    "CompiledSimBatch",
    "EngineCompileError",
    "FlitTable",
    "MoveTables",
    "RingQueues",
    "SimBatch",
    "TrafficBatch",
    "VectorEngine",
    "VectorStageNetwork",
]
