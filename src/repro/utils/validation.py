"""Validation helpers used by configuration objects and builders."""

from __future__ import annotations


def check_positive(name: str, value: int | float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: int | float) -> None:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def log2_int(value: int) -> int:
    """Return ``log2(value)`` for a power-of-two ``value``.

    Raises ``ValueError`` if ``value`` is not a positive power of two.
    """
    check_power_of_two("value", value)
    return value.bit_length() - 1


def is_power_of(value: int, base: int) -> bool:
    """Return True if ``value`` is a positive integer power of ``base`` (incl. base**0)."""
    if value <= 0 or base <= 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


def log_base_int(value: int, base: int) -> int:
    """Return ``log_base(value)`` for an exact power, else raise ``ValueError``."""
    if not is_power_of(value, base):
        raise ValueError(f"{value} is not a power of {base}")
    exponent = 0
    while value > 1:
        value //= base
        exponent += 1
    return exponent
