"""Fair iteration schedules for per-cycle arbitration.

Visiting contenders in a fixed list order (even with a rotating start offset)
is pairwise unfair: of two requesters that conflict every cycle, the one that
appears earlier in the list wins almost every time.  Persistent losers back
up and — through shared upstream resources such as MemPool's per-direction
tile ports — can idle capacity for everyone.  :class:`PermutationSchedule`
provides a cheap approximation of unbiased arbitration: a pool of
pre-computed random permutations of the contenders, indexed by cycle, so that
over time every pairwise order is equally likely.
"""

from __future__ import annotations

import random


#: Memo of generated permutation pools, keyed by ``(count, seed,
#: pool_size)``.  Pools are immutable tuples, so instances can share them;
#: sweeps build thousands of schedules from a handful of distinct keys
#: (every point re-derives the same pool from the same seed), and the
#: ~``pool_size * count`` RNG shuffles are a measurable share of a short
#: simulation's set-up time.  Bounded FIFO: a long-lived process sweeping
#: many distinct seeds evicts the oldest pools instead of growing without
#: limit.
_pool_cache: dict[tuple[int, int, int], tuple[tuple[int, ...], ...]] = {}
_POOL_CACHE_LIMIT = 64


class PermutationSchedule:
    """A pool of fixed random permutations of ``range(count)`` indexed by cycle."""

    def __init__(self, count: int, seed: int = 0, pool_size: int = 97) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if pool_size < 1:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.count = count
        self.pool_size = pool_size
        key = (count, seed, pool_size)
        permutations = _pool_cache.get(key)
        if permutations is None:
            rng = random.Random(seed)
            base = list(range(count))
            generated = []
            for _ in range(pool_size):
                order = base[:]
                rng.shuffle(order)
                generated.append(tuple(order))
            while len(_pool_cache) >= _POOL_CACHE_LIMIT:
                del _pool_cache[next(iter(_pool_cache))]
            permutations = _pool_cache[key] = tuple(generated)
        self._permutations = permutations

    def order(self, cycle: int) -> tuple[int, ...]:
        """The visiting order to use during ``cycle``."""
        return self._permutations[cycle % self.pool_size]

    def __len__(self) -> int:
        return self.count
