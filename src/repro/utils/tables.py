"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent and dependency-free.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(header) for header in headers]))
    lines.append(render_line(["-" * width for width in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render one or more y-series against a shared x axis (a 'figure' as text)."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x_value in enumerate(x_values):
        row: list[object] = [x_value]
        for values in series.values():
            row.append(values[index])
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)
