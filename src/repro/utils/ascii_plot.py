"""Minimal ASCII line plots for the figure reports.

The benchmark harness and the examples print the paper's figures as tables;
for quick visual inspection in a terminal, this module renders the same
series as an ASCII scatter/line plot (one character per series).  It has no
dependency beyond the standard library and is intentionally small: it is a
reporting aid, not a plotting library.
"""

from __future__ import annotations

from collections.abc import Sequence

#: Characters used for successive series.
SERIES_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    title: str | None = None,
) -> str:
    """Render ``series`` (name -> y values) against ``x_values`` as ASCII art.

    All series must have the same length as ``x_values``.  The y range is the
    union of all series; the plot is returned as a multi-line string with a
    legend mapping markers to series names.
    """
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10 columns by 4 rows")
    if not x_values:
        raise ValueError("x_values must not be empty")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )
    if not series:
        raise ValueError("at least one series is required")

    x_low, x_high = min(x_values), max(x_values)
    all_y = [value for values in series.values() for value in values]
    y_low, y_high = min(all_y), max(all_y)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        for x_value, y_value in zip(x_values, values):
            column = _scale(x_value, x_low, x_high, width)
            row = height - 1 - _scale(y_value, y_low, y_high, height)
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_axis_label = f"{x_low:.3g}".ljust(width - 10) + f"{x_high:.3g}".rjust(10)
    lines.append(f"{' ' * label_width}  {x_axis_label}")
    if x_label:
        lines.append(f"{' ' * label_width}  {x_label.center(width)}")
    legend = "   ".join(
        f"{SERIES_MARKERS[index % len(SERIES_MARKERS)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  legend: {legend}")
    return "\n".join(lines)
