"""Small utilities shared across the simulator: statistics, tables, validation."""

from repro.utils.stats import OnlineStats, Histogram, summarize
from repro.utils.tables import format_table
from repro.utils.validation import check_positive, check_power_of_two, log2_int

__all__ = [
    "OnlineStats",
    "Histogram",
    "summarize",
    "format_table",
    "check_positive",
    "check_power_of_two",
    "log2_int",
]
