"""Lightweight statistics helpers used by measurement and evaluation code."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class OnlineStats:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm).

    Used to accumulate per-request latencies and per-cycle throughput samples
    without storing every sample.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "OnlineStats") -> None:
        """Merge another accumulator into this one (Chan's parallel variant)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean = (self._mean * self.count + other._mean * other.count) / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        """Mean of the samples seen so far (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"OnlineStats(count={self.count}, mean={self.mean:.3f}, "
            f"std={self.stddev:.3f}, min={self.minimum}, max={self.maximum})"
        )


@dataclass
class Histogram:
    """Integer-valued histogram, used for latency distributions."""

    counts: dict[int, int] = field(default_factory=dict)

    def add(self, value: int, weight: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + weight

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def mean(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(value * count for value, count in self.counts.items()) / total

    def percentile(self, fraction: float) -> int:
        """Return the smallest value at or below which ``fraction`` of samples fall."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        total = self.total
        if total == 0:
            return 0
        threshold = fraction * total
        running = 0
        for value in sorted(self.counts):
            running += self.counts[value]
            if running >= threshold:
                return value
        return max(self.counts)

    def items(self):
        return sorted(self.counts.items())


def summarize(values) -> dict[str, float]:
    """Return a {count, mean, std, min, max} summary of an iterable of numbers."""
    stats = OnlineStats()
    for value in values:
        stats.add(float(value))
    return {
        "count": stats.count,
        "mean": stats.mean,
        "std": stats.stddev,
        "min": stats.minimum if stats.count else 0.0,
        "max": stats.maximum if stats.count else 0.0,
    }


def geometric_mean(values) -> float:
    """Geometric mean of strictly positive values (0.0 for an empty iterable)."""
    total = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires strictly positive values")
        total += math.log(value)
        count += 1
    if count == 0:
        return 0.0
    return math.exp(total / count)
