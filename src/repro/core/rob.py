"""Reorder buffer (ROB) used by each Snitch core's load/store unit.

Section III-B: requests carry metadata so that responses can be routed back
to the issuing core and *"ensure their proper ordering by the Reorder Buffer
(ROB)"*.  The model tracks outstanding load transactions, bounds their number
(Snitch supports a configurable number of outstanding loads), and hands the
returned data back to the core in program order.
"""

from __future__ import annotations

from collections import OrderedDict


class ReorderBuffer:
    """Bounded in-order tracking of outstanding load transactions."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"ROB capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # tag -> completed flag, in allocation (program) order.
        self._entries: OrderedDict[object, bool] = OrderedDict()
        #: High-water mark of simultaneous outstanding loads (for statistics).
        self.max_occupancy = 0

    # ------------------------------------------------------------------ #
    # Allocation / completion
    # ------------------------------------------------------------------ #

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, tag: object) -> None:
        """Reserve an entry for a newly issued load identified by ``tag``."""
        if self.is_full:
            raise RuntimeError("ROB is full; the issuing core must stall")
        if tag in self._entries:
            raise ValueError(f"duplicate outstanding tag {tag!r}")
        self._entries[tag] = False
        self.max_occupancy = max(self.max_occupancy, len(self._entries))

    def complete(self, tag: object) -> None:
        """Mark the load identified by ``tag`` as returned from memory."""
        if tag not in self._entries:
            raise KeyError(f"tag {tag!r} is not outstanding")
        if self._entries[tag]:
            raise ValueError(f"tag {tag!r} completed twice")
        self._entries[tag] = True

    def is_complete(self, tag: object) -> bool:
        """True if ``tag`` has returned (or was never outstanding)."""
        return self._entries.get(tag, True)

    def is_outstanding(self, tag: object) -> bool:
        """True if ``tag`` was allocated and has not been retired yet."""
        return tag in self._entries

    def retire_ready(self) -> list[object]:
        """Retire and return the tags of completed loads, in program order.

        Retirement stops at the first entry that has not completed, which is
        what keeps responses ordered towards the core's register file.
        """
        retired: list[object] = []
        while self._entries:
            tag, completed = next(iter(self._entries.items()))
            if not completed:
                break
            self._entries.popitem(last=False)
            retired.append(tag)
        return retired

    def clear(self) -> None:
        self._entries.clear()
