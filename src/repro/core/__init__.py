"""Core MemPool system model: configuration, cluster, tiles, banks, simulator."""

from repro.core.config import MemPoolConfig, TimingParameters
from repro.core.cluster import MemPoolCluster, Tile
from repro.core.system import MemPoolSystem

__all__ = [
    "MemPoolConfig",
    "TimingParameters",
    "MemPoolCluster",
    "Tile",
    "MemPoolSystem",
]
