"""Execution-driven simulation of programs running on the MemPool cluster.

:class:`MemPoolSystem` instantiates one :class:`CoreTimingModel` per core,
connects them to the cluster's stage network, and advances everything cycle
by cycle until every core has finished its program and the interconnect has
drained.  The result object carries the cycle count and the activity counters
consumed by the energy and power models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.agents import CoreAgent, IdleAgent
from repro.core.cluster import MemPoolCluster
from repro.core.coremodel import CoreStats, CoreTimingModel
from repro.utils.rotation import PermutationSchedule


class BarrierTimeoutError(RuntimeError):
    """Raised when a program deadlocks (e.g. mismatched barrier usage)."""


class BarrierMismatchError(RuntimeError):
    """Raised when cores meet at a barrier with different ``barrier_id``s."""


class GlobalBarrier:
    """A simple all-core barrier used by the parallel kernels.

    Every participant calls :meth:`arrive` with the identifier of the
    barrier it reached; the barrier releases once all participants have
    arrived.  The identifiers must agree within one episode — a program
    where core A sits at barrier 1 while core B announces barrier 2 is
    broken (the cores would be synchronising different program points),
    and such a meeting raises :class:`BarrierMismatchError` instead of
    silently releasing.
    """

    def __init__(self, participants: set[int]) -> None:
        self.participants = set(participants)
        #: Arrived cores mapped to the barrier id each one announced.
        self._arrived: dict[int, int] = {}
        #: Number of completed barrier episodes (for statistics).
        self.episodes = 0

    def arrive(self, core_id: int, barrier_id: int = 0) -> None:
        """Record that ``core_id`` reached the barrier named ``barrier_id``."""
        if core_id not in self.participants:
            raise ValueError(f"core {core_id} is not a barrier participant")
        self._arrived[core_id] = barrier_id

    @property
    def waiting(self) -> int:
        """Number of cores currently blocked at the barrier."""
        return len(self._arrived)

    def try_release(self) -> bool:
        """Release the barrier if every participant has arrived.

        Raises
        ------
        BarrierMismatchError
            If the participants arrived with differing ``barrier_id``s.
        """
        if self.participants and set(self._arrived) >= self.participants:
            identifiers = set(self._arrived.values())
            if len(identifiers) > 1:
                arrivals = ", ".join(
                    f"core {core}: barrier {bid}"
                    for core, bid in sorted(self._arrived.items())
                )
                raise BarrierMismatchError(
                    f"participants arrived at different barriers ({arrivals})"
                )
            self._arrived.clear()
            self.episodes += 1
            return True
        return False


@dataclass
class SystemResult:
    """Outcome of one execution-driven simulation.

    Raises
    ------
    ValueError
        At construction, when the result is degenerate: a negative cycle
        count, or retired instructions / injected requests reported over a
        zero-cycle run.  Such results would make :attr:`ipc` a division by
        zero (or a silent lie) deep inside the energy and figure reports,
        so they are rejected where they are produced.
    """

    cycles: int
    core_stats: list[CoreStats]
    total: CoreStats = field(default_factory=CoreStats)
    injected_requests: int = 0
    completed_requests: int = 0
    barrier_episodes: int = 0

    def __post_init__(self) -> None:
        if not self.total.instructions:
            total = CoreStats()
            for stats in self.core_stats:
                total.merge(stats)
            self.total = total
        if self.cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {self.cycles}")
        if self.cycles == 0 and (
            self.total.instructions or self.injected_requests or self.completed_requests
        ):
            raise ValueError(
                "inconsistent SystemResult: "
                f"{self.total.instructions} instructions and "
                f"{self.injected_requests} requests reported over zero cycles"
            )

    @property
    def active_cores(self) -> int:
        """Number of cores that executed at least one instruction."""
        return sum(1 for stats in self.core_stats if stats.instructions > 0)

    @property
    def instructions(self) -> int:
        return self.total.instructions

    @property
    def ipc(self) -> float:
        """Cluster-wide instructions per cycle.

        Raises
        ------
        ValueError
            For a zero-cycle simulation (nothing ran, so no core retired an
            instruction): IPC is undefined there, and raising beats the old
            behaviour of silently reporting ``0.0``.
        """
        if self.cycles == 0:
            raise ValueError(
                "IPC is undefined: no core retired an instruction over a "
                "zero-cycle simulation"
            )
        return self.instructions / self.cycles


class MemPoolSystem:
    """Cycle-driven simulator of agents (programs) running on the cluster."""

    def __init__(
        self,
        cluster: MemPoolCluster,
        agents: dict[int, CoreAgent] | None = None,
        barrier_participants: set[int] | None = None,
    ) -> None:
        self.cluster = cluster
        config = cluster.config
        agents = agents or {}
        self.agents: list[CoreAgent] = [
            agents.get(core_id, IdleAgent()) for core_id in range(config.num_cores)
        ]
        if barrier_participants is None:
            barrier_participants = {
                core_id
                for core_id, agent in enumerate(self.agents)
                if not isinstance(agent, IdleAgent)
            }
        self.barrier = GlobalBarrier(barrier_participants)
        self.cores = [
            CoreTimingModel(core_id, cluster, agent, self.barrier)
            for core_id, agent in enumerate(self.agents)
        ]
        self._step_schedule = PermutationSchedule(len(self.cores), seed=1)
        self.cycle = 0

    @classmethod
    def synthetic(
        cls,
        cluster: MemPoolCluster,
        injection_rate: float,
        pattern: str = "uniform",
        injector: str = "poisson",
        requests_per_core: int = 32,
        seed: int = 0,
        pattern_params: dict | None = None,
        injector_params: dict | None = None,
    ) -> "MemPoolSystem":
        """A system whose cores run a registered workload closed-loop.

        Builds one :class:`repro.workloads.agents.WorkloadAgent` per core
        from the named destination pattern and injection process, so any
        workload from the :mod:`repro.workloads` registry also runs
        through the execution-driven simulator — reorder buffers,
        outstanding-load limits and barriers included — on either timing
        engine.  Imported lazily because the workload layer sits above
        the core layer.

        Parameters
        ----------
        cluster : MemPoolCluster
            The cluster to run on (its ``engine`` choice is honoured).
        injection_rate : float
            Offered load in requests per core per cycle (must be > 0).
        pattern, injector : str
            Workload registry names (see
            :func:`repro.workloads.available_patterns` /
            :func:`~repro.workloads.available_injectors`).
        requests_per_core : int
            Loads each core issues before finishing.
        seed : int
            Experiment seed the workload substreams derive from.
        pattern_params, injector_params : dict, optional
            Registry parameters (e.g. ``{"p_local": 0.25}``).
        """
        from repro.workloads.agents import build_synthetic_agents
        from repro.workloads.registry import make_injector, make_pattern

        config = cluster.config
        agents = build_synthetic_agents(
            cluster,
            make_pattern(pattern, config, seed=seed, **(pattern_params or {})),
            make_injector(
                injector,
                config.num_cores,
                injection_rate,
                seed=seed,
                **(injector_params or {}),
            ),
            requests_per_core,
        )
        return cls(cluster, agents=agents)

    # ------------------------------------------------------------------ #
    # Simulation loop
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        network = self.cluster.network
        completed = network.advance(self.cycle)
        for flit in completed:
            if flit.is_read:
                self.cores[flit.core_id].on_response(flit)
        for index in self._step_schedule.order(self.cycle):
            self.cores[index].step(self.cycle)
        if self.barrier.try_release():
            for core_id in self.barrier.participants:
                self.cores[core_id].release_barrier()
        self.cycle += 1

    def _all_done(self) -> bool:
        return all(core.idle for core in self.cores) and self.cluster.network.in_flight == 0

    def run(self, max_cycles: int = 2_000_000) -> SystemResult:
        """Run until every core finished and the network drained."""
        while not self._all_done():
            if self.cycle >= max_cycles:
                raise BarrierTimeoutError(self._deadlock_report(max_cycles))
            self.step()
        network = self.cluster.network
        return SystemResult(
            cycles=self.cycle,
            core_stats=[core.stats for core in self.cores],
            injected_requests=network.total_injected,
            completed_requests=network.total_completed,
            barrier_episodes=self.barrier.episodes,
        )

    def _deadlock_report(self, max_cycles: int) -> str:
        unfinished = [core.core_id for core in self.cores if not core.idle]
        waiting = [core.core_id for core in self.cores if core.barrier_waiting]
        return (
            f"simulation exceeded {max_cycles} cycles; "
            f"{len(unfinished)} cores unfinished (first: {unfinished[:8]}), "
            f"{len(waiting)} cores waiting at a barrier (first: {waiting[:8]}), "
            f"{self.cluster.network.in_flight} requests in flight"
        )


def run_program(
    cluster: MemPoolCluster,
    agents: dict[int, CoreAgent],
    max_cycles: int = 2_000_000,
) -> SystemResult:
    """Convenience wrapper: build a system, run it, return the result."""
    system = MemPoolSystem(cluster, agents)
    return system.run(max_cycles=max_cycles)
