"""Timing model of one Snitch core driving the cluster interconnect.

The core is single-issue: every cycle it either executes one compute
instruction, issues one memory operation, or stalls.  Loads are non-blocking
(Section III-B: *"Snitch supports a configurable number of outstanding load
instructions, which is useful to hide the SPM access latency"*) and tracked
by a reorder buffer; the core only stalls when an instruction *uses* a value
that has not returned yet, when the ROB is full, or when the interconnect
back-pressures its request port.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.agents import Barrier, Compute, CoreAgent, Load, Operation, Store, Use
from repro.core.rob import ReorderBuffer


@dataclass
class CoreStats:
    """Per-core activity counters (consumed by the energy/power models)."""

    compute_cycles: int = 0
    mul_instructions: int = 0
    local_loads: int = 0
    remote_loads: int = 0
    local_stores: int = 0
    remote_stores: int = 0
    dependency_stalls: int = 0
    structural_stalls: int = 0
    barrier_stalls: int = 0
    load_latency_sum: int = 0
    load_latency_max: int = 0
    finish_cycle: int = -1

    @property
    def instructions(self) -> int:
        """Total instructions executed (compute + memory operations)."""
        return (
            self.compute_cycles
            + self.local_loads
            + self.remote_loads
            + self.local_stores
            + self.remote_stores
        )

    @property
    def loads(self) -> int:
        return self.local_loads + self.remote_loads

    @property
    def stores(self) -> int:
        return self.local_stores + self.remote_stores

    @property
    def stall_cycles(self) -> int:
        return self.dependency_stalls + self.structural_stalls + self.barrier_stalls

    @property
    def average_load_latency(self) -> float:
        return self.load_latency_sum / self.loads if self.loads else 0.0

    def merge(self, other: "CoreStats") -> None:
        """Accumulate another core's counters into this one (cluster totals)."""
        self.compute_cycles += other.compute_cycles
        self.mul_instructions += other.mul_instructions
        self.local_loads += other.local_loads
        self.remote_loads += other.remote_loads
        self.local_stores += other.local_stores
        self.remote_stores += other.remote_stores
        self.dependency_stalls += other.dependency_stalls
        self.structural_stalls += other.structural_stalls
        self.barrier_stalls += other.barrier_stalls
        self.load_latency_sum += other.load_latency_sum
        self.load_latency_max = max(self.load_latency_max, other.load_latency_max)
        self.finish_cycle = max(self.finish_cycle, other.finish_cycle)


@dataclass
class _PendingOp:
    """The operation currently blocking the core's front end, if any."""

    operation: Operation | None = None


class CoreTimingModel:
    """Cycle-level model of one core executing an agent's operation stream."""

    def __init__(self, core_id: int, cluster, agent: CoreAgent, barrier) -> None:
        self.core_id = core_id
        self.cluster = cluster
        self.agent = agent
        self.barrier = barrier
        self.tile_id = cluster.config.tile_of_core(core_id)
        timing = cluster.config.timing
        self.rob = ReorderBuffer(timing.max_outstanding_loads)
        self.injection_queue: deque = deque()
        self.injection_depth = timing.injection_queue_depth
        self.stats = CoreStats()
        self.busy_until = 0
        self.barrier_waiting = False
        self.done = False
        self._ops = iter(agent.operations())
        self._pending = _PendingOp()
        self._tag_to_sequence: dict[object, int] = {}
        self._sequence = 0

    # ------------------------------------------------------------------ #
    # Interconnect interface
    # ------------------------------------------------------------------ #

    def on_response(self, flit) -> None:
        """Called by the system when a load response returns to this core."""
        self.rob.complete(flit.tag)
        self.rob.retire_ready()
        latency = flit.latency
        self.stats.load_latency_sum += latency
        self.stats.load_latency_max = max(self.stats.load_latency_max, latency)

    def release_barrier(self) -> None:
        """Called by the system when the barrier this core waits on opens."""
        self.barrier_waiting = False

    # ------------------------------------------------------------------ #
    # Per-cycle behaviour
    # ------------------------------------------------------------------ #

    def step(self, cycle: int) -> None:
        """Advance the core by one cycle."""
        self._progress_agent(cycle)
        self._try_inject(cycle)

    @property
    def idle(self) -> bool:
        """True once the core finished its program and drained its requests."""
        return self.done and not self.injection_queue

    # -- front end -------------------------------------------------------- #

    def _next_operation(self) -> Operation | None:
        if self._pending.operation is not None:
            return self._pending.operation
        try:
            operation = next(self._ops)
        except StopIteration:
            return None
        self._pending.operation = operation
        return operation

    def _consume(self) -> None:
        self._pending.operation = None

    def _progress_agent(self, cycle: int) -> None:
        if self.done:
            return
        if self.busy_until > cycle:
            return
        if self.barrier_waiting:
            self.stats.barrier_stalls += 1
            return
        while True:
            operation = self._next_operation()
            if operation is None:
                self.done = True
                self.stats.finish_cycle = cycle
                return
            if isinstance(operation, Compute):
                self._consume()
                self.stats.compute_cycles += operation.cycles
                self.stats.mul_instructions += operation.muls
                if operation.cycles > 0:
                    self.busy_until = cycle + operation.cycles
                    return
                continue
            if isinstance(operation, Use):
                sequence = self._tag_to_sequence.get(operation.tag)
                if sequence is None:
                    raise ValueError(
                        f"core {self.core_id} uses tag {operation.tag!r} "
                        "before any load produced it"
                    )
                if not self.rob.is_complete(sequence):
                    self.stats.dependency_stalls += 1
                    return
                self._consume()
                continue
            if isinstance(operation, Load):
                if self.rob.is_full or len(self.injection_queue) >= self.injection_depth:
                    self.stats.structural_stalls += 1
                    return
                self._issue_load(operation, cycle)
                self._consume()
                return
            if isinstance(operation, Store):
                if len(self.injection_queue) >= self.injection_depth:
                    self.stats.structural_stalls += 1
                    return
                self._issue_store(operation, cycle)
                self._consume()
                return
            if isinstance(operation, Barrier):
                self._consume()
                self.barrier_waiting = True
                self.barrier.arrive(self.core_id, operation.barrier_id)
                return
            raise TypeError(f"unknown core operation {operation!r}")

    def _issue_load(self, operation: Load, cycle: int) -> None:
        sequence = self._sequence
        self._sequence += 1
        if operation.tag is not None:
            self._tag_to_sequence[operation.tag] = sequence
        flit = self.cluster.make_flit(
            core_id=self.core_id,
            address=operation.address,
            is_write=False,
            cycle=cycle,
            tag=sequence,
        )
        self.rob.allocate(sequence)
        self.injection_queue.append(flit)
        if self.cluster.is_local_access(self.core_id, operation.address):
            self.stats.local_loads += 1
        else:
            self.stats.remote_loads += 1

    def _issue_store(self, operation: Store, cycle: int) -> None:
        flit = self.cluster.make_flit(
            core_id=self.core_id,
            address=operation.address,
            is_write=True,
            cycle=cycle,
            tag=None,
        )
        self.injection_queue.append(flit)
        if self.cluster.is_local_access(self.core_id, operation.address):
            self.stats.local_stores += 1
        else:
            self.stats.remote_stores += 1

    # -- back end --------------------------------------------------------- #

    def _try_inject(self, cycle: int) -> None:
        if not self.injection_queue:
            return
        flit = self.injection_queue[0]
        if self.cluster.network.try_inject(flit, cycle):
            self.injection_queue.popleft()
