"""Core agents: the operation stream a core executes on the timing model.

A *core agent* produces the sequence of operations a Snitch core performs.
Two kinds of agents exist:

* :class:`TraceAgent` wraps a plain Python generator yielding
  :class:`Compute` / :class:`Load` / :class:`Store` / :class:`Use` /
  :class:`Barrier` operations.  The benchmark kernels of Section V-C are
  written this way so that 64- and 256-core runs stay fast.
* ``repro.snitch.agent.SnitchAgent`` executes RV32IM(A) machine code on the
  functional ISS and emits the same operations, so small programs can be run
  with full functional fidelity.

Both feed :class:`repro.core.coremodel.CoreTimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator


@dataclass(frozen=True)
class Compute:
    """``cycles`` cycles of in-core computation (``muls`` of them multiplies).

    One compute cycle corresponds to one single-issue integer instruction; the
    split between simple ALU operations and multiplies only matters to the
    energy model.
    """

    cycles: int
    muls: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        if not 0 <= self.muls <= max(self.cycles, 0):
            raise ValueError("muls must be between 0 and cycles")


@dataclass(frozen=True)
class Load:
    """A 32-bit load from ``address``; ``tag`` names the result for `Use`."""

    address: int
    tag: object = None


@dataclass(frozen=True)
class Store:
    """A 32-bit store to ``address`` (posted: no response is awaited)."""

    address: int


@dataclass(frozen=True)
class Use:
    """Consume the result of the load previously issued with ``tag``.

    The core stalls until that load has returned — this is how the kernels
    express the data dependencies that bound how much latency the Snitch
    core's outstanding-load support can hide.
    """

    tag: object


@dataclass(frozen=True)
class Barrier:
    """Synchronise with all other participating cores."""

    barrier_id: int = 0


#: Union of every operation a core agent may yield.
Operation = Compute | Load | Store | Use | Barrier


class CoreAgent:
    """Interface of an operation producer for one core."""

    def operations(self) -> Iterator[Operation]:
        """Yield the operations the core executes, in program order."""
        raise NotImplementedError

    def on_load_data(self, tag: object, value: int) -> None:
        """Receive the functional data of a completed load (optional hook)."""


class TraceAgent(CoreAgent):
    """Wraps a generator (or iterable) of operations."""

    def __init__(self, operations: Iterator[Operation] | list[Operation]) -> None:
        self._operations = operations

    def operations(self) -> Iterator[Operation]:
        return iter(self._operations)


class IdleAgent(CoreAgent):
    """An agent that performs no work (used for inactive cores)."""

    def operations(self) -> Iterator[Operation]:
        return iter(())
