"""Configuration of the MemPool cluster.

The defaults correspond to the full MemPool system described in the paper:
256 Snitch cores organised in 64 tiles of 4 cores, 16 SPM banks per tile
(1 MiB of shared L1 in total), four groups of 16 tiles, and the hierarchical
TopH interconnect.  Smaller configurations (used by tests and the default
benchmark harness) scale the tile count down while keeping every architectural
mechanism in place.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    is_power_of,
    log2_int,
)

#: The paper's four topology identifiers (Section III-C).  The full
#: catalogue — these four plus the parameterized families — lives in the
#: topology registry (:mod:`repro.topologies.registry`), which is what
#: configuration validation checks against.
TOPOLOGIES = ("top1", "top4", "toph", "topx")

#: Number of bytes per 32-bit word.
WORD_BYTES = 4


@dataclass(frozen=True)
class TimingParameters:
    """Microarchitectural timing parameters shared by all topologies.

    These encode the register boundaries described in Section III: requests
    and responses cross one register at the tile master ports, one register
    in the middle of the 64x64 butterflies (Top1/Top4), and one register at
    the group boundary (TopH), plus the one-cycle bank access.
    """

    #: Depth of the elastic buffers behind each register boundary.
    elastic_buffer_depth: int = 2
    #: Maximum number of outstanding loads per Snitch core.
    max_outstanding_loads: int = 8
    #: Maximum number of requests a core can hold in its injection queue
    #: before the agent stalls (models the core's request FIFO).
    injection_queue_depth: int = 4
    #: Cycles taken by an L1 instruction-cache refill from L2 (AXI port).
    icache_refill_cycles: int = 20

    def validate(self) -> None:
        check_positive("elastic_buffer_depth", self.elastic_buffer_depth)
        check_positive("max_outstanding_loads", self.max_outstanding_loads)
        check_positive("injection_queue_depth", self.injection_queue_depth)
        check_positive("icache_refill_cycles", self.icache_refill_cycles)

    def to_dict(self) -> dict:
        """Plain-primitive representation (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TimingParameters":
        """Rebuild :class:`TimingParameters` from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class MemPoolConfig:
    """Static description of a MemPool cluster instance."""

    #: Number of tiles in the cluster (64 in the paper).
    num_tiles: int = 64
    #: Number of Snitch cores per tile (4 in the paper).
    cores_per_tile: int = 4
    #: Number of SPM banks per tile (16 in the paper).
    banks_per_tile: int = 16
    #: Number of local groups used by the hierarchical TopH topology.
    num_groups: int = 4
    #: Interconnect topology, by registry name: one of the paper's four
    #: (``top1``, ``top4``, ``toph``, ``topx``) or any family registered in
    #: :mod:`repro.topologies.registry` (``mesh``, ``torus``, ``ring``,
    #: ``butterfly``, ``fully_connected``, ``hierarchical``, ...).
    topology: str = "toph"
    #: Family-specific topology parameters (e.g. ``{"width": 8}`` for
    #: ``mesh``).  Accepts a mapping or an iterable of ``(name, value)``
    #: pairs; stored canonically as a sorted tuple of pairs so configurations
    #: stay hashable, comparable and stable under JSON round trips.
    topology_params: tuple = ()
    #: Radix of the butterfly networks (4 in the paper).
    butterfly_radix: int = 4
    #: SPM capacity per tile in bytes (16 KiB in the paper -> 1 MiB cluster).
    spm_bytes_per_tile: int = 16 * 1024
    #: Instruction-cache capacity per tile in bytes (2 KiB, 4-way).
    icache_bytes_per_tile: int = 2 * 1024
    #: Instruction-cache associativity.
    icache_ways: int = 4
    #: Instruction-cache line size in bytes.
    icache_line_bytes: int = 32
    #: Whether the hybrid addressing scheme (scrambling logic) is enabled.
    scrambling_enabled: bool = True
    #: Bytes of the per-tile sequential region (Section IV); must divide the
    #: tile SPM capacity.  The default gives each core a 1 KiB local stack and
    #: leaves 4 KiB per tile for other tile-local data.
    seq_region_bytes_per_tile: int = 8 * 1024
    #: Per-core stack size carved out of the sequential region.
    stack_bytes_per_core: int = 1024
    #: Microarchitectural timing parameters.
    timing: TimingParameters = field(default_factory=TimingParameters)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def __post_init__(self) -> None:
        check_positive("num_tiles", self.num_tiles)
        check_power_of_two("num_tiles", self.num_tiles)
        check_positive("cores_per_tile", self.cores_per_tile)
        check_power_of_two("banks_per_tile", self.banks_per_tile)
        check_positive("num_groups", self.num_groups)
        raw = self.topology_params
        pairs = raw.items() if hasattr(raw, "items") else raw
        params = tuple(sorted((str(key), value) for key, value in pairs))
        object.__setattr__(self, "topology_params", params)
        # Validate the (name, params) selection against the topology
        # registry.  Imported lazily: the registry's family modules import
        # this one.
        from repro.topologies.registry import validate_topology

        validate_topology(self.topology, dict(params))
        if self.butterfly_radix < 2:
            raise ValueError("butterfly_radix must be at least 2")
        if self.num_tiles % self.num_groups != 0:
            raise ValueError(
                f"num_tiles ({self.num_tiles}) must be divisible by "
                f"num_groups ({self.num_groups})"
            )
        if self.topology in ("top1", "top4") and not is_power_of(
            self.num_tiles, self.butterfly_radix
        ):
            raise ValueError(
                f"{self.topology} requires num_tiles to be a power of the "
                f"butterfly radix ({self.butterfly_radix}); got {self.num_tiles}"
            )
        if self.topology == "toph":
            tiles_per_group = self.num_tiles // self.num_groups
            if tiles_per_group > 1 and not is_power_of(
                tiles_per_group, self.butterfly_radix
            ):
                raise ValueError(
                    "toph requires tiles-per-group to be a power of the "
                    f"butterfly radix ({self.butterfly_radix}); got {tiles_per_group}"
                )
        check_positive("spm_bytes_per_tile", self.spm_bytes_per_tile)
        check_power_of_two("spm_bytes_per_tile", self.spm_bytes_per_tile)
        check_power_of_two("seq_region_bytes_per_tile", self.seq_region_bytes_per_tile)
        if self.seq_region_bytes_per_tile > self.spm_bytes_per_tile:
            raise ValueError(
                "seq_region_bytes_per_tile cannot exceed spm_bytes_per_tile"
            )
        check_positive("stack_bytes_per_core", self.stack_bytes_per_core)
        if self.stack_bytes_per_core * self.cores_per_tile > self.seq_region_bytes_per_tile:
            raise ValueError(
                "per-core stacks do not fit in the tile's sequential region: "
                f"{self.cores_per_tile} x {self.stack_bytes_per_core} B > "
                f"{self.seq_region_bytes_per_tile} B"
            )
        check_in_range("icache_ways", self.icache_ways, 1, 16)
        check_power_of_two("icache_line_bytes", self.icache_line_bytes)
        self.timing.validate()

    # ------------------------------------------------------------------ #
    # Derived sizes
    # ------------------------------------------------------------------ #

    @property
    def num_cores(self) -> int:
        """Total core count of the cluster."""
        return self.num_tiles * self.cores_per_tile

    @property
    def num_banks(self) -> int:
        """Total SPM bank count of the cluster."""
        return self.num_tiles * self.banks_per_tile

    @property
    def tiles_per_group(self) -> int:
        """Tiles per local group (TopH)."""
        return self.num_tiles // self.num_groups

    @property
    def l1_bytes(self) -> int:
        """Total shared L1 capacity in bytes."""
        return self.num_tiles * self.spm_bytes_per_tile

    @property
    def bank_bytes(self) -> int:
        """Capacity of a single SPM bank in bytes."""
        return self.spm_bytes_per_tile // self.banks_per_tile

    @property
    def bank_words(self) -> int:
        """Number of 32-bit words per SPM bank."""
        return self.bank_bytes // WORD_BYTES

    # Address-map bit fields (Section IV, Figure 4) ---------------------- #

    @property
    def byte_offset_bits(self) -> int:
        """Bits addressing the byte within a word (always 2 for 32-bit words)."""
        return log2_int(WORD_BYTES)

    @property
    def bank_offset_bits(self) -> int:
        """Bits selecting the bank within a tile (``b`` in the paper)."""
        return log2_int(self.banks_per_tile)

    @property
    def tile_offset_bits(self) -> int:
        """Bits selecting the tile (``t`` in the paper)."""
        return log2_int(self.num_tiles)

    @property
    def seq_row_bits(self) -> int:
        """Bits selecting the row within the per-tile sequential region (``s``)."""
        rows = self.seq_region_bytes_per_tile // (self.banks_per_tile * WORD_BYTES)
        return log2_int(max(rows, 1))

    @property
    def seq_region_total_bytes(self) -> int:
        """Total size of the sequential region across all tiles (``2**(S+t)``)."""
        return self.seq_region_bytes_per_tile * self.num_tiles

    # Core / tile / group index helpers ---------------------------------- #

    def tile_of_core(self, core_id: int) -> int:
        """Tile index that hosts global core ``core_id``."""
        self._check_core(core_id)
        return core_id // self.cores_per_tile

    def group_of_tile(self, tile_id: int) -> int:
        """Group index that hosts ``tile_id`` (tiles are grouped contiguously)."""
        self._check_tile(tile_id)
        return tile_id // self.tiles_per_group

    def group_of_core(self, core_id: int) -> int:
        """Group index that hosts global core ``core_id``."""
        return self.group_of_tile(self.tile_of_core(core_id))

    def tile_of_bank(self, bank_id: int) -> int:
        """Tile index that hosts global bank ``bank_id``."""
        self._check_bank(bank_id)
        return bank_id // self.banks_per_tile

    def local_core_index(self, core_id: int) -> int:
        """Index of ``core_id`` within its tile (0 .. cores_per_tile-1)."""
        self._check_core(core_id)
        return core_id % self.cores_per_tile

    def local_bank_index(self, bank_id: int) -> int:
        """Index of ``bank_id`` within its tile (0 .. banks_per_tile-1)."""
        self._check_bank(bank_id)
        return bank_id % self.banks_per_tile

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range [0, {self.num_cores})")

    def _check_tile(self, tile_id: int) -> None:
        if not 0 <= tile_id < self.num_tiles:
            raise ValueError(f"tile_id {tile_id} out of range [0, {self.num_tiles})")

    def _check_bank(self, bank_id: int) -> None:
        if not 0 <= bank_id < self.num_banks:
            raise ValueError(f"bank_id {bank_id} out of range [0, {self.num_banks})")

    # ------------------------------------------------------------------ #
    # Serialisation and hashing
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-primitive representation of the configuration.

        The returned dictionary contains only JSON-serialisable values
        (``timing`` becomes a nested dictionary) and round-trips through
        :meth:`from_dict`.  It is the canonical form used by
        :meth:`stable_hash` and by the result cache of
        :mod:`repro.experiments`.

        Examples
        --------
        >>> config = MemPoolConfig.tiny()
        >>> MemPoolConfig.from_dict(config.to_dict()) == config
        True
        """
        data = asdict(self)
        # Canonical JSON form: topology parameters as a plain mapping (the
        # sorted-pairs tuple is an internal hashability detail).
        data["topology_params"] = dict(self.topology_params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MemPoolConfig":
        """Rebuild a :class:`MemPoolConfig` from :meth:`to_dict` output.

        Parameters
        ----------
        data : dict
            A dictionary produced by :meth:`to_dict` (or hand-written with
            the same keys; missing keys fall back to the defaults).
        """
        payload = dict(data)
        timing = payload.pop("timing", None)
        if isinstance(timing, dict):
            timing = TimingParameters.from_dict(timing)
        if timing is not None:
            payload["timing"] = timing
        return cls(**payload)

    def stable_hash(self) -> str:
        """Content hash of the configuration, stable across processes.

        Unlike :func:`hash`, the value does not depend on
        ``PYTHONHASHSEED`` or the interpreter session, so it can key
        on-disk caches.  Two configurations hash equally iff their
        :meth:`to_dict` forms are equal.

        Returns
        -------
        str
            A 64-character hexadecimal SHA-256 digest.

        Examples
        --------
        >>> a = MemPoolConfig.tiny("top1")
        >>> b = MemPoolConfig.tiny("top1")
        >>> a.stable_hash() == b.stable_hash()
        True
        >>> a.stable_hash() == MemPoolConfig.tiny("toph").stable_hash()
        False
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @property
    def topology_param_dict(self) -> dict:
        """The topology parameters as a plain dictionary."""
        return dict(self.topology_params)

    def with_topology(self, topology: str, **params) -> "MemPoolConfig":
        """Return a copy with a different topology (and fresh parameters).

        The previous topology's parameters never carry over — each family
        accepts its own parameter names, so stale knobs would be rejected.
        """
        return replace(self, topology=topology, topology_params=tuple(params.items()))

    def with_scrambling(self, enabled: bool) -> "MemPoolConfig":
        """Return a copy of this configuration with scrambling toggled."""
        return replace(self, scrambling_enabled=enabled)

    @classmethod
    def full(cls, topology: str = "toph", **overrides) -> "MemPoolConfig":
        """The full 256-core MemPool cluster evaluated in the paper."""
        return cls(num_tiles=64, topology=topology, **overrides)

    @classmethod
    def scaled(cls, topology: str = "toph", **overrides) -> "MemPoolConfig":
        """A 64-core (16-tile) cluster preserving all architectural mechanisms.

        This is the default size for the benchmark harness; it keeps the four
        groups, the radix-4 butterflies and the 16-bank tiles of the paper
        while remaining fast enough for pure-Python cycle simulation.
        """
        return cls(num_tiles=16, topology=topology, **overrides)

    @classmethod
    def tiny(cls, topology: str = "toph", **overrides) -> "MemPoolConfig":
        """A 16-core (4-tile) cluster used by unit tests."""
        return cls(num_tiles=4, topology=topology, **overrides)

    def describe(self) -> str:
        """One-line human-readable summary of the configuration."""
        return (
            f"MemPool({self.topology}, {self.num_cores} cores, "
            f"{self.num_tiles} tiles x {self.cores_per_tile} cores, "
            f"{self.num_banks} banks, L1 {self.l1_bytes // 1024} KiB, "
            f"scrambling={'on' if self.scrambling_enabled else 'off'})"
        )
