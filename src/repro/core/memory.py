"""Functional model of the shared L1 scratchpad memory.

The functional contents are held in a flat word array indexed by the
program-visible byte address.  Placement across banks — and therefore timing
— is decided by the address map (:mod:`repro.addressing`); the functional
view is identical for all cores and for both addressing schemes, exactly as
in the real system where the scrambling logic changes *where* a word is
stored, not *what* the program observes.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import WORD_BYTES, MemPoolConfig

#: Mask used to wrap arithmetic to 32 bits.
WORD_MASK = 0xFFFF_FFFF


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned value as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x8000_0000 else value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer to its 32-bit unsigned representation."""
    return value & WORD_MASK


class SharedL1Memory:
    """Word-addressable functional storage backing the whole L1 pool."""

    def __init__(self, config: MemPoolConfig) -> None:
        self.config = config
        self._words = np.zeros(config.l1_bytes // WORD_BYTES, dtype=np.uint32)

    # ------------------------------------------------------------------ #
    # Word access (used by the ISS and by core agents)
    # ------------------------------------------------------------------ #

    def _word_index(self, address: int) -> int:
        if address % WORD_BYTES != 0:
            raise ValueError(f"unaligned word access at {address:#x}")
        if not 0 <= address < self.config.l1_bytes:
            raise ValueError(
                f"address {address:#x} outside L1 [0, {self.config.l1_bytes:#x})"
            )
        return address // WORD_BYTES

    def read_word(self, address: int) -> int:
        """Read the 32-bit word at ``address`` (returns an unsigned value)."""
        return int(self._words[self._word_index(address)])

    def write_word(self, address: int, value: int) -> None:
        """Write the 32-bit word at ``address``."""
        self._words[self._word_index(address)] = to_unsigned(value)

    def read_signed(self, address: int) -> int:
        """Read the word at ``address`` as a signed 32-bit integer."""
        return to_signed(self.read_word(address))

    def amo_add(self, address: int, value: int) -> int:
        """Atomic fetch-and-add; returns the previous value (unsigned)."""
        previous = self.read_word(address)
        self.write_word(address, previous + value)
        return previous

    def amo_swap(self, address: int, value: int) -> int:
        """Atomic swap; returns the previous value (unsigned)."""
        previous = self.read_word(address)
        self.write_word(address, value)
        return previous

    # ------------------------------------------------------------------ #
    # Bulk access (used to stage benchmark inputs and read back results)
    # ------------------------------------------------------------------ #

    def write_words(self, address: int, values) -> None:
        """Write a sequence of 32-bit values starting at ``address``."""
        array = np.asarray(values, dtype=np.int64)
        start = self._word_index(address)
        end = start + array.size
        if end > self._words.size:
            raise ValueError("bulk write overruns the L1 region")
        self._words[start:end] = (array & WORD_MASK).astype(np.uint32)

    def read_words(self, address: int, count: int, signed: bool = True) -> np.ndarray:
        """Read ``count`` consecutive words starting at ``address``."""
        start = self._word_index(address)
        end = start + count
        if end > self._words.size:
            raise ValueError("bulk read overruns the L1 region")
        words = self._words[start:end]
        if signed:
            return words.view(np.int32).astype(np.int64)
        return words.astype(np.int64)

    def write_matrix(self, address: int, matrix: np.ndarray) -> None:
        """Write a 2-D integer matrix in row-major order starting at ``address``."""
        self.write_words(address, np.asarray(matrix).reshape(-1))

    def read_matrix(self, address: int, rows: int, cols: int) -> np.ndarray:
        """Read a row-major 2-D signed matrix starting at ``address``."""
        return self.read_words(address, rows * cols).reshape(rows, cols)

    def clear(self) -> None:
        """Zero the whole memory."""
        self._words.fill(0)
