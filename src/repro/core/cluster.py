"""The MemPool cluster: tiles, banks, address map, interconnect and memory.

:class:`MemPoolCluster` ties together the structural view (tiles and groups),
the functional view (the shared L1 word array), the addressing scheme and the
timing view (the topology's stage network).  It is the object both the
execution-driven simulator (:class:`repro.core.system.MemPoolSystem`) and the
synthetic-traffic simulator (:mod:`repro.traffic`) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.addressing.layout import MemoryLayout
from repro.addressing.map import AddressMap, make_address_map
from repro.core.config import MemPoolConfig
from repro.core.memory import SharedL1Memory
from repro.interconnect.resources import Flit
from repro.interconnect.topology import ClusterTopology, build_topology


@dataclass(frozen=True)
class Tile:
    """Structural description of one tile (Figure 2)."""

    tile_id: int
    group: int
    core_ids: tuple[int, ...]
    bank_ids: tuple[int, ...]

    @property
    def num_cores(self) -> int:
        return len(self.core_ids)

    @property
    def num_banks(self) -> int:
        return len(self.bank_ids)


#: Timing-engine implementations selectable per cluster: the per-object
#: ``StageNetwork`` ("legacy"), the structure-of-arrays vector engine of
#: :mod:`repro.engine` ("vector"), the batched multi-simulation engine
#: ("batch", :mod:`repro.engine.batch`) that additionally advances many
#: compatible open-loop traffic simulations in one flattened state, or the
#: ring-buffer/typed-kernel engine ("compiled", :mod:`repro.engine.compiled`)
#: whose advance pass runs under Numba ``@njit`` when the optional
#: ``[perf]`` extra is installed (pure-Python reference kernels otherwise).
#: All four are cycle-exact for fixed seeds.  This tuple is the single
#: source of truth — the engine package and
#: :class:`repro.evaluation.settings.ExperimentSettings` re-use it.
ENGINES = ("legacy", "vector", "batch", "compiled")


class MemPoolCluster:
    """A configured MemPool cluster instance.

    Parameters
    ----------
    config : MemPoolConfig, optional
        Cluster configuration; the paper's full system by default.
    engine : str
        Timing-engine implementation, one of :data:`ENGINES`.  ``"vector"``
        runs the cycle-level transport on the structure-of-arrays engine of
        :mod:`repro.engine` (same completion cycles, several times faster);
        ``"legacy"`` keeps the original per-object stage network.
    """

    def __init__(
        self, config: MemPoolConfig | None = None, engine: str = "legacy"
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.config = config or MemPoolConfig()
        self.engine_kind = engine
        self.address_map: AddressMap = make_address_map(self.config)
        self.topology: ClusterTopology = build_topology(self.config)
        self.memory = SharedL1Memory(self.config)
        self.layout = MemoryLayout(self.config)
        self.tiles = self._build_tiles()
        self._next_flit_id = 0
        self._vector_network = None
        self._compiled_network = None

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def _build_tiles(self) -> tuple[Tile, ...]:
        config = self.config
        tiles = []
        for tile_id in range(config.num_tiles):
            core_base = tile_id * config.cores_per_tile
            bank_base = tile_id * config.banks_per_tile
            tiles.append(
                Tile(
                    tile_id=tile_id,
                    group=config.group_of_tile(tile_id),
                    core_ids=tuple(range(core_base, core_base + config.cores_per_tile)),
                    bank_ids=tuple(range(bank_base, bank_base + config.banks_per_tile)),
                )
            )
        return tuple(tiles)

    @property
    def network(self):
        """The cycle engine flits travel through.

        For ``engine="legacy"`` this is the topology's per-object
        :class:`~repro.interconnect.resources.StageNetwork`; for
        ``engine="vector"`` it is a
        :class:`~repro.engine.vector.VectorStageNetwork` facade over the
        structure-of-arrays engine, built lazily on first access.  Both
        expose the same ``advance`` / ``try_inject`` / ``drain`` interface.
        ``engine="compiled"`` gets the same facade over the ring-buffer
        :class:`~repro.engine.compiled.CompiledEngine` (the typed-array
        kernels of :mod:`repro.engine.kernel`).  ``engine="batch"`` batches
        at the *simulation* level (the open-loop traffic driver goes
        through :class:`repro.engine.batch.TrafficBatch` and never touches
        this property); object-model callers such as the execution-driven
        simulator get the vector facade, so results stay identical
        whichever engine name selected them.
        """
        if self.engine_kind in ("vector", "batch", "compiled"):
            if self._vector_network is None:
                from repro.engine import VectorStageNetwork

                if self.engine_kind == "compiled":
                    from repro.engine import CompiledEngine

                    self._vector_network = VectorStageNetwork(
                        self.topology,
                        compiled=self.compiled_network(),
                        engine_cls=CompiledEngine,
                    )
                else:
                    self._vector_network = VectorStageNetwork(
                        self.topology, compiled=self.compiled_network()
                    )
            return self._vector_network
        return self.topology.network

    def compiled_network(self):
        """This cluster's topology compiled for the SoA engines (cached).

        The :class:`~repro.engine.compile.CompiledNetwork` is shared by the
        vector facade and the batched traffic driver, so a cluster never
        compiles its path tables twice.
        """
        if self._compiled_network is None:
            from repro.engine import CompiledNetwork

            self._compiled_network = CompiledNetwork(self.topology)
        return self._compiled_network

    def tile_of_core(self, core_id: int) -> Tile:
        return self.tiles[self.config.tile_of_core(core_id)]

    # ------------------------------------------------------------------ #
    # Workload entry point
    # ------------------------------------------------------------------ #

    def traffic_simulation(
        self,
        injection_rate: float,
        pattern: str | object | None = None,
        injector: str | object | None = None,
        seed: int = 0,
        pattern_params: dict | None = None,
        injector_params: dict | None = None,
    ):
        """Build an open-loop traffic simulation of this cluster.

        Thin entry point over
        :class:`repro.traffic.simulation.TrafficSimulation` accepting
        workload registry names (``pattern="tornado"``,
        ``injector="bursty"``) or pre-built components; runs on whichever
        timing engine this cluster was constructed with.  Imported lazily
        because the traffic layer sits above the core layer.
        """
        from repro.traffic.simulation import TrafficSimulation

        return TrafficSimulation(
            self,
            injection_rate,
            pattern=pattern,
            seed=seed,
            injector=injector,
            pattern_params=pattern_params,
            injector_params=injector_params,
        )

    # ------------------------------------------------------------------ #
    # Request construction
    # ------------------------------------------------------------------ #

    def _allocate_flit_id(self) -> int:
        flit_id = self._next_flit_id
        self._next_flit_id += 1
        return flit_id

    def make_flit(
        self,
        core_id: int,
        address: int,
        is_write: bool,
        cycle: int,
        tag: object = None,
    ) -> Flit:
        """Build the flit for a memory access to a program-visible address."""
        location = self.address_map.decode(address)
        bank_id = location.global_bank(self.config.banks_per_tile)
        return self.make_bank_flit(core_id, bank_id, is_write, cycle, tag)

    def make_bank_flit(
        self,
        core_id: int,
        bank_id: int,
        is_write: bool,
        cycle: int,
        tag: object = None,
    ) -> Flit:
        """Build the flit for a memory access targeting a specific bank.

        On a vector-engine cluster the resource path is left empty: the
        engine routes by its compiled path tables, so materialising the
        per-flit resource list would be pure overhead on the hot path
        (``Flit.position`` bookkeeping comes from the same tables).
        """
        if self.engine_kind == "legacy":
            path: list | tuple = self.topology.build_path(
                core_id, bank_id, needs_response=not is_write
            )
        else:
            path = ()
        return Flit(
            flit_id=self._allocate_flit_id(),
            core_id=core_id,
            bank_id=bank_id,
            path=path,
            is_write=is_write,
            created_cycle=cycle,
            tag=tag,
        )

    # ------------------------------------------------------------------ #
    # Locality helpers
    # ------------------------------------------------------------------ #

    def is_local_access(self, core_id: int, address: int) -> bool:
        """True if ``address`` maps to a bank in ``core_id``'s own tile."""
        return self.address_map.tile_of(address) == self.config.tile_of_core(core_id)

    def is_local_bank(self, core_id: int, bank_id: int) -> bool:
        """True if ``bank_id`` belongs to ``core_id``'s own tile."""
        return self.config.tile_of_bank(bank_id) == self.config.tile_of_core(core_id)

    def zero_load_latency(self, core_id: int, bank_id: int) -> int:
        """Round-trip latency of an uncontended load from ``core_id`` to ``bank_id``."""
        return self.topology.zero_load_latency(core_id, bank_id)

    def describe(self) -> str:
        """Human-readable summary of the cluster."""
        summary = self.topology.structural_summary()
        return (
            f"{self.config.describe()}\n"
            f"  register stages: {summary['register_stages']}, "
            f"arbitration points: {summary['arbitration_points']}, "
            f"remote ports/tile: {summary['remote_ports_per_tile']}"
        )
