"""String-keyed registry of interconnect topologies.

The registry is what makes topologies *pluggable*, exactly like the
workload registry (:mod:`repro.workloads.registry`) made traffic patterns
pluggable: every consumer — :class:`~repro.core.config.MemPoolConfig`
validation, :func:`repro.interconnect.topology.build_topology`, the
evaluation drivers, the sweep builders and both CLIs — selects a topology
by name and passes parameters as plain primitives, so a family registered
here is immediately buildable through every engine, the experiment grid
and the cached sweep infrastructure without touching any of those layers.

The four paper topologies (``top1``, ``top4``, ``toph``, ``topx``) are
registered entries like any other; the parameterized families of
:mod:`repro.topologies.families` extend the catalogue.  Each entry carries
per-parameter validators: :func:`make_topology` rejects unknown names
(listing the catalogue) and unknown or invalid parameters *before*
constructing anything, so a typo'd ``--topology`` or sweep grid fails at
expansion time rather than deep inside a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.config import MemPoolConfig
from repro.interconnect.topology import (
    ClusterTopology,
    IdealTopology,
    Top1Topology,
    Top4Topology,
    TopHTopology,
)
from repro.topologies.families import (
    ButterflyTopology,
    FullyConnectedTopology,
    HierarchicalTopology,
    MeshTopology,
    RingTopology,
    TorusTopology,
)

#: A per-parameter validator: called with the value, raises ValueError.
Validator = Callable[[Any], None]


def _positive_int(name: str) -> Validator:
    """Validator factory: the parameter must be an integer >= 1."""

    def check(value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValueError(f"{name} must be a positive integer, got {value!r}")

    return check


def _int_at_least(name: str, minimum: int) -> Validator:
    """Validator factory: the parameter must be an integer >= ``minimum``."""

    def check(value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise ValueError(f"{name} must be an integer >= {minimum}, got {value!r}")

    return check


@dataclass(frozen=True)
class TopologyEntry:
    """One registered topology family.

    Parameters
    ----------
    name : str
        Registry key, also the CLI spelling (e.g. ``"mesh"``).
    factory : callable
        Constructs the topology as ``factory(config, **params)``.
    summary : str
        One-line description shown by catalogue listings.
    params : mapping of str to callable
        Accepted parameter names mapped to validators; parameters not
        listed here are rejected by name.
    round_trip : str
        Human-readable zero-load remote round-trip formula (the closed
        form ``analytic_round_trip_latency`` implements), shown in the
        generated catalogue tables of README.md / docs/architecture.md.
    """

    name: str
    factory: Callable[..., ClusterTopology]
    summary: str
    params: Mapping[str, Validator] = field(default_factory=dict)
    round_trip: str = "—"

    def validate(self, params: Mapping[str, Any]) -> None:
        """Reject unknown parameter names and invalid values.

        Every error names the offending key and lists the valid choices,
        so a typo'd CLI spec or sweep grid reads as a correction, not a
        puzzle.
        """
        accepted = ", ".join(sorted(self.params)) or "none"
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {', '.join(unknown)} for topology "
                f"{self.name!r}; accepted: {accepted}"
            )
        for key, value in params.items():
            try:
                self.params[key](value)
            except ValueError as error:
                raise ValueError(
                    f"invalid value for parameter {key!r} of topology "
                    f"{self.name!r}: {error}"
                ) from None


_TOPOLOGIES: dict[str, TopologyEntry] = {}


def register_topology(
    name: str,
    factory: Callable[..., ClusterTopology],
    summary: str,
    params: Mapping[str, Validator] | None = None,
    round_trip: str = "—",
) -> None:
    """Register a topology family under ``name`` (overwrites quietly)."""
    _TOPOLOGIES[name] = TopologyEntry(
        name, factory, summary, dict(params or {}), round_trip
    )


def _lookup(name: str) -> TopologyEntry:
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; available: {', '.join(sorted(_TOPOLOGIES))}"
        ) from None


def topology_entry(name: str) -> TopologyEntry:
    """The registered :class:`TopologyEntry` of ``name``.

    Raises the same unknown-name ``ValueError`` (listing the catalogue) as
    :func:`make_topology`; used by callers — the differential fuzzer, the
    replay-spec parser — that need the accepted parameter names without
    building anything.
    """
    return _lookup(name)


def validate_topology(name: str, params: Mapping[str, Any]) -> None:
    """Check a (name, params) selection against the registry.

    Raises ``ValueError`` for unknown names, unknown parameter names and
    invalid parameter values — without building anything.  This is what
    :class:`~repro.core.config.MemPoolConfig` calls at construction time,
    so a bad selection fails before it is hashed into a cache key or
    shipped to a worker process.
    """
    _lookup(name).validate(params)


def make_topology(
    name: str, config: MemPoolConfig, **params: Any
) -> ClusterTopology:
    """Build the registered topology ``name`` over ``config``.

    Parameters
    ----------
    name : str
        Registry key of the topology (see :func:`available_topologies`).
    config : MemPoolConfig
        Cluster the topology connects.
    **params
        Family-specific knobs (e.g. ``width=4, height=4`` for ``mesh``),
        validated against the entry before construction.

    Examples
    --------
    >>> topology = make_topology("mesh", MemPoolConfig.tiny("mesh"))
    >>> topology.zero_load_latency(0, 0)
    1
    >>> make_topology("warp", MemPoolConfig.tiny())
    Traceback (most recent call last):
        ...
    ValueError: unknown topology 'warp'; available: ...
    """
    entry = _lookup(name)
    entry.validate(params)
    return entry.factory(config, **params)


def available_topologies() -> tuple[str, ...]:
    """Sorted registry keys of every topology family."""
    return tuple(sorted(_TOPOLOGIES))


def topology_catalogue() -> tuple[TopologyEntry, ...]:
    """Every registered entry, sorted by name (for listings/docs)."""
    return tuple(_TOPOLOGIES[name] for name in available_topologies())


def parse_topology_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Parse a ``name[:k=v,k2=v2]`` command-line topology spec.

    Values are parsed as int, then float, then the literals
    ``true``/``false``, and fall back to strings.  The (name, params) pair
    is validated against the registry before it is returned.

    Examples
    --------
    >>> parse_topology_spec("toph")
    ('toph', {})
    >>> parse_topology_spec("mesh:width=8,height=2")
    ('mesh', {'width': 8, 'height': 2})
    """
    name, _, raw = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(
            f"topology spec {spec!r} is missing the topology name before "
            f"':'; available: {', '.join(available_topologies())}"
        )
    # Resolve the name first so parameter errors can list the family's
    # accepted keys (and an unknown name fails with the catalogue).
    entry = _lookup(name)
    accepted = ", ".join(sorted(entry.params)) or "none"
    params: dict[str, Any] = {}
    if raw.strip():
        for item in raw.split(","):
            key, separator, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not key or not separator or not value:
                missing = "key" if not key else "'='" if not separator else "value"
                raise ValueError(
                    f"malformed parameter {item.strip()!r} in topology spec "
                    f"{spec!r} (missing the {missing}); expected "
                    f"name:key=value,key=value — accepted parameters for "
                    f"{name!r}: {accepted}"
                )
            if key in params:
                raise ValueError(
                    f"duplicate parameter {key!r} in topology spec {spec!r}; "
                    f"each of ({accepted}) may appear once"
                )
            params[key] = parse_scalar(value)
    entry.validate(params)
    return name, params


def parse_scalar(text: str) -> Any:
    """Best-effort scalar parsing of one CLI ``key=value`` parameter value.

    Tries int, then float, then the literals ``true``/``false``; anything
    else stays a string.  Shared by the topology spec parser and the
    validation layer's fuzz-replay specs.
    """
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


#: Backwards-compatible private alias of :func:`parse_scalar`.
_parse_value = parse_scalar


# --------------------------------------------------------------------------- #
# Catalogue
# --------------------------------------------------------------------------- #

register_topology(
    "top1", Top1Topology,
    "paper Top1: one shared NxN radix-4 butterfly per direction (K=1)",
    round_trip="5 cycles",
)
register_topology(
    "top4", Top4Topology,
    "paper Top4: four parallel NxN butterflies, one per core lane (K=4)",
    round_trip="5 cycles",
)
register_topology(
    "toph", TopHTopology,
    "paper TopH: local 16x16 group crossbars + per-group-pair butterflies",
    round_trip="3 in-group / 5 cross-group",
)
register_topology(
    "topx", IdealTopology,
    "paper TopX: ideal single-cycle full crossbar baseline (infeasible)",
    round_trip="1 cycle",
)
register_topology(
    "butterfly", ButterflyTopology,
    "K parallel NxN radix-R butterflies (generalises top1/top4)",
    params={"radix": _int_at_least("radix", 2), "ports": _positive_int("ports")},
    round_trip="5 cycles",
)
register_topology(
    "mesh", MeshTopology,
    "2D tile grid, XY dimension-ordered routing, latency 3 + 2*distance",
    params={"width": _positive_int("width"), "height": _positive_int("height")},
    round_trip="3 + 2·manhattan distance",
)
register_topology(
    "torus", TorusTopology,
    "2D wrap-around grid with dateline VCs, latency 3 + 2*ring distance",
    params={"width": _positive_int("width"), "height": _positive_int("height")},
    round_trip="3 + 2·ring distance",
)
register_topology(
    "ring", RingTopology,
    "single bidirectional tile ring (1-D torus), minimal wiring",
    round_trip="3 + 2·ring distance",
)
register_topology(
    "fully_connected", FullyConnectedTopology,
    "dedicated registered link per tile pair, 3-cycle remote round trips",
    round_trip="3 cycles",
)
register_topology(
    "hierarchical", HierarchicalTopology,
    "TopH generalised: configurable group count and butterfly radix",
    params={"groups": _positive_int("groups"), "radix": _int_at_least("radix", 2)},
    round_trip="3 in-group / 5 cross-group",
)
