"""Pluggable interconnect topologies: registry, paper entries, new families.

This package turns the interconnect topology — previously a hardcoded
four-way choice in :mod:`repro.interconnect.topology` — into a registry of
parameterized families, selected by name everywhere a topology appears:

* ``MemPoolConfig(topology="mesh", topology_params={"width": 8})``
  validates the selection at construction time;
* :func:`repro.interconnect.topology.build_topology` builds through
  :func:`make_topology`, so clusters, the traffic layers, every engine and
  the batched sweep runner consume any registered family with no changes;
* both CLIs accept ``--topology name:k=v,k2=v2`` and the ``topologies``
  experiment sweeps the whole catalogue.

See :mod:`repro.topologies.registry` for the catalogue and
:mod:`repro.topologies.families` for the routing and pipeline-level
construction of each family.
"""

from repro.topologies.families import (
    ButterflyTopology,
    FullyConnectedTopology,
    HierarchicalTopology,
    MeshTopology,
    RingTopology,
    TorusTopology,
    default_grid_dims,
)
from repro.topologies.registry import (
    TopologyEntry,
    available_topologies,
    make_topology,
    parse_topology_spec,
    register_topology,
    topology_catalogue,
    validate_topology,
)

__all__ = [
    "ButterflyTopology",
    "FullyConnectedTopology",
    "HierarchicalTopology",
    "MeshTopology",
    "RingTopology",
    "TorusTopology",
    "TopologyEntry",
    "available_topologies",
    "default_grid_dims",
    "make_topology",
    "parse_topology_spec",
    "register_topology",
    "topology_catalogue",
    "validate_topology",
]
