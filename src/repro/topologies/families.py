"""Parameterized interconnect topology families beyond the paper's four.

The paper evaluates four fixed interconnects (Top1, Top4, TopH, TopX —
:mod:`repro.interconnect.topology`).  This module generalises them into
*families*: every class below is a :class:`~repro.interconnect.topology.
ClusterTopology` whose structure is a function of constructor parameters,
so one registry entry (:mod:`repro.topologies.registry`) covers a whole
design space.  Because a topology's entire timing contract is the resource
list returned by ``build_path``, every family runs unchanged on all three
engines — the legacy :class:`~repro.interconnect.resources.StageNetwork`,
the vectorized :class:`~repro.engine.vector.VectorEngine` and the batched
:class:`~repro.engine.batch.SimBatch` — with no engine-side code per
family.

Pipeline levels
---------------
The engines process register stages downstream-first, and the vector
engine requires stage levels to *strictly increase* along every path (the
level-monotonicity invariant of :mod:`repro.engine.compile`).  The paper
topologies use the five classic levels; the multi-hop families here
allocate one level per *hop position* instead:

* request-side hop registers take levels strictly below
  :data:`~repro.interconnect.resources.LEVEL_BANK`, one per ring/row
  position, ordered in the direction of travel;
* response-side hop registers mirror them strictly above the bank level.

For the :class:`TorusTopology` rings, whose wrap-around links would make
any per-position level assignment cyclic, each unidirectional ring carries
two *dateline virtual channels*: a flit starts on VC0 and switches to VC1
when it crosses the wrap link, exactly the discipline real torus networks
use for deadlock freedom.  Register stages are per ``(link, vc)``, so
levels increase monotonically along every route while flits on the same
link-and-VC still contend for the same buffer.

Zero-load latencies
-------------------
Every family implements ``analytic_round_trip_latency`` — the closed-form
register count of an uncontended load — which the test suite checks
against the built path for every registered topology:

=================  =====================================================
family             round-trip latency of a remote load
=================  =====================================================
butterfly          5 cycles (master + middle layer + bank + back)
mesh               ``3 + 2 * manhattan_distance(src_tile, dst_tile)``
torus / ring       ``3 + 2 * ring_distance(src_tile, dst_tile)``
fully_connected    3 cycles (master + bank + master)
hierarchical       3 cycles in-group, 5 cycles cross-group
=================  =====================================================

Local (same-tile) accesses are always the single bank cycle.
"""

from __future__ import annotations

from repro.core.config import MemPoolConfig
from repro.interconnect.butterfly import ButterflyNetwork
from repro.interconnect.crossbar import CrossbarSwitch
from repro.interconnect.resources import (
    LEVEL_BANK,
    LEVEL_BOUNDARY_REQ,
    LEVEL_BOUNDARY_RESP,
    LEVEL_MASTER_REQ,
    LEVEL_MASTER_RESP,
    RegisterStage,
)
from repro.interconnect.topology import ClusterTopology, Top1Topology
from repro.utils.validation import is_power_of


def _register_switch_outputs(topology: ClusterTopology, butterfly: ButterflyNetwork) -> None:
    """Register a butterfly's switch outputs with the topology's network."""
    for switch in butterfly.all_switches:
        for output in switch.outputs:
            if isinstance(output, RegisterStage):
                topology.network.add_stage(output)
            else:
                topology.network.add_arbiter(output)


def _resolve_grid_dims(
    config: MemPoolConfig, width: int | None, height: int | None, family: str
) -> tuple[int, int]:
    """Resolve and validate the (width, height) of a grid family.

    Missing dimensions are derived from the given one (or from
    :func:`default_grid_dims` when both are absent); the resolved grid
    must tile ``config.num_tiles`` exactly.
    """
    if width is None and height is None:
        width, height = default_grid_dims(config.num_tiles)
    elif width is None:
        width = config.num_tiles // int(height)
    elif height is None:
        height = config.num_tiles // int(width)
    width, height = int(width), int(height)
    if width < 1 or height < 1 or width * height != config.num_tiles:
        raise ValueError(
            f"{family} dimensions {width}x{height} do not tile "
            f"num_tiles={config.num_tiles}"
        )
    return width, height


def default_grid_dims(num_tiles: int) -> tuple[int, int]:
    """The default (width, height) factorisation of a tile grid.

    The widest power-of-two-balanced grid: the smallest power of two whose
    square covers ``num_tiles`` becomes the width.  16 tiles -> 4x4,
    64 tiles -> 8x8, 8 tiles -> 4x2.

    Examples
    --------
    >>> default_grid_dims(16)
    (4, 4)
    >>> default_grid_dims(8)
    (4, 2)
    """
    width = 1
    while width * width < num_tiles:
        width *= 2
    if num_tiles % width:
        raise ValueError(
            f"num_tiles ({num_tiles}) has no power-of-two grid factorisation; "
            "pass explicit width/height topology parameters"
        )
    return width, num_tiles // width


class ButterflyTopology(ClusterTopology):
    """``butterfly``: K parallel NxN radix-R butterflies between the tiles.

    The family that subsumes Top1 (``ports=1``) and Top4
    (``ports=cores_per_tile``): ``ports`` parallel butterflies connect the
    tiles, and each core uses the lane ``local_core_index % ports``, so
    intermediate values share one tile port between subsets of a tile's
    cores.  ``radix`` selects the switch degree (more, smaller layers for
    radix 2; fewer, larger switches for higher radices); like the paper's
    64x64 networks, exactly one middle layer is registered, so the remote
    round-trip latency is 5 cycles regardless of radix.
    """

    name = "butterfly"

    def __init__(
        self, config: MemPoolConfig, radix: int | None = None, ports: int | None = None
    ) -> None:
        super().__init__(config)
        self.radix = int(radix) if radix is not None else config.butterfly_radix
        self.ports = int(ports) if ports is not None else 1
        if not 1 <= self.ports <= config.cores_per_tile:
            raise ValueError(
                f"butterfly ports must be in [1, cores_per_tile="
                f"{config.cores_per_tile}], got {self.ports}"
            )
        if config.num_tiles > 1 and not is_power_of(config.num_tiles, self.radix):
            raise ValueError(
                f"butterfly requires num_tiles to be a power of the radix "
                f"({self.radix}); got {config.num_tiles}"
            )
        tiles = config.num_tiles
        depth = config.timing.elastic_buffer_depth
        middle_layer = Top1Topology._middle_layer(tiles, self.radix)
        self.request_butterflies: list[ButterflyNetwork] = []
        self.response_butterflies: list[ButterflyNetwork] = []
        for lane in range(self.ports):
            request = ButterflyNetwork(
                f"bfly.req{lane}", tiles, radix=self.radix,
                registered_layers=middle_layer, buffer_depth=depth,
                registered_level=LEVEL_BOUNDARY_REQ,
            )
            response = ButterflyNetwork(
                f"bfly.resp{lane}", tiles, radix=self.radix,
                registered_layers=middle_layer, buffer_depth=depth,
                registered_level=LEVEL_BOUNDARY_RESP,
            )
            _register_switch_outputs(self, request)
            _register_switch_outputs(self, response)
            self.request_butterflies.append(request)
            self.response_butterflies.append(response)
        self.master_request_ports = [
            [
                self._add_stage(f"tile{t}.master_req.l{lane}", LEVEL_MASTER_REQ)
                for lane in range(self.ports)
            ]
            for t in range(tiles)
        ]
        self.master_response_ports = [
            [
                self._add_stage(f"tile{t}.master_resp.l{lane}", LEVEL_MASTER_RESP)
                for lane in range(self.ports)
            ]
            for t in range(tiles)
        ]

    def _lane(self, core_id: int) -> int:
        return self.config.local_core_index(core_id) % self.ports

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        lane = self._lane(core_id)
        return [self.master_request_ports[src_tile][lane]] + self.request_butterflies[
            lane
        ].route(src_tile, dst_tile)

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        lane = self._lane(core_id)
        return self.response_butterflies[lane].route(dst_tile, src_tile) + [
            self.master_response_ports[src_tile][lane]
        ]

    def remote_ports_per_tile(self) -> int:
        """K of the paper: the number of parallel butterfly lanes."""
        return self.ports

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """1 cycle local, 5 cycles remote (master + middle + bank + back)."""
        config = self.config
        if config.tile_of_core(core_id) == config.tile_of_bank(bank_id):
            return 1
        return 5


class FullyConnectedTopology(ClusterTopology):
    """``fully_connected``: one registered NxN crossbar between all tiles.

    Every tile owns a dedicated link to every other tile: a request crosses
    the tile's master register, the destination tile's crossbar output
    arbiter and the bank — 3-cycle remote round trips, the lowest latency
    any physical (registered-boundary) topology can reach.  The quadratic
    crosspoint count is what the paper's TopX idealisation abstracts away;
    this family keeps the timing honest (registered boundaries, per-output
    arbitration) while modelling the wiring the physical tables price.
    """

    name = "fully_connected"

    def __init__(self, config: MemPoolConfig) -> None:
        super().__init__(config)
        tiles = config.num_tiles
        self.request_xbar = CrossbarSwitch(
            "fc.req", tiles, tiles, registered_outputs=False
        )
        self.response_xbar = CrossbarSwitch(
            "fc.resp", tiles, tiles, registered_outputs=False
        )
        for xbar in (self.request_xbar, self.response_xbar):
            for output in xbar.outputs:
                self.network.add_arbiter(output)
        self.master_request_ports = [
            self._add_stage(f"tile{t}.master_req", LEVEL_MASTER_REQ)
            for t in range(tiles)
        ]
        self.master_response_ports = [
            self._add_stage(f"tile{t}.master_resp", LEVEL_MASTER_RESP)
            for t in range(tiles)
        ]

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        return [
            self.master_request_ports[src_tile],
            self.request_xbar.output(dst_tile),
        ]

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        return [
            self.response_xbar.output(src_tile),
            self.master_response_ports[src_tile],
        ]

    def remote_ports_per_tile(self) -> int:
        """One request port per tile into the full crossbar."""
        return 1

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """1 cycle local, 3 cycles remote (master + bank + master)."""
        config = self.config
        if config.tile_of_core(core_id) == config.tile_of_bank(bank_id):
            return 1
        return 3


class MeshTopology(ClusterTopology):
    """``mesh``: a 2D tile grid with XY dimension-ordered routing.

    Tiles sit on a ``width x height`` grid (tile ``t`` at
    ``(t % width, t // width)``); requests travel the X dimension first,
    then Y, crossing one registered link per hop, so latency grows with
    Manhattan distance — the distance-dependence the paper's single-stage
    butterflies flatten away.  Request hop registers take one pipeline
    level per row/column position (X levels before Y levels, all below the
    bank level), which is exactly what makes XY routing satisfy the vector
    engine's level-monotonicity invariant; the response network mirrors
    the structure above the bank level.
    """

    name = "mesh"

    def __init__(
        self, config: MemPoolConfig, width: int | None = None, height: int | None = None
    ) -> None:
        super().__init__(config)
        self.width, self.height = _resolve_grid_dims(config, width, height, self.name)
        self._build_links()

    # -- level allocation (see the module docstring) ---------------------- #

    def _level_bases(self) -> tuple[int, int, int, int, int, int]:
        """(master_req, req_x, req_y, resp_x, resp_y, master_resp) bases."""
        req_y = LEVEL_BANK - max(self.height - 1, 1)
        req_x = req_y - max(self.width - 1, 1)
        resp_x = LEVEL_BANK + 1
        resp_y = resp_x + max(self.width - 1, 1)
        return (
            req_x - 1,
            req_x,
            req_y,
            resp_x,
            resp_y,
            resp_y + max(self.height - 1, 1),
        )

    def _build_links(self) -> None:
        """Create the per-link registers of both routing planes."""
        master_lvl, req_x, req_y, resp_x, resp_y, master_resp_lvl = self._level_bases()
        width, height = self.width, self.height
        self.master_request_ports = [
            self._add_stage(f"{self.name}.tile{t}.master_req", master_lvl)
            for t in range(self.config.num_tiles)
        ]
        # plane -> direction -> {(x, y): register on the link leaving (x, y)}
        self._links: dict[tuple[str, str], dict[tuple[int, int], RegisterStage]] = {}
        for plane, x_base, y_base in (("req", req_x, req_y), ("resp", resp_x, resp_y)):
            east = {
                (x, y): self._add_stage(f"{self.name}.{plane}.e{x}_{y}", x_base + x)
                for y in range(height)
                for x in range(width - 1)
            }
            west = {
                (x, y): self._add_stage(
                    f"{self.name}.{plane}.w{x}_{y}", x_base + (width - 1 - x)
                )
                for y in range(height)
                for x in range(1, width)
            }
            north = {
                (x, y): self._add_stage(f"{self.name}.{plane}.n{x}_{y}", y_base + y)
                for y in range(height - 1)
                for x in range(width)
            }
            south = {
                (x, y): self._add_stage(
                    f"{self.name}.{plane}.s{x}_{y}", y_base + (height - 1 - y)
                )
                for y in range(1, height)
                for x in range(width)
            }
            self._links[(plane, "east")] = east
            self._links[(plane, "west")] = west
            self._links[(plane, "north")] = north
            self._links[(plane, "south")] = south
        self.master_response_ports = [
            self._add_stage(f"{self.name}.tile{t}.master_resp", master_resp_lvl)
            for t in range(self.config.num_tiles)
        ]

    # -- routing ---------------------------------------------------------- #

    def _coords(self, tile: int) -> tuple[int, int]:
        return tile % self.width, tile // self.width

    def _x_hops(self, plane: str, sx: int, dx: int, y: int) -> list[RegisterStage]:
        """Registers crossed moving along the X dimension at row ``y``."""
        if dx > sx:
            east = self._links[(plane, "east")]
            return [east[(x, y)] for x in range(sx, dx)]
        west = self._links[(plane, "west")]
        return [west[(x, y)] for x in range(sx, dx, -1)]

    def _y_hops(self, plane: str, sy: int, dy: int, x: int) -> list[RegisterStage]:
        """Registers crossed moving along the Y dimension at column ``x``."""
        if dy > sy:
            north = self._links[(plane, "north")]
            return [north[(x, y)] for y in range(sy, dy)]
        south = self._links[(plane, "south")]
        return [south[(x, y)] for y in range(sy, dy, -1)]

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        sx, sy = self._coords(src_tile)
        dx, dy = self._coords(dst_tile)
        return (
            [self.master_request_ports[src_tile]]
            + self._x_hops("req", sx, dx, sy)
            + self._y_hops("req", sy, dy, dx)
        )

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        sx, sy = self._coords(src_tile)
        dx, dy = self._coords(dst_tile)
        return (
            self._x_hops("resp", dx, sx, dy)
            + self._y_hops("resp", dy, sy, sx)
            + [self.master_response_ports[src_tile]]
        )

    def remote_ports_per_tile(self) -> int:
        """One injection port per tile into the mesh router."""
        return 1

    def hop_distance(self, src_tile: int, dst_tile: int) -> int:
        """Manhattan distance between two tiles on the grid."""
        sx, sy = self._coords(src_tile)
        dx, dy = self._coords(dst_tile)
        return abs(dx - sx) + abs(dy - sy)

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """1 cycle local, ``3 + 2 * manhattan_distance`` remote."""
        config = self.config
        src_tile = config.tile_of_core(core_id)
        dst_tile = config.tile_of_bank(bank_id)
        if src_tile == dst_tile:
            return 1
        return 3 + 2 * self.hop_distance(src_tile, dst_tile)


class TorusTopology(ClusterTopology):
    """``torus``: a 2D tile grid with wrap-around rings and dateline VCs.

    Like :class:`MeshTopology` but each row and column closes into a ring,
    halving the worst-case distance; routing picks the shorter ring
    direction per dimension (ties go the positive way).  Each
    unidirectional ring carries two dateline virtual channels — a flit
    switches from VC0 to VC1 when it crosses the wrap link — which both
    breaks the routing cycle for the vector engine's level order and
    mirrors the VC discipline physical torus networks need for deadlock
    freedom.  Registers are per ``(link, vc)``.
    """

    name = "torus"

    def __init__(
        self, config: MemPoolConfig, width: int | None = None, height: int | None = None
    ) -> None:
        super().__init__(config)
        self.width, self.height = _resolve_grid_dims(config, width, height, self.name)
        self._build_links()

    def _level_bases(self) -> tuple[int, int, int, int, int, int]:
        """(master_req, req_x, req_y, resp_x, resp_y, master_resp) bases.

        Each dimension reserves ``2 * size`` levels — one per (position,
        virtual channel) pair — so wrapped routes keep increasing levels.
        """
        req_y = LEVEL_BANK - 2 * self.height
        req_x = req_y - 2 * self.width
        resp_x = LEVEL_BANK + 1
        resp_y = resp_x + 2 * self.width
        return req_x - 1, req_x, req_y, resp_x, resp_y, resp_y + 2 * self.height

    def _build_links(self) -> None:
        """Create per-(link, vc) registers of both routing planes."""
        master_lvl, req_x, req_y, resp_x, resp_y, master_resp_lvl = self._level_bases()
        width, height = self.width, self.height
        self.master_request_ports = [
            self._add_stage(f"{self.name}.tile{t}.master_req", master_lvl)
            for t in range(self.config.num_tiles)
        ]
        self._links: dict[tuple[str, str], dict[tuple[int, int, int], RegisterStage]] = {}
        for plane, x_base, y_base in (("req", req_x, req_y), ("resp", resp_x, resp_y)):
            # A dimension of size 1 never moves a flit: build no links for it.
            east = {
                (x, y, vc): self._add_stage(
                    f"{self.name}.{plane}.e{x}_{y}.vc{vc}", x_base + vc * width + x
                )
                for y in range(height)
                for x in range(width if width > 1 else 0)
                for vc in range(2)
            }
            west = {
                (x, y, vc): self._add_stage(
                    f"{self.name}.{plane}.w{x}_{y}.vc{vc}",
                    x_base + vc * width + (width - 1 - x),
                )
                for y in range(height)
                for x in range(width if width > 1 else 0)
                for vc in range(2)
            }
            north = {
                (x, y, vc): self._add_stage(
                    f"{self.name}.{plane}.n{x}_{y}.vc{vc}", y_base + vc * height + y
                )
                for y in range(height if height > 1 else 0)
                for x in range(width)
                for vc in range(2)
            }
            south = {
                (x, y, vc): self._add_stage(
                    f"{self.name}.{plane}.s{x}_{y}.vc{vc}",
                    y_base + vc * height + (height - 1 - y),
                )
                for y in range(height if height > 1 else 0)
                for x in range(width)
                for vc in range(2)
            }
            self._links[(plane, "east")] = east
            self._links[(plane, "west")] = west
            self._links[(plane, "north")] = north
            self._links[(plane, "south")] = south
        self.master_response_ports = [
            self._add_stage(f"{self.name}.tile{t}.master_resp", master_resp_lvl)
            for t in range(self.config.num_tiles)
        ]

    # -- routing ---------------------------------------------------------- #

    def _coords(self, tile: int) -> tuple[int, int]:
        return tile % self.width, tile // self.width

    @staticmethod
    def ring_distance(src: int, dst: int, size: int) -> int:
        """Shortest distance between two positions on a ring of ``size``."""
        forward = (dst - src) % size
        return min(forward, size - forward)

    def _ring_hops(
        self, plane: str, axis: str, src: int, dst: int, cross: int, size: int
    ) -> list[RegisterStage]:
        """Registers crossed along one ring, switching VC at the dateline.

        ``axis`` is ``"x"`` or ``"y"``, ``cross`` the fixed coordinate of
        the other dimension.  The dateline sits on the wrap link: position
        ``size - 1`` going forward (east/north), position ``0`` going
        backward (west/south).
        """
        if src == dst:
            return []
        forward = (dst - src) % size
        backward = size - forward
        hops: list[RegisterStage] = []
        vc = 0
        position = src
        if forward <= backward:
            links = self._links[(plane, "east" if axis == "x" else "north")]
            for _ in range(forward):
                key = (position, cross, vc) if axis == "x" else (cross, position, vc)
                hops.append(links[key])
                if position == size - 1:
                    vc = 1
                position = (position + 1) % size
        else:
            links = self._links[(plane, "west" if axis == "x" else "south")]
            for _ in range(backward):
                key = (position, cross, vc) if axis == "x" else (cross, position, vc)
                hops.append(links[key])
                if position == 0:
                    vc = 1
                position = (position - 1) % size
        return hops

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        sx, sy = self._coords(src_tile)
        dx, dy = self._coords(dst_tile)
        return (
            [self.master_request_ports[src_tile]]
            + self._ring_hops("req", "x", sx, dx, sy, self.width)
            + self._ring_hops("req", "y", sy, dy, dx, self.height)
        )

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        sx, sy = self._coords(src_tile)
        dx, dy = self._coords(dst_tile)
        return (
            self._ring_hops("resp", "x", dx, sx, dy, self.width)
            + self._ring_hops("resp", "y", dy, sy, sx, self.height)
            + [self.master_response_ports[src_tile]]
        )

    def remote_ports_per_tile(self) -> int:
        """One injection port per tile into the torus router."""
        return 1

    def hop_distance(self, src_tile: int, dst_tile: int) -> int:
        """Sum of the per-dimension shortest ring distances."""
        sx, sy = self._coords(src_tile)
        dx, dy = self._coords(dst_tile)
        return self.ring_distance(sx, dx, self.width) + self.ring_distance(
            sy, dy, self.height
        )

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """1 cycle local, ``3 + 2 * ring_distance`` remote."""
        config = self.config
        src_tile = config.tile_of_core(core_id)
        dst_tile = config.tile_of_bank(bank_id)
        if src_tile == dst_tile:
            return 1
        return 3 + 2 * self.hop_distance(src_tile, dst_tile)


class RingTopology(TorusTopology):
    """``ring``: all tiles on one bidirectional ring (a 1-D torus).

    The minimal-wiring topology: every tile connects only to its two
    neighbours, so remote latency grows linearly with ring distance (up to
    ``3 + num_tiles`` for the antipodal tile) while each router stays a
    constant-degree switch.  Implemented as a ``num_tiles x 1`` torus,
    inheriting the dateline-VC ring discipline.
    """

    name = "ring"

    def __init__(self, config: MemPoolConfig) -> None:
        super().__init__(config, width=config.num_tiles, height=1)


class HierarchicalTopology(ClusterTopology):
    """``hierarchical``: the TopH construction with a configurable shape.

    The generalisation of the paper's TopH (which is the
    ``groups=4, radix=4`` point): tiles are split into ``groups``
    contiguous groups, every group has a fully connected intra-group
    crossbar (3-cycle round trips), and every *ordered pair* of groups is
    joined by a dedicated radix-``radix`` butterfly behind one register
    boundary (5-cycle round trips).  Unlike the fixed TopH, each tile has
    one directional port per remote group — no four-port cap — so the
    family scales to any group count that divides the tile count.
    """

    name = "hierarchical"

    def __init__(
        self, config: MemPoolConfig, groups: int | None = None, radix: int | None = None
    ) -> None:
        super().__init__(config)
        self.groups = int(groups) if groups is not None else config.num_groups
        self.radix = int(radix) if radix is not None else config.butterfly_radix
        if self.groups < 1 or config.num_tiles % self.groups:
            raise ValueError(
                f"hierarchical groups ({self.groups}) must divide "
                f"num_tiles ({config.num_tiles})"
            )
        tiles_per_group = config.num_tiles // self.groups
        if tiles_per_group > 1 and not is_power_of(tiles_per_group, self.radix):
            raise ValueError(
                "hierarchical requires tiles-per-group to be a power of the "
                f"radix ({self.radix}); got {tiles_per_group}"
            )
        self.tiles_per_group = tiles_per_group
        depth = config.timing.elastic_buffer_depth

        # Per-tile master ports: index 0 is the local-group port, index d
        # reaches the group at offset d.
        self.master_request_ports = [
            [
                self._add_stage(f"hier.tile{t}.master_req.d{d}", LEVEL_MASTER_REQ)
                for d in range(self.groups)
            ]
            for t in range(config.num_tiles)
        ]
        self.master_response_ports = [
            [
                self._add_stage(f"hier.tile{t}.master_resp.d{d}", LEVEL_MASTER_RESP)
                for d in range(self.groups)
            ]
            for t in range(config.num_tiles)
        ]

        # Intra-group fully connected crossbars.
        self.local_request_xbars = [
            CrossbarSwitch(
                f"hier.g{g}.req_local", tiles_per_group, tiles_per_group,
                registered_outputs=False,
            )
            for g in range(self.groups)
        ]
        self.local_response_xbars = [
            CrossbarSwitch(
                f"hier.g{g}.resp_local", tiles_per_group, tiles_per_group,
                registered_outputs=False,
            )
            for g in range(self.groups)
        ]
        for xbar in self.local_request_xbars + self.local_response_xbars:
            for output in xbar.outputs:
                self.network.add_arbiter(output)

        # One dedicated butterfly per ordered pair of distinct groups, with
        # a register boundary per source tile at the group interface.
        self.group_request_butterflies: dict[tuple[int, int], ButterflyNetwork] = {}
        self.group_response_butterflies: dict[tuple[int, int], ButterflyNetwork] = {}
        self.group_request_boundaries: dict[tuple[int, int], list[RegisterStage]] = {}
        self.group_response_boundaries: dict[tuple[int, int], list[RegisterStage]] = {}
        for src_group in range(self.groups):
            for dst_group in range(self.groups):
                if src_group == dst_group:
                    continue
                key = (src_group, dst_group)
                request = ButterflyNetwork(
                    f"hier.g{src_group}to{dst_group}.req", tiles_per_group,
                    radix=self.radix, buffer_depth=depth,
                )
                response = ButterflyNetwork(
                    f"hier.g{src_group}to{dst_group}.resp", tiles_per_group,
                    radix=self.radix, buffer_depth=depth,
                )
                for butterfly in (request, response):
                    _register_switch_outputs(self, butterfly)
                self.group_request_butterflies[key] = request
                self.group_response_butterflies[key] = response
                self.group_request_boundaries[key] = [
                    self._add_stage(
                        f"hier.g{src_group}to{dst_group}.req_boundary.t{t}",
                        LEVEL_BOUNDARY_REQ,
                    )
                    for t in range(tiles_per_group)
                ]
                self.group_response_boundaries[key] = [
                    self._add_stage(
                        f"hier.g{src_group}to{dst_group}.resp_boundary.t{t}",
                        LEVEL_BOUNDARY_RESP,
                    )
                    for t in range(tiles_per_group)
                ]

    # -- helpers ---------------------------------------------------------- #

    def _group_of_tile(self, tile: int) -> int:
        return tile // self.tiles_per_group

    def _direction(self, src_group: int, dst_group: int) -> int:
        """Tile port index used to reach ``dst_group`` from ``src_group``."""
        return (dst_group - src_group) % self.groups

    def _remote_request_path(self, core_id, src_tile, dst_tile):
        src_group = self._group_of_tile(src_tile)
        dst_group = self._group_of_tile(dst_tile)
        src_local = src_tile % self.tiles_per_group
        dst_local = dst_tile % self.tiles_per_group
        if src_group == dst_group:
            port = self.master_request_ports[src_tile][0]
            return [port, self.local_request_xbars[src_group].output(dst_local)]
        direction = self._direction(src_group, dst_group)
        key = (src_group, dst_group)
        return [
            self.master_request_ports[src_tile][direction],
            self.group_request_boundaries[key][src_local],
        ] + self.group_request_butterflies[key].route(src_local, dst_local)

    def _remote_response_path(self, core_id, src_tile, dst_tile):
        src_group = self._group_of_tile(src_tile)
        dst_group = self._group_of_tile(dst_tile)
        src_local = src_tile % self.tiles_per_group
        dst_local = dst_tile % self.tiles_per_group
        if src_group == dst_group:
            return [
                self.local_response_xbars[src_group].output(src_local),
                self.master_response_ports[src_tile][0],
            ]
        direction = self._direction(src_group, dst_group)
        key = (src_group, dst_group)
        return (
            [self.group_response_boundaries[key][dst_local]]
            + self.group_response_butterflies[key].route(dst_local, src_local)
            + [self.master_response_ports[src_tile][direction]]
        )

    def remote_ports_per_tile(self) -> int:
        """One local port plus one directional port per remote group."""
        return self.groups

    def analytic_round_trip_latency(self, core_id: int, bank_id: int) -> int:
        """1 cycle local, 3 cycles in-group, 5 cycles cross-group."""
        config = self.config
        src_tile = config.tile_of_core(core_id)
        dst_tile = config.tile_of_bank(bank_id)
        if src_tile == dst_tile:
            return 1
        if self._group_of_tile(src_tile) == self._group_of_tile(dst_tile):
            return 3
        return 5
