"""The two workload abstractions: destination patterns and injection processes.

A *workload* is the pair of questions the synthetic-traffic layer asks the
environment every cycle: **when** does each core generate a request
(:class:`InjectionProcess`) and **where** does that request go
(:class:`DestinationPattern`).  Both abstractions expose a scalar API (one
core at a time — what the legacy object engine consumes) and a batched API
(whole arrays of cores — what the vector engine's fast path consumes).

The batched APIs are contractually equivalent to the scalar ones: calling
``destinations(cores)`` must consume exactly the same random draws, in the
same order, as calling ``destination(core)`` for each core in sequence, and
``arrivals_batch(cycle)`` must match ``arrivals(core, cycle)`` over all
cores in ascending order.  The vector engine depends on this equivalence
for cycle-exactness with the legacy engine; ``tests/test_workloads.py``
asserts it property-style for every registered component.

Randomness comes from the per-core substreams of :mod:`repro.workloads.rng`
(see the reproducibility contract there): component- and core-disjoint
streams derived from the single experiment seed.  The shared ``self.rng``
stream on :class:`DestinationPattern` exists for the two grandfathered
legacy patterns and for ad-hoc subclasses; new patterns should draw from
:meth:`DestinationPattern.core_rng` instead.
"""

from __future__ import annotations

import random
from typing import ClassVar, Sequence

import numpy as np

from repro.core.config import MemPoolConfig
from repro.utils.validation import check_non_negative
from repro.workloads.rng import substream


class DestinationPattern:
    """Chooses the destination bank of each generated request.

    Parameters
    ----------
    config : MemPoolConfig
        The cluster the pattern addresses; destinations are global bank
        indices in ``[0, config.num_banks)``.
    seed : int
        Experiment seed; per-core substreams are mixed from it (see
        :mod:`repro.workloads.rng`).
    """

    #: Registry key of the pattern (set by concrete catalogue classes).
    name: ClassVar[str] = ""

    def __init__(self, config: MemPoolConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        #: Shared legacy stream — the draw-order-compatible stream of the
        #: grandfathered default patterns (see :mod:`repro.workloads.rng`).
        self.rng = random.Random(seed)
        self._core_rngs: list[random.Random] | None = None

    def core_rng(self, core_id: int) -> random.Random:
        """The per-core RNG substream of ``core_id`` (built lazily).

        Streams are keyed on ``(seed, "pattern", class name, core_id)``,
        so two different pattern classes built from the same seed — or the
        same pattern asked about two different cores — never alias.
        """
        if self._core_rngs is None:
            name = type(self).__name__
            self._core_rngs = [
                substream(self.seed, "pattern", name, core)
                for core in range(self.config.num_cores)
            ]
        return self._core_rngs[core_id]

    def destination(self, core_id: int) -> int:
        """Return the global bank index targeted by a new request of ``core_id``."""
        raise NotImplementedError

    def destinations(self, core_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Destination banks of many requests at once (vector fast path).

        The default implementation loops :meth:`destination` in order, so
        the scalar/batched equivalence contract holds for any subclass;
        deterministic table patterns override it with an array gather.

        Parameters
        ----------
        core_ids : sequence of int
            Issuing core of each request; cores may repeat (one entry per
            request, in generation order).

        Returns
        -------
        numpy.ndarray
            Global bank index of each request, same length and order.
        """
        return np.fromiter(
            (self.destination(int(core)) for core in core_ids),
            dtype=np.int64,
            count=len(core_ids),
        )


class InjectionProcess:
    """Decides how many requests each core generates on each cycle.

    Parameters
    ----------
    num_cores : int
        Number of generating cores.
    injection_rate : float
        Long-run average rate in requests per core per cycle.
    seed : int
        Experiment seed; per-core substreams are mixed from it.

    Notes
    -----
    ``arrivals`` must be called with non-decreasing ``cycle`` values per
    core (the simulation loop calls it once per core per cycle); processes
    carry per-core state between calls.
    """

    #: Registry key of the process (set by concrete catalogue classes).
    name: ClassVar[str] = ""

    def __init__(self, num_cores: int, injection_rate: float, seed: int = 0) -> None:
        check_non_negative("injection_rate", injection_rate)
        self.num_cores = num_cores
        self.injection_rate = injection_rate
        self.seed = seed
        self._core_rngs: list[random.Random] | None = None

    def core_rng(self, core_id: int) -> random.Random:
        """The per-core RNG substream of ``core_id`` (built lazily, cached).

        Cached like :meth:`DestinationPattern.core_rng`: repeated calls
        return the *same* generator, so drawing through this method from
        ``arrivals`` continues the core's stream rather than restarting it.
        """
        if self._core_rngs is None:
            name = type(self).__name__
            self._core_rngs = [
                substream(self.seed, "injector", name, core)
                for core in range(self.num_cores)
            ]
        return self._core_rngs[core_id]

    def arrivals(self, core_id: int, cycle: int) -> int:
        """Number of new requests core ``core_id`` generates during ``cycle``."""
        raise NotImplementedError

    def arrivals_batch(self, cycle: int) -> list[tuple[int, int]]:
        """Arrival counts of every core for ``cycle``, as ``(core, count)`` pairs.

        Equivalent to calling :meth:`arrivals` for every core in ascending
        order (the contract the vector fast path depends on); only cores
        with at least one arrival appear in the result.  Subclasses may
        override this with a faster loop but must preserve the draw order.
        """
        batch: list[tuple[int, int]] = []
        for core_id in range(self.num_cores):
            count = self.arrivals(core_id, cycle)
            if count:
                batch.append((core_id, count))
        return batch
