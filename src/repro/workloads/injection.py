"""Catalogue of injection processes: Poisson, Bernoulli and bursty on-off.

:class:`PoissonInjector` is the paper's process (Section V-A) and the
grandfathered legacy default: it keeps drawing interarrival times from the
shared ``random.Random(seed ^ 0x5EED)`` stream in exactly the seed
repository's order, so fixed-seed figure outputs stay bit-identical (see
the reproducibility contract in :mod:`repro.workloads.rng`).  The other
processes draw from per-core RNG substreams.

All processes share the :class:`~repro.workloads.base.InjectionProcess`
contract: ``arrivals_batch(cycle)`` consumes exactly the same draws as
``arrivals(core, cycle)`` over all cores in ascending order, which is what
keeps the vector fast path cycle-exact with the legacy loop.
"""

from __future__ import annotations

import random

from repro.utils.validation import check_in_range, check_non_negative
from repro.workloads.base import InjectionProcess
from repro.workloads.registry import register_injector


class PoissonInjector(InjectionProcess):
    """Per-core Poisson arrival process with rate ``injection_rate`` req/cycle."""

    name = "poisson"

    def __init__(self, num_cores: int, injection_rate: float, seed: int = 0) -> None:
        super().__init__(num_cores, injection_rate, seed)
        self.rng = random.Random(seed ^ 0x5EED)
        self._next_arrival = [
            self._first_arrival() for _ in range(num_cores)
        ]

    def _first_arrival(self) -> float:
        if self.injection_rate == 0.0:
            return float("inf")
        # Desynchronise the cores by starting each process at a random phase.
        return self.rng.uniform(0.0, 1.0 / self.injection_rate)

    def _interarrival(self) -> float:
        return self.rng.expovariate(self.injection_rate)

    def arrivals(self, core_id: int, cycle: int) -> int:
        """Number of new requests core ``core_id`` generates during ``cycle``."""
        if self.injection_rate == 0.0:
            return 0
        count = 0
        next_arrival = self._next_arrival[core_id]
        while next_arrival <= cycle:
            count += 1
            next_arrival += self._interarrival()
        self._next_arrival[core_id] = next_arrival
        return count

    def arrivals_batch(self, cycle: int) -> list[tuple[int, int]]:
        """Arrival counts of every core for ``cycle``, as ``(core, count)`` pairs.

        Equivalent to calling :meth:`arrivals` for every core in ascending
        order — the shared random stream is consumed in exactly the same
        sequence, so mixing the two APIs across cycles is safe — but cores
        with no due arrival cost a single comparison instead of a method
        call.  Used by the vector traffic driver (:mod:`repro.engine.traffic`).
        """
        if self.injection_rate == 0.0:
            return []
        batch: list[tuple[int, int]] = []
        next_arrival = self._next_arrival
        interarrival = self._interarrival
        for core_id, due in enumerate(next_arrival):
            if due > cycle:
                continue
            count = 0
            while due <= cycle:
                count += 1
                due += interarrival()
            next_arrival[core_id] = due
            batch.append((core_id, count))
        return batch


class BernoulliInjector(InjectionProcess):
    """Constant-rate process: one request per cycle with probability ``rate``.

    The discrete analogue of the Poisson process, with at most one arrival
    per core per cycle — the classic open-loop injector of NoC simulators.
    ``injection_rate`` must therefore not exceed 1.  Each core draws from
    its own RNG substream.
    """

    name = "bernoulli"

    def __init__(self, num_cores: int, injection_rate: float, seed: int = 0) -> None:
        super().__init__(num_cores, injection_rate, seed)
        check_in_range("injection_rate", injection_rate, 0.0, 1.0)
        self._rngs = [self.core_rng(core) for core in range(num_cores)]

    def arrivals(self, core_id: int, cycle: int) -> int:
        """1 with probability ``injection_rate``, else 0 (no draw at rate 0)."""
        if self.injection_rate == 0.0:
            return 0
        return 1 if self._rngs[core_id].random() < self.injection_rate else 0


class BurstyInjector(InjectionProcess):
    """Two-state on-off (bursty) process averaging ``injection_rate``.

    Each core alternates between an ON state, where it injects one request
    per cycle with probability ``burst_rate``, and a silent OFF state.
    State residency is geometric: the ON state persists with mean length
    ``burst_len`` cycles, and the OFF->ON transition probability is tuned
    so the long-run duty cycle equals ``injection_rate / burst_rate`` —
    the process offers the same average load as a Poisson injector of the
    same rate, but concentrated in bursts that stress buffer occupancy.

    Parameters
    ----------
    num_cores, injection_rate, seed
        See :class:`~repro.workloads.base.InjectionProcess`;
        ``injection_rate`` must not exceed ``burst_rate``.
    burst_len : float
        Mean ON-state duration in cycles (>= 1).
    burst_rate : float
        Injection probability per cycle while ON, in (0, 1].
    """

    name = "bursty"

    def __init__(
        self,
        num_cores: int,
        injection_rate: float,
        seed: int = 0,
        burst_len: float = 8.0,
        burst_rate: float = 1.0,
    ) -> None:
        super().__init__(num_cores, injection_rate, seed)
        check_non_negative("injection_rate", injection_rate)
        check_in_range("burst_rate", burst_rate, 1e-9, 1.0)
        if burst_len < 1.0:
            raise ValueError(f"burst_len must be >= 1 cycle, got {burst_len}")
        if injection_rate > burst_rate:
            raise ValueError(
                f"injection_rate ({injection_rate}) cannot exceed burst_rate "
                f"({burst_rate}): the ON state cannot offer enough load"
            )
        self.burst_len = burst_len
        self.burst_rate = burst_rate
        duty = injection_rate / burst_rate
        if duty >= 1.0:
            # Degenerate constant-rate case: the ON state must never end,
            # or the long-run rate falls short of the request.
            self._off_prob = 0.0
            self._on_prob = 1.0
        else:
            #: ON -> OFF probability (geometric mean length burst_len) and
            #: OFF -> ON probability, tuned for the target duty cycle.
            self._off_prob = 1.0 / burst_len
            self._on_prob = self._off_prob * duty / (1.0 - duty)
        self._rngs = [self.core_rng(core) for core in range(num_cores)]
        # Start each core in its stationary distribution so the measured
        # rate is unbiased from cycle 0.
        self._on = [rng.random() < duty for rng in self._rngs]

    def arrivals(self, core_id: int, cycle: int) -> int:
        """One arrival with probability ``burst_rate`` while ON, else none."""
        if self.injection_rate == 0.0:
            return 0
        rng = self._rngs[core_id]
        if self._on[core_id]:
            count = 1 if rng.random() < self.burst_rate else 0
            if rng.random() < self._off_prob:
                self._on[core_id] = False
            return count
        if rng.random() < self._on_prob:
            self._on[core_id] = True
        return 0


register_injector(
    "poisson", PoissonInjector,
    "memoryless Poisson arrivals (the paper's Section V-A process)",
)
register_injector(
    "bernoulli", BernoulliInjector,
    "at most one arrival per cycle, probability = rate (constant-rate)",
)
register_injector(
    "bursty", BurstyInjector,
    "on-off bursts (mean length burst_len) averaging the requested rate",
    params={
        "burst_len": lambda v: check_in_range("burst_len", v, 1.0, 1e9),
        "burst_rate": lambda v: check_in_range("burst_rate", v, 1e-9, 1.0),
    },
)
