"""Flit-trace record/replay: a versioned on-disk workload format.

A *trace* is the generation-ordered sequence of ``(cycle, core, bank)``
request records recovered from any run's ``record_flits`` flit log:
sorting the log by flit id restores generation order (flit ids are
assigned cycle by cycle, cores ascending, arrivals sequential), and each
flit's ``created`` cycle, issuing core and destination bank are exactly
the three decisions the workload layer made for it.  Replaying a trace
therefore re-asks the recorded workload questions — *when* does each core
generate (:class:`TraceInjectionProcess`) and *where* does the request go
(:class:`TracePattern`) — with no randomness anywhere, so every engine
reproduces the same flit log from the same file.

Only flits that **completed** within the recorded run appear in its flit
log, so a trace is the completed subset of the original offered load;
requests still in flight when the recording window closed are not part
of the trace.  Both replay components are registered under the name
``"trace"`` with a *required* ``path`` parameter and must be paired:
the injector re-injects the recorded per-``(cycle, core)`` counts and
the pattern pops that core's recorded destinations in order, so using
one without the other exhausts or starves the per-core queues (and says
so in the error message).

On-disk schema (version 1)
--------------------------

gzip-compressed text.  Line 1 is a JSON header::

    {"format": "mempool-trace", "version": 1, "num_cores": ..,
     "num_banks": .., "records": .., "cycles": .., "sha256": "..",
     "meta": {..}}

followed by one compact JSON line ``[cycle,core,bank]`` per record, in
generation order.  ``sha256`` is the hex digest of the newline-joined
record lines — the trace's *content hash*, used both to detect a file
modified after recording and as the content-addressed component of
experiment cache keys (:func:`trace_sha` reads it from the header alone,
without parsing the payload).
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import MemPoolConfig
from repro.workloads.base import DestinationPattern, InjectionProcess
from repro.workloads.registry import register_injector, register_pattern

#: Magic string of the header's ``format`` field.
TRACE_FORMAT = "mempool-trace"
#: Newest schema version this module writes and reads.
TRACE_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file is missing, malformed, truncated or corrupt.

    Every instance names the offending path and says what was expected,
    so a bad ``--trace`` argument reads as a correction, not a stack
    trace from deep inside a worker process.
    """


@dataclass(frozen=True)
class TraceData:
    """One fully loaded and verified trace (immutable, shareable).

    The three record arrays are parallel and in generation order.  The
    replay components share one :class:`TraceData` per file (see
    :func:`load_trace`) but own their per-instance replay cursors, so
    batch members replaying the same trace never alias state.
    """

    path: str
    num_cores: int
    num_banks: int
    cycles: int
    sha256: str
    meta: Mapping[str, Any]
    cycle: np.ndarray
    core: np.ndarray
    bank: np.ndarray

    @property
    def num_records(self) -> int:
        """Number of recorded requests."""
        return int(self.cycle.shape[0])

    @property
    def mean_rate(self) -> float:
        """Recorded offered load in requests per core per cycle."""
        if self.cycles <= 0 or self.num_cores <= 0:
            return 0.0
        return self.num_records / (self.num_cores * self.cycles)


def records_from_flit_log(
    flit_log: Sequence[tuple[int, int, int, int, int, int]],
) -> list[tuple[int, int, int]]:
    """Generation-ordered ``(cycle, core, bank)`` records of a flit log.

    The log arrives in *completion* order; sorting by flit id (the first
    tuple field) restores generation order, since ids are assigned as
    flits are generated.
    """
    return [
        (created, core, bank)
        for _flit_id, core, bank, created, _injected, _completed in sorted(flit_log)
    ]


def _payload_lines(records: Iterable[tuple[int, int, int]]) -> list[str]:
    return [
        json.dumps([int(cycle), int(core), int(bank)], separators=(",", ":"))
        for cycle, core, bank in records
    ]


def write_trace(
    path: str,
    records: Sequence[tuple[int, int, int]],
    *,
    num_cores: int,
    num_banks: int,
    meta: Mapping[str, Any] | None = None,
    force: bool = False,
) -> str:
    """Write ``records`` as a version-1 trace file and return its sha256.

    Refuses to overwrite an existing file unless ``force`` is true — a
    recorded trace is an experiment input other cache keys may already
    reference, so clobbering one silently would invalidate results.
    """
    if os.path.exists(path) and not force:
        raise FileExistsError(
            f"trace file {path!r} already exists; pass --force (or "
            "force=True) to overwrite it"
        )
    lines = _payload_lines(records)
    sha = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "num_cores": int(num_cores),
        "num_banks": int(num_banks),
        "records": len(lines),
        "cycles": (max(cycle for cycle, _, _ in records) + 1) if records else 0,
        "sha256": sha,
        "meta": dict(meta or {}),
    }
    with gzip.open(path, "wt", encoding="utf-8") as stream:
        stream.write(json.dumps(header, sort_keys=True))
        for line in lines:
            stream.write("\n")
            stream.write(line)
    return sha


def record_trace(
    result,
    config: MemPoolConfig,
    path: str,
    *,
    meta: Mapping[str, Any] | None = None,
    force: bool = False,
) -> str:
    """Write the trace of a ``record_flits=True`` traffic result.

    ``result`` is a :class:`~repro.traffic.simulation.TrafficResult`;
    ``config`` is the cluster configuration it ran on (the trace header
    pins ``num_cores``/``num_banks`` so replay rejects a mismatched
    cluster).  Returns the content sha256.
    """
    if result.flit_log is None:
        raise ValueError(
            "the result carries no flit log; run the simulation with "
            "record_flits=True to record a trace"
        )
    return write_trace(
        path,
        records_from_flit_log(result.flit_log),
        num_cores=config.num_cores,
        num_banks=config.num_banks,
        meta=meta,
        force=force,
    )


def _read_lines(path: str) -> list[str]:
    try:
        with gzip.open(path, "rt", encoding="utf-8") as stream:
            return stream.read().split("\n")
    except FileNotFoundError:
        raise TraceFormatError(f"trace file {path!r} does not exist") from None
    except (OSError, EOFError, UnicodeDecodeError) as error:
        raise TraceFormatError(
            f"trace file {path!r} is not a readable gzip trace "
            f"({error}); expected the {TRACE_FORMAT!r} format written by "
            "'python -m repro.experiments trace record'"
        ) from None


def _parse_header(path: str, line: str) -> dict:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as error:
        raise TraceFormatError(
            f"trace file {path!r} has a malformed header line ({error}); "
            f"expected a JSON object with format={TRACE_FORMAT!r}"
        ) from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            f"trace file {path!r} is not a {TRACE_FORMAT!r} file "
            f"(header format field: {header.get('format') if isinstance(header, dict) else header!r})"
        )
    version = header.get("version")
    if version != TRACE_VERSION:
        raise TraceFormatError(
            f"trace file {path!r} has schema version {version!r}; this "
            f"build reads version {TRACE_VERSION}"
        )
    for key in ("num_cores", "num_banks", "records", "cycles", "sha256"):
        if key not in header:
            raise TraceFormatError(
                f"trace file {path!r} header is missing the {key!r} field"
            )
    return header


def read_trace_header(path: str) -> dict:
    """The parsed, validated header of a trace file (payload left unread).

    Cheap enough for sweep expansion: the ``traces`` experiment derives
    its load label and replay window from ``records``/``cycles``/
    ``num_cores`` without parsing a single record line.
    """
    lines = _read_lines(path)
    return _parse_header(path, lines[0] if lines else "")


def trace_sha(path: str) -> str:
    """The content sha256 of a trace, read from the header alone.

    Experiment cache keys embed this hash so a re-recorded trace re-runs
    every point that consumed it.  The full payload is verified against
    the hash by :func:`load_trace` when the trace is actually replayed.
    """
    return str(read_trace_header(path)["sha256"])


#: Small LRU of loaded traces keyed on (realpath, mtime_ns, size): the
#: pattern and injector of one replay — and every member of a batched
#: sweep over the same file — share one immutable TraceData.
_TRACE_CACHE: dict[tuple[str, int, int], TraceData] = {}
_TRACE_CACHE_LIMIT = 8


def load_trace(path: str) -> TraceData:
    """Load, validate and cache a trace file.

    Raises
    ------
    TraceFormatError
        When the file is missing, not gzip, has a malformed header or
        records, is truncated (fewer records than the header promises),
        or its payload no longer matches the recorded sha256.
    """
    try:
        stat = os.stat(path)
        cache_key = (os.path.realpath(path), stat.st_mtime_ns, stat.st_size)
    except OSError:
        raise TraceFormatError(f"trace file {path!r} does not exist") from None
    cached = _TRACE_CACHE.get(cache_key)
    if cached is not None:
        return cached

    lines = _read_lines(path)
    header = _parse_header(path, lines[0] if lines else "")
    payload = lines[1:]
    # A trailing newline (e.g. from a hand-edited file) would read as one
    # empty record; tolerate exactly one trailing empty line.
    if payload and payload[-1] == "":
        payload.pop()
    expected = int(header["records"])
    if len(payload) != expected:
        raise TraceFormatError(
            f"trace file {path!r} is truncated or padded: header promises "
            f"{expected} records, found {len(payload)}"
        )
    digest = hashlib.sha256("\n".join(payload).encode("utf-8")).hexdigest()
    if digest != header["sha256"]:
        raise TraceFormatError(
            f"trace file {path!r} failed content verification: payload "
            f"sha256 {digest} != recorded {header['sha256']} — the file "
            "was modified after recording; re-record it"
        )
    num_cores = int(header["num_cores"])
    num_banks = int(header["num_banks"])
    cycles = int(header["cycles"])
    cycle = np.empty(expected, dtype=np.int64)
    core = np.empty(expected, dtype=np.int64)
    bank = np.empty(expected, dtype=np.int64)
    for index, line in enumerate(payload):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            raise TraceFormatError(
                f"trace file {path!r} record {index} is not valid JSON: "
                f"{line!r}"
            ) from None
        if (
            not isinstance(record, list)
            or len(record) != 3
            or not all(isinstance(value, int) for value in record)
        ):
            raise TraceFormatError(
                f"trace file {path!r} record {index} must be a "
                f"[cycle, core, bank] integer triple, got {line!r}"
            )
        when, who, where = record
        if not (0 <= when < cycles and 0 <= who < num_cores and 0 <= where < num_banks):
            raise TraceFormatError(
                f"trace file {path!r} record {index} is out of range: "
                f"[cycle={when}, core={who}, bank={where}] vs header "
                f"cycles={cycles}, num_cores={num_cores}, num_banks={num_banks}"
            )
        cycle[index] = when
        core[index] = who
        bank[index] = where
    data = TraceData(
        path=str(path),
        num_cores=num_cores,
        num_banks=num_banks,
        cycles=cycles,
        sha256=str(header["sha256"]),
        meta=dict(header.get("meta") or {}),
        cycle=cycle,
        core=core,
        bank=bank,
    )
    cycle.setflags(write=False)
    core.setflags(write=False)
    bank.setflags(write=False)
    if len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
        _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
    _TRACE_CACHE[cache_key] = data
    return data


def _check_sha(trace: TraceData, sha: str | None) -> None:
    if sha is not None and sha != trace.sha256:
        raise ValueError(
            f"trace file {trace.path!r} has content sha256 "
            f"{trace.sha256} but the experiment was expanded against "
            f"{sha}; the file changed since the sweep was keyed — "
            "re-run the sweep (or re-record the trace)"
        )


class TracePattern(DestinationPattern):
    """Replays the recorded destination of each core's requests, in order.

    Keeps one FIFO destination queue per core (built from the shared
    :class:`TraceData`, cursors per instance).  Asking for more
    destinations than the trace recorded for that core raises — that
    happens exactly when the pattern is driven by anything other than
    its :class:`TraceInjectionProcess` twin.
    """

    name = "trace"

    def __init__(
        self,
        config: MemPoolConfig,
        path: str,
        sha: str | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(config, seed)
        trace = load_trace(path)
        _check_sha(trace, sha)
        if trace.num_cores != config.num_cores or trace.num_banks != config.num_banks:
            raise ValueError(
                f"trace {trace.path!r} was recorded on a "
                f"{trace.num_cores}-core/{trace.num_banks}-bank cluster "
                f"and cannot replay on {config.num_cores} cores/"
                f"{config.num_banks} banks; topologies may differ, sizes "
                "may not"
            )
        self.trace = trace
        queues: list[list[int]] = [[] for _ in range(config.num_cores)]
        for who, where in zip(trace.core.tolist(), trace.bank.tolist()):
            queues[who].append(where)
        self._queues = queues
        self._cursor = [0] * config.num_cores

    def destination(self, core_id: int) -> int:
        """The next recorded destination bank of ``core_id``."""
        cursor = self._cursor[core_id]
        queue = self._queues[core_id]
        if cursor >= len(queue):
            raise ValueError(
                f"trace {self.trace.path!r} is exhausted for core "
                f"{core_id} (recorded {len(queue)} requests); replay "
                "must pair pattern='trace' with injector='trace' on the "
                "same file so injections match the recording"
            )
        self._cursor[core_id] = cursor + 1
        return queue[cursor]

    def destinations(self, core_ids) -> np.ndarray:
        """Batched replay — pops the same per-core queues as the scalar path."""
        cursors = self._cursor
        queues = self._queues
        out: list[int] = []
        append = out.append
        for core in core_ids:
            cursor = cursors[core]
            queue = queues[core]
            if cursor >= len(queue):
                self.destination(int(core))  # raises the canonical error
            cursors[core] = cursor + 1
            append(queue[cursor])
        return np.asarray(out, dtype=np.int64)


class TraceInjectionProcess(InjectionProcess):
    """Re-injects the recorded per-``(cycle, core)`` arrival counts.

    ``injection_rate`` is accepted for registry-signature compatibility
    (the sweep's load axis labels the result) but the offered load is
    defined by the file; :attr:`TraceData.mean_rate` is the honest
    label and is what the ``traces`` experiment passes as the load.
    """

    name = "trace"

    def __init__(
        self,
        num_cores: int,
        injection_rate: float,
        path: str,
        sha: str | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_cores, injection_rate, seed)
        trace = load_trace(path)
        _check_sha(trace, sha)
        if trace.num_cores != num_cores:
            raise ValueError(
                f"trace {trace.path!r} was recorded on {trace.num_cores} "
                f"cores and cannot replay on {num_cores}"
            )
        self.trace = trace
        by_cycle: dict[int, dict[int, int]] = {}
        for when, who in zip(trace.cycle.tolist(), trace.core.tolist()):
            counts = by_cycle.setdefault(when, {})
            counts[who] = counts.get(who, 0) + 1
        self._by_cycle = by_cycle
        self._batches: dict[int, list[tuple[int, int]]] = {
            when: sorted(counts.items()) for when, counts in by_cycle.items()
        }

    def arrivals(self, core_id: int, cycle: int) -> int:
        """The recorded arrival count of ``core_id`` during ``cycle``."""
        counts = self._by_cycle.get(cycle)
        return counts.get(core_id, 0) if counts else 0

    def arrivals_batch(self, cycle: int) -> list[tuple[int, int]]:
        """The recorded ``(core, count)`` pairs of ``cycle``, cores ascending."""
        batch = self._batches.get(cycle)
        return list(batch) if batch else []


def _check_path(value: Any) -> None:
    if not isinstance(value, str) or not value:
        raise ValueError("must be a non-empty trace file path string")


def _check_sha_param(value: Any) -> None:
    if not isinstance(value, str) or len(value) != 64:
        raise ValueError("must be a 64-character hex sha256 string")


register_pattern(
    "trace", TracePattern,
    "replays recorded per-core destination sequences from a trace file",
    params={"path": _check_path, "sha": _check_sha_param},
    required=("path",),
)
register_injector(
    "trace", TraceInjectionProcess,
    "replays recorded per-(cycle, core) arrival counts from a trace file",
    params={"path": _check_path, "sha": _check_sha_param},
    required=("path",),
)
