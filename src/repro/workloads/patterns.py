"""Catalogue of destination patterns (classic NoC traffic + the paper's two).

Two families live here:

* The paper's own workloads (Section V): :class:`UniformRandomPattern`
  (Figure 5) and :class:`LocalBiasedPattern` (Figure 6).  These are the
  grandfathered legacy patterns — they draw from the shared
  ``random.Random(seed)`` stream in exactly the seed repository's order so
  fixed-seed figure outputs stay bit-identical (see
  :mod:`repro.workloads.rng`).
* The classic NoC benchmark patterns (bit-complement, bit-reverse,
  transpose, shuffle, tornado, nearest-neighbour, hotspot).  The
  permutation patterns operate on the *tile* index — MemPool's unit of
  network locality — and pick the bank within the destination tile from
  the issuing core's intra-tile index, making them fully deterministic:
  the same core pairs collide at the same arbiters every cycle, the
  adversarial case for interconnect arbitration.  Hotspot is stochastic
  and draws from per-core RNG substreams.

Every pattern maps a core index to a *global bank* index; the permutation
patterns require ``num_tiles`` to be a power of two, which
:class:`~repro.core.config.MemPoolConfig` already guarantees.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MemPoolConfig
from repro.utils.validation import check_in_range, check_positive, log2_int
from repro.workloads.base import DestinationPattern
from repro.workloads.registry import register_pattern


class UniformRandomPattern(DestinationPattern):
    """Uniformly random destination over every bank of the cluster (Figure 5)."""

    name = "uniform"

    def destination(self, core_id: int) -> int:
        """A uniformly random destination bank for ``core_id``."""
        return self.rng.randrange(self.config.num_banks)


class LocalBiasedPattern(DestinationPattern):
    """Destination in the core's own tile with probability ``p_local`` (Figure 6).

    With probability ``p_local`` the request goes to a uniformly chosen bank
    of the issuing core's tile — modelling an access to the tile's sequential
    region under the hybrid addressing scheme.  Otherwise the destination is
    uniform over the whole cluster, as in the interleaved regime.
    """

    name = "local_biased"

    def __init__(
        self, config: MemPoolConfig, p_local: float = 0.5, seed: int = 0
    ) -> None:
        super().__init__(config, seed)
        check_in_range("p_local", p_local, 0.0, 1.0)
        self.p_local = p_local
        #: Per-core own-tile bank base, built on the first batched call.
        self._tile_base: list[int] | None = None

    def destination(self, core_id: int) -> int:
        """A bank in the core's own tile with probability ``p_local``, else uniform."""
        config = self.config
        if self.rng.random() < self.p_local:
            tile = config.tile_of_core(core_id)
            return tile * config.banks_per_tile + self.rng.randrange(config.banks_per_tile)
        return self.rng.randrange(config.num_banks)

    def destinations(self, core_ids) -> np.ndarray:
        """Batched draws, bit-identical to per-request :meth:`destination`.

        The fallback loop paid one ``randrange`` call per request —
        argument validation, method dispatch and all.  This inlines
        CPython's ``Random._randbelow_with_getrandbits`` rejection loop
        (``k = n.bit_length(); r = getrandbits(k); while r >= n: redraw``)
        with every name bound locally, so the draws consumed — including
        the rejected ones — are *exactly* those of the scalar path (the
        contract ``tests/test_workloads.py`` asserts), at roughly half the
        interpreter work per request.
        """
        config = self.config
        rng = self.rng
        uniform = rng.random
        getrandbits = rng.getrandbits
        p_local = self.p_local
        banks_per_tile = config.banks_per_tile
        num_banks = config.num_banks
        local_bits = banks_per_tile.bit_length()
        global_bits = num_banks.bit_length()
        tile_base = self._tile_base
        if tile_base is None:
            tile_base = self._tile_base = [
                config.tile_of_core(core) * banks_per_tile
                for core in range(config.num_cores)
            ]
        out: list[int] = []
        append = out.append
        for core in core_ids:
            if uniform() < p_local:
                draw = getrandbits(local_bits)
                while draw >= banks_per_tile:
                    draw = getrandbits(local_bits)
                append(tile_base[core] + draw)
            else:
                draw = getrandbits(global_bits)
                while draw >= num_banks:
                    draw = getrandbits(global_bits)
                append(draw)
        return np.asarray(out, dtype=np.int64)


class TablePattern(DestinationPattern):
    """Deterministic pattern backed by a fixed per-core destination table.

    Subclasses implement :meth:`_destination_of` once; the table is built
    at construction, the scalar path is one list read and the batched path
    one NumPy gather (no RNG anywhere, so scalar/batched equivalence is
    structural).
    """

    def __init__(self, config: MemPoolConfig, seed: int = 0) -> None:
        super().__init__(config, seed)
        self._table = np.asarray(
            [self._destination_of(core) for core in range(config.num_cores)],
            dtype=np.int64,
        )

    def _destination_of(self, core_id: int) -> int:
        """The fixed global destination bank of ``core_id`` (built once)."""
        raise NotImplementedError

    def destination(self, core_id: int) -> int:
        """The fixed destination bank of ``core_id`` (table read)."""
        return int(self._table[core_id])

    def destinations(self, core_ids) -> np.ndarray:
        """Vectorized table gather over ``core_ids``."""
        return self._table[np.asarray(core_ids, dtype=np.int64)]


class TilePermutationPattern(TablePattern):
    """Deterministic pattern defined by a permutation of the tile index.

    The destination tile is :meth:`_dest_tile` of the source tile; the bank
    within that tile is the issuing core's intra-tile index (cores per tile
    never exceeds banks per tile in any supported configuration), so the
    four cores of one tile target four distinct banks of the same remote
    tile — maximal path sharing with no bank conflicts.
    """

    def _destination_of(self, core_id: int) -> int:
        config = self.config
        dest_tile = self._dest_tile(config.tile_of_core(core_id))
        bank = config.local_core_index(core_id) % config.banks_per_tile
        return dest_tile * config.banks_per_tile + bank

    def _dest_tile(self, tile: int) -> int:
        """The destination tile index for source tile ``tile``."""
        raise NotImplementedError


class BitComplementPattern(TilePermutationPattern):
    """Tile *t* targets tile ``~t`` — every request crosses the whole machine."""

    name = "bit_complement"

    def _dest_tile(self, tile: int) -> int:
        return ~tile & (self.config.num_tiles - 1)


class BitReversePattern(TilePermutationPattern):
    """Tile *t* targets the tile whose index is *t* with its bits reversed."""

    name = "bit_reverse"

    def _dest_tile(self, tile: int) -> int:
        bits = log2_int(self.config.num_tiles)
        reverse = 0
        for _ in range(bits):
            reverse = (reverse << 1) | (tile & 1)
            tile >>= 1
        return reverse


class TransposePattern(TilePermutationPattern):
    """Swap the high and low halves of the tile index (matrix transpose).

    For an even number of tile bits this is exactly the classic 2D
    transpose on the ``sqrt(T) x sqrt(T)`` tile grid; odd widths degrade
    to the nearest bit rotation.
    """

    name = "transpose"

    def _dest_tile(self, tile: int) -> int:
        bits = log2_int(self.config.num_tiles)
        if bits == 0:
            return tile
        half = bits // 2
        mask = self.config.num_tiles - 1
        return ((tile >> half) | (tile << (bits - half))) & mask


class ShufflePattern(TilePermutationPattern):
    """Perfect shuffle: rotate the tile index left by one bit."""

    name = "shuffle"

    def _dest_tile(self, tile: int) -> int:
        bits = log2_int(self.config.num_tiles)
        if bits == 0:
            return tile
        mask = self.config.num_tiles - 1
        return ((tile << 1) | (tile >> (bits - 1))) & mask


class TornadoPattern(TilePermutationPattern):
    """Tile *t* targets ``(t + ceil(T/2) - 1) mod T`` — the worst case for rings.

    On MemPool's butterflies it stresses a constant long-distance offset:
    every tile's traffic takes a maximal-rotation path, so middle-stage
    arbiters see persistent, structured contention.
    """

    name = "tornado"

    def _dest_tile(self, tile: int) -> int:
        num_tiles = self.config.num_tiles
        return (tile + (num_tiles + 1) // 2 - 1) % num_tiles


class NearestNeighbourPattern(TilePermutationPattern):
    """Tile *t* targets tile ``t + 1`` — the best case for local topologies.

    Under TopH, neighbouring tiles usually share a group, so this pattern
    isolates the local-group latency advantage the hierarchical topology
    is built around.
    """

    name = "neighbor"

    def _dest_tile(self, tile: int) -> int:
        return (tile + 1) % self.config.num_tiles


class HotspotPattern(DestinationPattern):
    """A fraction of the traffic converges on a few fixed hot banks.

    With probability ``p_hot`` a request targets one of ``num_hotspots``
    hot banks (spread evenly over the cluster, so hotspot 0 is bank 0);
    otherwise the destination is uniform over all banks.  Draws come from
    per-core RNG substreams, so two cores' choices never alias.
    """

    name = "hotspot"

    def __init__(
        self,
        config: MemPoolConfig,
        p_hot: float = 0.5,
        num_hotspots: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(config, seed)
        check_in_range("p_hot", p_hot, 0.0, 1.0)
        check_positive("num_hotspots", num_hotspots)
        if num_hotspots > config.num_banks:
            raise ValueError(
                f"num_hotspots ({num_hotspots}) cannot exceed the cluster's "
                f"bank count ({config.num_banks})"
            )
        self.p_hot = p_hot
        self.num_hotspots = num_hotspots
        self._hot_banks = [
            (index * config.num_banks) // num_hotspots
            for index in range(num_hotspots)
        ]

    def destination(self, core_id: int) -> int:
        """A hot bank with probability ``p_hot``, else a uniform bank."""
        rng = self.core_rng(core_id)
        if rng.random() < self.p_hot:
            return self._hot_banks[rng.randrange(self.num_hotspots)]
        return rng.randrange(self.config.num_banks)

    def destinations(self, core_ids) -> np.ndarray:
        """Batched draws, bit-identical to per-request :meth:`destination`.

        Same technique as
        :meth:`LocalBiasedPattern.destinations <LocalBiasedPattern.destinations>`
        — CPython's ``randrange`` rejection loop inlined over locally bound
        names — but against each request's *per-core* substream, whose
        state advances exactly as the scalar calls would advance it.  Note
        ``num_hotspots == 1`` still consumes rejection draws
        (``randrange(1)`` draws at least one bit), so the hot branch keeps
        the loop rather than short-circuiting.
        """
        if self._core_rngs is None:
            self.core_rng(0)
        rngs = self._core_rngs
        p_hot = self.p_hot
        num_hotspots = self.num_hotspots
        hot_banks = self._hot_banks
        num_banks = self.config.num_banks
        hot_bits = num_hotspots.bit_length()
        global_bits = num_banks.bit_length()
        out: list[int] = []
        append = out.append
        for core in core_ids:
            rng = rngs[core]
            if rng.random() < p_hot:
                draw = rng.getrandbits(hot_bits)
                while draw >= num_hotspots:
                    draw = rng.getrandbits(hot_bits)
                append(hot_banks[draw])
            else:
                draw = rng.getrandbits(global_bits)
                while draw >= num_banks:
                    draw = rng.getrandbits(global_bits)
                append(draw)
        return np.asarray(out, dtype=np.int64)


register_pattern(
    "uniform", UniformRandomPattern,
    "uniformly random bank over the whole cluster (Figure 5)",
)
register_pattern(
    "local_biased", LocalBiasedPattern,
    "own-tile bank with probability p_local, else uniform (Figure 6)",
    params={"p_local": lambda v: check_in_range("p_local", v, 0.0, 1.0)},
)
register_pattern(
    "bit_complement", BitComplementPattern,
    "tile t -> tile ~t: every request crosses the whole machine",
)
register_pattern(
    "bit_reverse", BitReversePattern,
    "tile t -> bit-reversed tile index",
)
register_pattern(
    "transpose", TransposePattern,
    "tile t -> high/low halves of the index swapped (2D transpose)",
)
register_pattern(
    "shuffle", ShufflePattern,
    "tile t -> index rotated left by one bit (perfect shuffle)",
)
register_pattern(
    "tornado", TornadoPattern,
    "tile t -> (t + ceil(T/2) - 1) mod T: constant long-distance offset",
)
register_pattern(
    "neighbor", NearestNeighbourPattern,
    "tile t -> tile t+1: nearest-neighbour, best case for TopH groups",
)
register_pattern(
    "hotspot", HotspotPattern,
    "p_hot of the traffic converges on num_hotspots fixed hot banks",
    params={
        "p_hot": lambda v: check_in_range("p_hot", v, 0.0, 1.0),
        "num_hotspots": lambda v: check_positive("num_hotspots", v),
    },
)
