"""Graph-derived destination patterns: power-law and preferential attachment.

Real shared-memory applications do not spread accesses uniformly: a few
structures (locks, work queues, hub vertices of an input graph) absorb a
disproportionate share of the traffic.  The mean-first-passage-time
analysis of scale-free networks (arXiv:0908.0976) predicts such
degree-skewed load stresses an interconnect qualitatively differently
from uniform traffic — hub contention grows with the skew exponent while
most destinations go nearly idle.  These two patterns reproduce that
regime over MemPool's banks:

* :class:`ScaleFreePattern` draws each destination from an explicit
  power-law *rank* distribution ``P(rank r) ∝ (r + 1)^-exponent``, with
  ranks interleaved across tiles so the hottest banks do not all share
  one tile's arbiter.
* :class:`DegreeSkewedPattern` first grows a deterministic
  preferential-attachment (Barabási–Albert) graph over the *tiles*, then
  targets tiles proportionally to ``degree^beta`` — the emergent-hub
  version of the same skew, where which tiles become hubs is itself an
  outcome of the random growth process.

Both draw exclusively from the per-core RNG substreams of
:mod:`repro.workloads.rng` (the graph itself comes from a dedicated
``"graph"`` substream), so scalar/batched draws are identical and two
cores never alias — the standard contract every engine depends on.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.core.config import MemPoolConfig
from repro.utils.validation import check_in_range, check_positive
from repro.workloads.base import DestinationPattern
from repro.workloads.registry import register_pattern
from repro.workloads.rng import substream


def _bank_of_rank(config: MemPoolConfig, rank: int) -> int:
    """Global bank of popularity rank ``rank``, interleaved across tiles.

    Rank 0 is bank 0 of tile 0, rank 1 is bank 0 of tile 1, …: the hot
    head of the distribution lands on *different* tiles, so the skew
    stresses the interconnect rather than a single tile arbiter.  A
    bijection of ``[0, num_banks)`` (mixed-radix digit swap).
    """
    return (rank % config.num_tiles) * config.banks_per_tile + rank // config.num_tiles


class ScaleFreePattern(DestinationPattern):
    """Power-law destination popularity: ``P(rank r) ∝ (r + 1)^-exponent``.

    ``exponent = 0`` degenerates to uniform; the paper-relevant regime is
    1–3, where a handful of banks receive most of the traffic.  One
    uniform draw per request from the issuing core's substream, inverted
    through the precomputed CDF.
    """

    name = "scale_free"

    def __init__(
        self, config: MemPoolConfig, exponent: float = 2.0, seed: int = 0
    ) -> None:
        super().__init__(config, seed)
        check_in_range("exponent", exponent, 0.0, 16.0)
        self.exponent = exponent
        weights = [
            (rank + 1) ** -exponent for rank in range(config.num_banks)
        ]
        total = sum(weights)
        cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cdf.append(acc / total)
        cdf[-1] = 1.0
        self._cdf = cdf
        self._bank_of_rank = [
            _bank_of_rank(config, rank) for rank in range(config.num_banks)
        ]

    def destination(self, core_id: int) -> int:
        """A power-law-ranked bank, from ``core_id``'s substream."""
        rank = bisect_right(self._cdf, self.core_rng(core_id).random())
        return self._bank_of_rank[min(rank, len(self._cdf) - 1)]

    def destinations(self, core_ids) -> np.ndarray:
        """Batched draws, bit-identical to per-request :meth:`destination`.

        One ``random()`` per request against the issuing core's substream
        — the same single draw the scalar path consumes — with the CDF
        inversion and both tables bound locally.
        """
        if self._core_rngs is None:
            self.core_rng(0)
        rngs = self._core_rngs
        cdf = self._cdf
        bank_of_rank = self._bank_of_rank
        last = len(cdf) - 1
        out: list[int] = []
        append = out.append
        for core in core_ids:
            rank = bisect_right(cdf, rngs[core].random())
            append(bank_of_rank[rank if rank < last else last])
        return np.asarray(out, dtype=np.int64)


class DegreeSkewedPattern(DestinationPattern):
    """Targets tiles proportionally to their preferential-attachment degree.

    A Barabási–Albert graph is grown over the tiles from a dedicated
    deterministic substream (``(seed, "pattern", "DegreeSkewedPattern",
    "graph")``): starting from an ``m+1``-clique, each further tile
    attaches ``m`` edges to existing tiles with probability proportional
    to their current degree.  Requests then pick a destination *tile*
    with probability ∝ ``degree^beta`` (so early attachers — the hubs —
    absorb most traffic, more sharply as ``beta`` grows) and a uniform
    bank within it.  ``m`` is clamped to ``num_tiles - 1`` on clusters
    too small for the requested clique; a single-tile cluster degrades
    to uniform over that tile.
    """

    name = "degree_skewed"

    def __init__(
        self,
        config: MemPoolConfig,
        m: int = 2,
        beta: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(config, seed)
        check_positive("m", m)
        check_in_range("beta", beta, 0.0, 8.0)
        self.m = m
        self.beta = beta
        degrees = self._grow_degrees(config.num_tiles, m, seed)
        weights = [float(degree) ** beta for degree in degrees]
        total = sum(weights)
        cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cdf.append(acc / total)
        cdf[-1] = 1.0
        self._cdf = cdf
        self.degrees = tuple(degrees)

    @staticmethod
    def _grow_degrees(num_tiles: int, m: int, seed: int) -> list[int]:
        """Degree sequence of the deterministic BA graph over the tiles."""
        if num_tiles == 1:
            return [1]
        m = min(m, num_tiles - 1)
        rng = substream(seed, "pattern", "DegreeSkewedPattern", "graph")
        # Repeated-nodes list: each tile appears once per incident edge,
        # so a uniform pick over it IS preferential attachment.
        targets: list[int] = []
        for node in range(m + 1):
            for other in range(m + 1):
                if node != other:
                    targets.append(node)
        degrees = [m] * (m + 1) + [0] * (num_tiles - m - 1)
        for node in range(m + 1, num_tiles):
            chosen: set[int] = set()
            while len(chosen) < m:
                candidate = targets[rng.randrange(len(targets))]
                chosen.add(candidate)
            for neighbour in chosen:
                degrees[neighbour] += 1
                targets.append(neighbour)
            degrees[node] = m
            targets.extend([node] * m)
        return degrees

    def destination(self, core_id: int) -> int:
        """A degree-weighted tile's uniform bank, from ``core_id``'s substream."""
        rng = self.core_rng(core_id)
        tile = bisect_right(self._cdf, rng.random())
        tile = min(tile, len(self._cdf) - 1)
        config = self.config
        return tile * config.banks_per_tile + rng.randrange(config.banks_per_tile)


register_pattern(
    "scale_free", ScaleFreePattern,
    "power-law bank popularity P(rank r) ~ (r+1)^-exponent, tile-interleaved",
    params={"exponent": lambda v: check_in_range("exponent", v, 0.0, 16.0)},
)
register_pattern(
    "degree_skewed", DegreeSkewedPattern,
    "tiles targeted ~ degree^beta of a deterministic preferential-attachment graph",
    params={
        "m": lambda v: check_positive("m", v),
        "beta": lambda v: check_in_range("beta", v, 0.0, 8.0),
    },
)
