"""Run registered workloads through the execution-driven simulator.

The synthetic-traffic layer (:mod:`repro.traffic`) measures the network
open-loop: unbounded source queues, no core microarchitecture.  This
module provides the *closed-loop* counterpart: a
:class:`WorkloadAgent` turns any registered destination pattern and
injection process into a stream of :class:`~repro.core.agents.Load`
operations, so the same workloads also run through
:class:`~repro.core.system.MemPoolSystem` — cores, reorder buffers,
outstanding-load limits and all — on either timing engine.

Use :func:`build_synthetic_agents` (or the
:meth:`repro.core.system.MemPoolSystem.synthetic` entry point that wraps
it) to build one agent per core.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.addressing.map import BankLocation
from repro.core.agents import Compute, CoreAgent, Load, Operation
from repro.core.cluster import MemPoolCluster
from repro.utils.validation import check_positive
from repro.workloads.base import DestinationPattern, InjectionProcess


class WorkloadAgent(CoreAgent):
    """A core agent issuing loads per an injection process and pattern.

    The agent replays the open-loop generator's timing as an operation
    stream: for each simulated source cycle it asks the injection process
    how many requests arrive, issues one :class:`Load` per arrival to an
    address of the pattern's destination bank, and converts arrival-free
    cycles into :class:`Compute` gaps.  The core's outstanding-load limit
    then closes the loop — a congested network back-pressures the agent,
    which the open-loop measurement deliberately does not model.

    Parameters
    ----------
    cluster : MemPoolCluster
        The cluster the agent addresses (address map and config).
    core_id : int
        The issuing core.
    pattern : DestinationPattern
        Destination pattern shared by every agent of the run.
    injector : InjectionProcess
        Injection process shared by every agent of the run.
    num_requests : int
        Number of loads to issue before finishing.
    """

    def __init__(
        self,
        cluster: MemPoolCluster,
        core_id: int,
        pattern: DestinationPattern,
        injector: InjectionProcess,
        num_requests: int,
    ) -> None:
        check_positive("num_requests", num_requests)
        if injector.injection_rate <= 0.0:
            raise ValueError(
                "WorkloadAgent needs a positive injection rate; a zero-rate "
                "process never arrives and the agent would spin forever"
            )
        self.cluster = cluster
        self.core_id = core_id
        self.pattern = pattern
        self.injector = injector
        self.num_requests = num_requests

    def _bank_address(self, bank_id: int) -> int:
        """A program-visible word address that decodes to global ``bank_id``."""
        config = self.cluster.config
        location = BankLocation(
            tile=config.tile_of_bank(bank_id),
            bank=config.local_bank_index(bank_id),
            row=0,
        )
        return self.cluster.address_map.encode(location)

    def operations(self) -> Iterator[Operation]:
        """Yield ``num_requests`` loads, spaced by the injection process."""
        issued = 0
        cycle = 0
        gap = 0
        while issued < self.num_requests:
            count = self.injector.arrivals(self.core_id, cycle)
            cycle += 1
            if count == 0:
                gap += 1
                continue
            if gap:
                yield Compute(gap)
                gap = 0
            for _ in range(count):
                bank_id = self.pattern.destination(self.core_id)
                yield Load(self._bank_address(bank_id), tag=issued)
                issued += 1
                if issued >= self.num_requests:
                    break


def build_synthetic_agents(
    cluster: MemPoolCluster,
    pattern: DestinationPattern,
    injector: InjectionProcess,
    num_requests: int,
    cores: Iterator[int] | None = None,
) -> dict[int, WorkloadAgent]:
    """One :class:`WorkloadAgent` per core, sharing one pattern and injector.

    Parameters
    ----------
    cluster : MemPoolCluster
        The cluster to run on.
    pattern, injector
        The shared workload components (built via
        :mod:`repro.workloads.registry` or directly).
    num_requests : int
        Loads each core issues.
    cores : iterable of int, optional
        Cores to populate; every core by default.

    Returns
    -------
    dict of int to WorkloadAgent
        Ready to pass as ``agents=`` to
        :class:`~repro.core.system.MemPoolSystem`.
    """
    core_ids = list(cores) if cores is not None else range(cluster.config.num_cores)
    return {
        core_id: WorkloadAgent(cluster, core_id, pattern, injector, num_requests)
        for core_id in core_ids
    }
