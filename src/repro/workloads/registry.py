"""String-keyed registry of destination patterns and injection processes.

The registry is what makes workloads *pluggable*: every consumer — the
traffic simulation, the vector fast path, the evaluation drivers, the
sweep builders and both CLIs — selects workloads by name and passes
parameters as plain primitives, so a new pattern registered here is
immediately runnable through every engine and the cached experiment grid
without touching any of those layers.

Each entry carries per-parameter validators.  :func:`make_pattern` /
:func:`make_injector` reject unknown names (listing the catalogue) and
unknown or invalid parameters *before* constructing anything, so a typo'd
``--pattern`` or sweep grid fails at expansion time rather than deep
inside a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.config import MemPoolConfig
from repro.workloads.base import DestinationPattern, InjectionProcess

#: A per-parameter validator: called with the value, raises ValueError.
Validator = Callable[[Any], None]


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload component (pattern or injector).

    Parameters
    ----------
    name : str
        Registry key, also the CLI spelling (e.g. ``"bit_complement"``).
    factory : callable
        Constructs the component; patterns are called as
        ``factory(config, seed=..., **params)``, injectors as
        ``factory(num_cores, injection_rate, seed=..., **params)``.
    summary : str
        One-line description shown by catalogue listings.
    params : mapping of str to callable
        Accepted parameter names mapped to validators; parameters not
        listed here are rejected by name.
    required : tuple of str
        Subset of ``params`` that has no usable default — the component
        cannot be built without them (e.g. the trace replay pair needs a
        ``path``).  Catalogue sweeps and the fuzzer skip entries with
        required parameters; :meth:`validate` rejects omissions up front.
    """

    name: str
    factory: Callable[..., Any]
    summary: str
    params: Mapping[str, Validator] = field(default_factory=dict)
    required: tuple[str, ...] = ()

    def validate(self, params: Mapping[str, Any]) -> None:
        """Reject unknown/missing parameter names and invalid values.

        Every error names the offending key and lists the valid choices,
        so a typo'd parameter reads as a correction, not a puzzle.
        """
        accepted = ", ".join(sorted(self.params)) or "none"
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {', '.join(unknown)} for workload "
                f"{self.name!r}; accepted: {accepted}"
            )
        missing = sorted(set(self.required) - set(params))
        if missing:
            raise ValueError(
                f"workload {self.name!r} requires parameter(s) "
                f"{', '.join(missing)}; accepted: {accepted}"
            )
        for key, value in params.items():
            try:
                self.params[key](value)
            except ValueError as error:
                raise ValueError(
                    f"invalid value for parameter {key!r} of workload "
                    f"{self.name!r}: {error}"
                ) from None


_PATTERNS: dict[str, WorkloadEntry] = {}
_INJECTORS: dict[str, WorkloadEntry] = {}


def register_pattern(
    name: str,
    factory: Callable[..., DestinationPattern],
    summary: str,
    params: Mapping[str, Validator] | None = None,
    required: tuple[str, ...] = (),
) -> None:
    """Register a destination pattern under ``name`` (overwrites quietly)."""
    _PATTERNS[name] = WorkloadEntry(
        name, factory, summary, dict(params or {}), tuple(required)
    )


def register_injector(
    name: str,
    factory: Callable[..., InjectionProcess],
    summary: str,
    params: Mapping[str, Validator] | None = None,
    required: tuple[str, ...] = (),
) -> None:
    """Register an injection process under ``name`` (overwrites quietly)."""
    _INJECTORS[name] = WorkloadEntry(
        name, factory, summary, dict(params or {}), tuple(required)
    )


def _lookup(table: dict[str, WorkloadEntry], kind: str, name: str) -> WorkloadEntry:
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown {kind} {name!r}; available: {', '.join(sorted(table))}"
        ) from None


def pattern_entry(name: str) -> WorkloadEntry:
    """The registered :class:`WorkloadEntry` of destination pattern ``name``.

    Raises the same unknown-name ``ValueError`` (listing the catalogue) as
    :func:`make_pattern`; used by callers — the differential fuzzer, the
    replay-spec parser — that need the accepted parameter names without
    building anything.
    """
    return _lookup(_PATTERNS, "destination pattern", name)


def injector_entry(name: str) -> WorkloadEntry:
    """The registered :class:`WorkloadEntry` of injection process ``name``.

    The injector sibling of :func:`pattern_entry`.
    """
    return _lookup(_INJECTORS, "injection process", name)


def make_pattern(
    name: str, config: MemPoolConfig, seed: int = 0, **params: Any
) -> DestinationPattern:
    """Build the registered destination pattern ``name``.

    Parameters
    ----------
    name : str
        Registry key of the pattern (see :func:`available_patterns`).
    config : MemPoolConfig
        Cluster the pattern addresses.
    seed : int
        Experiment seed the pattern's substreams are mixed from.
    **params
        Pattern-specific knobs; validated against the entry before
        construction.

    Examples
    --------
    >>> pattern = make_pattern("uniform", MemPoolConfig.tiny(), seed=3)
    >>> 0 <= pattern.destination(0) < pattern.config.num_banks
    True
    >>> make_pattern("nope", MemPoolConfig.tiny())
    Traceback (most recent call last):
        ...
    ValueError: unknown destination pattern 'nope'; available: ...
    """
    entry = _lookup(_PATTERNS, "destination pattern", name)
    entry.validate(params)
    return entry.factory(config, seed=seed, **params)


def make_injector(
    name: str, num_cores: int, injection_rate: float, seed: int = 0, **params: Any
) -> InjectionProcess:
    """Build the registered injection process ``name``.

    Examples
    --------
    >>> injector = make_injector("poisson", 4, 0.25, seed=1)
    >>> injector.arrivals(0, 0) >= 0
    True
    """
    entry = _lookup(_INJECTORS, "injection process", name)
    entry.validate(params)
    return entry.factory(num_cores, injection_rate, seed=seed, **params)


def available_patterns() -> tuple[str, ...]:
    """Sorted registry keys of every destination pattern."""
    return tuple(sorted(_PATTERNS))


def available_injectors() -> tuple[str, ...]:
    """Sorted registry keys of every injection process."""
    return tuple(sorted(_INJECTORS))


def pattern_catalogue() -> tuple[WorkloadEntry, ...]:
    """Every registered pattern entry, sorted by name (for listings/docs)."""
    return tuple(_PATTERNS[name] for name in available_patterns())


def injector_catalogue() -> tuple[WorkloadEntry, ...]:
    """Every registered injector entry, sorted by name (for listings/docs)."""
    return tuple(_INJECTORS[name] for name in available_injectors())
