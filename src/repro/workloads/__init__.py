"""Pluggable workloads: destination patterns x injection processes.

This package is the single home of *what the cluster is asked to do*: a
string-keyed registry of destination patterns (where requests go) and
injection processes (when they are generated), each exposing both a scalar
API (consumed by the legacy object engine) and a batched API (consumed by
the vector engine's fast path).  Every consumer — the open-loop traffic
simulation, the vector fast path, the execution-driven system, the
evaluation drivers and both CLIs — selects workloads by name through
:func:`make_pattern` / :func:`make_injector`, so registering a new
component here makes it runnable everywhere at once.

See :mod:`repro.workloads.rng` for the reproducibility contract (per-core
RNG substreams, and which legacy components are grandfathered onto the
seed repository's shared streams).
"""

from repro.workloads.base import DestinationPattern, InjectionProcess
from repro.workloads.graph import DegreeSkewedPattern, ScaleFreePattern
from repro.workloads.injection import (
    BernoulliInjector,
    BurstyInjector,
    PoissonInjector,
)
from repro.workloads.patterns import (
    BitComplementPattern,
    BitReversePattern,
    HotspotPattern,
    LocalBiasedPattern,
    NearestNeighbourPattern,
    ShufflePattern,
    TablePattern,
    TilePermutationPattern,
    TornadoPattern,
    TransposePattern,
    UniformRandomPattern,
)
from repro.workloads.registry import (
    WorkloadEntry,
    available_injectors,
    available_patterns,
    injector_catalogue,
    make_injector,
    make_pattern,
    pattern_catalogue,
    register_injector,
    register_pattern,
)
from repro.workloads.rng import substream, substream_seed
from repro.workloads.trace import (
    TraceData,
    TraceFormatError,
    TraceInjectionProcess,
    TracePattern,
    load_trace,
    read_trace_header,
    record_trace,
    records_from_flit_log,
    trace_sha,
    write_trace,
)

__all__ = [
    "DestinationPattern",
    "InjectionProcess",
    "UniformRandomPattern",
    "LocalBiasedPattern",
    "TablePattern",
    "TilePermutationPattern",
    "BitComplementPattern",
    "BitReversePattern",
    "TransposePattern",
    "ShufflePattern",
    "TornadoPattern",
    "NearestNeighbourPattern",
    "HotspotPattern",
    "ScaleFreePattern",
    "DegreeSkewedPattern",
    "TracePattern",
    "TraceInjectionProcess",
    "TraceData",
    "TraceFormatError",
    "load_trace",
    "read_trace_header",
    "record_trace",
    "records_from_flit_log",
    "trace_sha",
    "write_trace",
    "PoissonInjector",
    "BernoulliInjector",
    "BurstyInjector",
    "WorkloadEntry",
    "register_pattern",
    "register_injector",
    "make_pattern",
    "make_injector",
    "available_patterns",
    "available_injectors",
    "pattern_catalogue",
    "injector_catalogue",
    "substream",
    "substream_seed",
]
