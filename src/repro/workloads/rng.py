"""Deterministic RNG substreams for workload components.

Every stochastic workload component (a destination pattern, an injection
process) needs randomness that is

* **reproducible** — the same experiment seed must produce the same draws
  on every machine and every run, because figure outputs are compared
  bit-for-bit against committed references;
* **non-aliasing** — two components in the same run must never consume
  the same underlying stream.  The seed state of the repository had
  exactly this bug: every :class:`TrafficPattern` wrapped one shared
  ``random.Random(seed)``, so two patterns built from the same seed drew
  interleaved values from *identical* streams.

This module provides per-component, per-core substreams derived from one
experiment seed by *seed mixing*: the seed and a sequence of role tags
(for example ``("pattern", "HotspotPattern", core_id)``) are folded
through the splitmix64 finaliser, whose avalanche behaviour guarantees
that adjacent inputs produce statistically independent outputs.  String
tags are first reduced to 64-bit integers with BLAKE2b, so the mix does
not depend on :func:`hash` (and therefore not on ``PYTHONHASHSEED``).

Reproducibility contract
------------------------

* New workload components draw exclusively from
  :func:`substream`-derived generators keyed on ``(seed, role, component
  name, core id)``.  Distinct components — and distinct cores within a
  component — therefore own disjoint streams by construction.
* The two **legacy default workloads** are grandfathered: for fixed-seed
  backwards compatibility, ``UniformRandomPattern`` /
  ``LocalBiasedPattern`` keep drawing from the shared
  ``random.Random(seed)`` stream and ``PoissonInjector`` from
  ``random.Random(seed ^ 0x5EED)``, in exactly the seed repository's
  draw order.  This is what keeps the fig5/fig6 fixed-seed outputs
  bit-identical across the refactor; it is documented here rather than
  silently relied upon.
"""

from __future__ import annotations

import hashlib
import random

_MASK64 = (1 << 64) - 1
#: The splitmix64 increment (the 64-bit golden ratio).
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """One application of the splitmix64 finaliser (full 64-bit avalanche)."""
    value = (value + _GOLDEN_GAMMA) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _tag_to_int(tag: int | str) -> int:
    """Reduce a mixing tag to a 64-bit integer, independent of PYTHONHASHSEED."""
    if isinstance(tag, bool) or not isinstance(tag, (int, str)):
        raise TypeError(f"substream tags must be int or str, got {tag!r}")
    if isinstance(tag, int):
        return tag & _MASK64
    digest = hashlib.blake2b(tag.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def substream_seed(seed: int, *tags: int | str) -> int:
    """Derive a 64-bit subseed from an experiment seed and a tag path.

    Parameters
    ----------
    seed : int
        The experiment seed every component of a run shares.
    *tags : int or str
        The component's identity path, e.g. ``("pattern", "HotspotPattern",
        core_id)``.  Different paths yield independent subseeds; the same
        path always yields the same subseed.

    Examples
    --------
    >>> substream_seed(0, "pattern", 3) == substream_seed(0, "pattern", 3)
    True
    >>> substream_seed(0, "pattern", 3) == substream_seed(0, "pattern", 4)
    False
    >>> substream_seed(0, "pattern", 3) == substream_seed(0, "injector", 3)
    False
    """
    state = seed & _MASK64
    for tag in tags:
        state = _splitmix64(state ^ _tag_to_int(tag))
    return state


def substream(seed: int, *tags: int | str) -> random.Random:
    """A ``random.Random`` seeded on :func:`substream_seed` of the tag path.

    Examples
    --------
    >>> a = substream(7, "injector", "bernoulli", 0)
    >>> b = substream(7, "injector", "bernoulli", 0)
    >>> [a.random() for _ in range(3)] == [b.random() for _ in range(3)]
    True
    """
    return random.Random(substream_seed(seed, *tags))
