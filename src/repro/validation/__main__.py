"""Command-line entry point of the validation layer.

Two jobs, mirroring the package's two halves:

- ``python -m repro.validation --replay 'toph:pattern=hotspot,...'``
  replays one differential-fuzz case (the spec emitted by a
  :class:`~repro.validation.fuzz.DivergenceError`) across all engines and
  reports agreement or the exact divergence — this is how a CI fuzz
  failure is reproduced on any machine, without Hypothesis installed.
- ``python -m repro.validation fuzz --budget N`` runs a bounded fuzz
  campaign locally (the CI harness is ``tests/test_fuzz_differential.py``;
  this path is for interactive exploration with arbitrary budgets).
"""

from __future__ import annotations

import argparse
import sys

from repro.validation.fuzz import (
    ENGINES_CHECKED,
    DivergenceError,
    FuzzCase,
    check_case,
    degree_skewed_cases,
    fuzz_cases,
    run_fuzz,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.validation`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation",
        description="differential fuzzing of the timing engines",
    )
    parser.add_argument(
        "--replay",
        metavar="SPEC",
        help="replay one fuzz case spec (name:k=v,...) across all engines",
    )
    subparsers = parser.add_subparsers(dest="command")
    fuzz = subparsers.add_parser(
        "fuzz", help="run a bounded differential-fuzz campaign"
    )
    fuzz.add_argument(
        "--budget", type=int, default=50,
        help="number of sampled configurations (default: %(default)s)",
    )
    fuzz.add_argument(
        "--scale", choices=("tiny", "scaled"), default="tiny",
        help="cluster scale the cases run at (default: %(default)s)",
    )
    fuzz.add_argument(
        "--skewed", action="store_true",
        help="use the degree-skewed hotspot strategy instead of the full space",
    )
    return parser


def _replay(spec: str) -> int:
    """Replay one spec; print the verdict; exit code 1 on divergence."""
    try:
        case = FuzzCase.from_spec(spec)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"replaying: {case.to_spec()}")
    try:
        results = check_case(case)
    except DivergenceError as error:
        print(error, file=sys.stderr)
        return 1
    reference = results[ENGINES_CHECKED[0]]
    print(
        f"engines agree ({', '.join(ENGINES_CHECKED)}): "
        f"{reference.completed_requests} completed requests, "
        f"average latency {reference.average_latency:.4f} cycles"
    )
    return 0


def _fuzz(budget: int, scale: str, skewed: bool) -> int:
    """Run a local fuzz campaign; exit code 1 on divergence."""
    try:
        import hypothesis  # noqa: F401 - availability probe
    except ImportError:
        print(
            "error: the fuzz command needs the 'hypothesis' package",
            file=sys.stderr,
        )
        return 2
    strategy = degree_skewed_cases(scale) if skewed else fuzz_cases(scale)
    label = "degree-skewed" if skewed else "full-space"
    print(f"fuzzing: {label} strategy, budget {budget}, scale {scale}")
    try:
        checked = run_fuzz(budget, scale=scale, strategy=strategy)
    except DivergenceError as error:
        print(error, file=sys.stderr)
        return 1
    print(f"ok: {checked} configurations checked, all engines agree")
    return 0


def main(argv=None) -> int:
    """CLI dispatch; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.replay is not None:
        return _replay(args.replay)
    if args.command == "fuzz":
        return _fuzz(args.budget, args.scale, args.skewed)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
