"""Golden-band statistical validation of simulator results.

The statistical half of the validation layer: a small committed corpus of
*golden cases* — representative (topology, workload, load) points, each
measured over a batch of seeds via
:meth:`repro.engine.batch.TrafficBatch.of_seeds` — pins the simulator's
latency/throughput behaviour in ``benchmarks/GOLDEN_validation.json``.
``repro.experiments validate`` re-measures every case, computes each
metric's relative deviation from its committed mean, attaches a bootstrap
confidence interval (:mod:`repro.validation.bootstrap`) to the fresh
measurement, and classifies the deviation into the severity bands of
:mod:`repro.validation.bands`.

Because every engine is deterministic for fixed seeds, an unmodified tree
reproduces its goldens *exactly* (deviation 0.0 → ``OK``); any non-OK row
is a real behavioural change, and the band — plus the confidence interval
around the new measurement — tells the reviewer whether it is noise-sized
drift or a broken mechanism.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.cluster import MemPoolCluster
from repro.engine.batch import TrafficBatch
from repro.topologies.registry import validate_topology
from repro.validation.bands import BandPolicy, Severity
from repro.validation.bootstrap import BootstrapSummary, bootstrap_mean
from repro.validation.fuzz import SCALES
from repro.workloads.registry import injector_entry, pattern_entry

#: Result metrics the validator pins for every golden case.
METRICS = ("average_latency", "throughput", "p95_latency")

#: Schema tag written into (and required from) golden files.
GOLDEN_SCHEMA = "repro.validation/golden-v1"

#: Default on-disk locations, next to the BENCH baselines.
GOLDEN_PATH = Path("benchmarks") / "GOLDEN_validation.json"
REPORT_PATH = Path("benchmarks") / "VALIDATION_report.json"


@dataclass(frozen=True)
class GoldenCase:
    """One committed validation point: a workload measured over many seeds.

    The statistical sibling of
    :class:`repro.validation.fuzz.FuzzCase`: instead of one seed compared
    across engines, one configuration is measured across a seed batch on
    the ``batch`` engine, and the per-seed metric samples feed the
    bootstrap.  Component parameters are stored as sorted ``(key, value)``
    tuples (hashable, JSON-stable).
    """

    name: str
    topology: str
    pattern: str
    injector: str
    load: float
    seeds: tuple = tuple(range(8))
    warmup: int = 80
    measure: int = 240
    topology_params: tuple = ()
    pattern_params: tuple = ()
    injector_params: tuple = ()
    scale: str = "tiny"

    def __post_init__(self) -> None:
        for params_field in ("topology_params", "pattern_params", "injector_params"):
            raw = getattr(self, params_field)
            pairs = raw.items() if hasattr(raw, "items") else raw
            object.__setattr__(
                self,
                params_field,
                tuple(sorted((str(key), value) for key, value in pairs)),
            )
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        if not self.seeds:
            raise ValueError(f"golden case {self.name!r} needs at least one seed")
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r} in golden case {self.name!r}; "
                f"valid: {', '.join(sorted(SCALES))}"
            )
        validate_topology(self.topology, dict(self.topology_params))
        pattern_entry(self.pattern).validate(dict(self.pattern_params))
        injector_entry(self.injector).validate(dict(self.injector_params))

    def to_dict(self) -> dict:
        """JSON-serialisable form (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "topology": self.topology,
            "topology_params": dict(self.topology_params),
            "pattern": self.pattern,
            "pattern_params": dict(self.pattern_params),
            "injector": self.injector,
            "injector_params": dict(self.injector_params),
            "load": self.load,
            "seeds": list(self.seeds),
            "warmup": self.warmup,
            "measure": self.measure,
            "scale": self.scale,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GoldenCase":
        """Rebuild a :class:`GoldenCase` from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            topology=data["topology"],
            pattern=data["pattern"],
            injector=data["injector"],
            load=data["load"],
            seeds=tuple(data["seeds"]),
            warmup=data["warmup"],
            measure=data["measure"],
            topology_params=tuple(data.get("topology_params", {}).items()),
            pattern_params=tuple(data.get("pattern_params", {}).items()),
            injector_params=tuple(data.get("injector_params", {}).items()),
            scale=data.get("scale", "tiny"),
        )


#: The committed validation corpus: one case per structurally distinct
#: regime — the paper's hierarchical topology under uniform and local
#: traffic, a single shared butterfly near saturation, an adversarial
#: constant-offset pattern on a grid, and converging hotspot bursts on a
#: torus.  Small on purpose: each case re-measures in seconds, and the
#: fuzzer (not this corpus) owns configuration-space coverage.
DEFAULT_CASES = (
    GoldenCase(
        name="toph-uniform-poisson", topology="toph",
        pattern="uniform", injector="poisson", load=0.30,
    ),
    GoldenCase(
        name="top1-uniform-heavy", topology="top1",
        pattern="uniform", injector="poisson", load=0.50,
    ),
    GoldenCase(
        name="mesh-tornado-bernoulli", topology="mesh",
        topology_params=(("width", 2), ("height", 2)),
        pattern="tornado", injector="bernoulli", load=0.40,
    ),
    GoldenCase(
        name="torus-hotspot-bursty", topology="torus",
        topology_params=(("width", 2), ("height", 2)),
        pattern="hotspot",
        pattern_params=(("p_hot", 0.7), ("num_hotspots", 2)),
        injector="bursty",
        injector_params=(("burst_len", 4.0), ("burst_rate", 0.8)),
        load=0.35,
    ),
    GoldenCase(
        name="toph-local-biased", topology="toph",
        pattern="local_biased", pattern_params=(("p_local", 0.6),),
        injector="poisson", load=0.45,
    ),
)


def measure_case(case: GoldenCase) -> dict:
    """Measure one golden case: seed batch in, bootstrap summaries out.

    Runs every seed as one :meth:`TrafficBatch.of_seeds` batch on the
    ``batch`` engine — the whole seed sweep costs barely more than a
    single run — then bootstraps each metric's per-seed sample.  Returns
    ``{metric: BootstrapSummary}`` for :data:`METRICS`.
    """
    config = SCALES[case.scale](case.topology, topology_params=case.topology_params)
    cluster = MemPoolCluster(config, engine="batch")
    batch = TrafficBatch.of_seeds(
        cluster,
        case.load,
        case.seeds,
        pattern=case.pattern,
        injector=case.injector,
        pattern_params=dict(case.pattern_params) or None,
        injector_params=dict(case.injector_params) or None,
    )
    results = batch.run(case.warmup, case.measure)
    return {
        metric: bootstrap_mean([getattr(result, metric) for result in results])
        for metric in METRICS
    }


def write_goldens(
    path=GOLDEN_PATH, cases=None, policy: BandPolicy | None = None
) -> dict:
    """Measure ``cases`` and commit them as the golden file at ``path``.

    The written document embeds the band policy alongside the measured
    bootstrap summaries, so ``validate`` applies the same thresholds the
    goldens were committed under (CLI flags can still override them).
    Returns the written document.
    """
    policy = policy or BandPolicy()
    if cases is None:
        cases = DEFAULT_CASES
    document = {
        "schema": GOLDEN_SCHEMA,
        "policy": policy.to_dict(),
        "metrics": list(METRICS),
        "cases": [
            {"case": case.to_dict(),
             "golden": {metric: summary.to_dict()
                        for metric, summary in measure_case(case).items()}}
            for case in cases
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_goldens(path=GOLDEN_PATH):
    """Load a golden file; returns ``(records, policy)``.

    Each record is a ``(GoldenCase, {metric: BootstrapSummary})`` pair.
    Raises ``ValueError`` for a missing file (pointing at the ``--update``
    workflow) or a schema mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise ValueError(
            f"golden file {path} does not exist; commit one with "
            "'python -m repro.experiments validate --update' "
            f"(or 'make validate-update')"
        )
    document = json.loads(path.read_text())
    schema = document.get("schema")
    if schema != GOLDEN_SCHEMA:
        raise ValueError(
            f"golden file {path} has schema {schema!r}, expected "
            f"{GOLDEN_SCHEMA!r}; re-commit it with --update"
        )
    records = [
        (
            GoldenCase.from_dict(entry["case"]),
            {
                metric: BootstrapSummary(**summary)
                for metric, summary in entry["golden"].items()
            },
        )
        for entry in document["cases"]
    ]
    policy = BandPolicy.from_dict(document["policy"])
    return records, policy


# --------------------------------------------------------------------------- #
# Validation report
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ValidationRow:
    """One (case, metric) comparison between golden and fresh measurement."""

    case: str
    metric: str
    golden_mean: float
    measured: BootstrapSummary
    deviation: float
    severity: Severity
    action: str

    @property
    def golden_in_ci(self) -> bool:
        """Whether the golden mean lies inside the fresh measurement's CI."""
        return self.measured.ci_low <= self.golden_mean <= self.measured.ci_high

    def to_dict(self) -> dict:
        """JSON-serialisable form for the validation report artifact."""
        return {
            "case": self.case,
            "metric": self.metric,
            "golden_mean": self.golden_mean,
            "measured": self.measured.to_dict(),
            "deviation": self.deviation,
            "severity": self.severity.name.lower(),
            "action": self.action,
            "golden_in_ci": self.golden_in_ci,
        }


@dataclass(frozen=True)
class ValidationReport:
    """Every row of one validation run plus its overall verdict."""

    rows: tuple
    policy: BandPolicy
    golden_path: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))

    @property
    def worst(self) -> Severity:
        """The most severe band across all rows (``OK`` when empty)."""
        return max(
            (row.severity for row in self.rows), default=Severity.OK
        )

    @property
    def verdict(self) -> str:
        """Overall ``accept``/``warn``/``reject`` (worst row wins)."""
        return self.policy.action(self.worst)

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 unless the verdict is ``reject``."""
        return 1 if self.verdict == "reject" else 0

    def report(self) -> str:
        """Human-readable fixed-width table plus the verdict line."""
        header = (
            f"{'case':<24} {'metric':<16} {'golden':>12} {'measured':>12} "
            f"{'dev%':>8} {'severity':<9} action"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.case:<24} {row.metric:<16} {row.golden_mean:>12.6f} "
                f"{row.measured.mean:>12.6f} {100.0 * row.deviation:>8.3f} "
                f"{row.severity.name:<9} {row.action}"
            )
        lines.append(
            f"verdict: {self.verdict} (worst severity: {self.worst.name}, "
            f"{len(self.rows)} rows, bands "
            f"{'/'.join(str(edge) for edge in self.policy.edges)})"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form written to ``VALIDATION_report.json``."""
        return {
            "schema": "repro.validation/report-v1",
            "golden_path": self.golden_path,
            "policy": self.policy.to_dict(),
            "rows": [row.to_dict() for row in self.rows],
            "worst": self.worst.name.lower(),
            "verdict": self.verdict,
            "exit_code": self.exit_code,
        }


def relative_deviation(measured: float, golden: float) -> float:
    """``|measured - golden| / |golden|`` with an exact-zero golden guard.

    A zero golden with a zero measurement deviates 0.0; a zero golden with
    any non-zero measurement is infinitely deviant (always ``CRITICAL``).
    """
    if golden == 0.0:
        return 0.0 if measured == 0.0 else float("inf")
    return abs(measured - golden) / abs(golden)


def validate_goldens(
    path=GOLDEN_PATH, policy: BandPolicy | None = None
) -> ValidationReport:
    """Re-measure every golden case and classify the deviations.

    Parameters
    ----------
    path : path-like
        Golden file written by :func:`write_goldens`.
    policy : BandPolicy, optional
        Threshold override; defaults to the policy committed in the file.
    """
    records, file_policy = load_goldens(path)
    policy = policy or file_policy
    rows = []
    for case, golden in records:
        fresh = measure_case(case)
        for metric in METRICS:
            deviation = relative_deviation(fresh[metric].mean, golden[metric].mean)
            severity = policy.classify(deviation)
            rows.append(
                ValidationRow(
                    case=case.name,
                    metric=metric,
                    golden_mean=golden[metric].mean,
                    measured=fresh[metric],
                    deviation=deviation,
                    severity=severity,
                    action=policy.action(severity),
                )
            )
    return ValidationReport(rows=tuple(rows), policy=policy, golden_path=str(path))
