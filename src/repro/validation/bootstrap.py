"""Bootstrap confidence intervals for per-seed metric samples.

The statistical half of the validation layer: SimBatch makes a
batch-of-seeds nearly free (see
:meth:`repro.engine.batch.TrafficBatch.of_seeds`), so every golden metric
is the *mean over seeds* of a per-seed sample — and the percentile
bootstrap attaches a confidence interval to that mean without any
distributional assumption on the underlying latency/throughput values.

Everything here is deterministic: the resampling RNG is seeded, so the
same per-seed samples always produce the same interval (goldens and
reports stay byte-stable across runs and machines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BootstrapSummary:
    """Mean, spread and bootstrap confidence interval of one sample.

    Parameters
    ----------
    mean, std : float
        Sample mean and population standard deviation.
    ci_low, ci_high : float
        Percentile-bootstrap confidence bounds of the mean.
    confidence : float
        Confidence level of the interval (e.g. ``0.95``).
    count : int
        Sample size (number of seeds).
    """

    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float
    count: int

    @property
    def half_width(self) -> float:
        """Half the confidence-interval width (0.0 for a point interval)."""
        return (self.ci_high - self.ci_low) / 2.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (keys match the golden-file schema)."""
        return {
            "mean": self.mean,
            "std": self.std,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
            "count": self.count,
        }


def bootstrap_mean(
    samples,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapSummary:
    """Percentile-bootstrap confidence interval of a sample mean.

    Parameters
    ----------
    samples : iterable of float
        The per-seed metric values (at least one).
    confidence : float
        Two-sided confidence level in (0, 1).
    resamples : int
        Number of bootstrap resamples (vectorized, so thousands are cheap).
    seed : int
        Seed of the resampling RNG — fixed by default so goldens are
        reproducible.

    Examples
    --------
    >>> summary = bootstrap_mean([1.0, 2.0, 3.0, 4.0])
    >>> summary.ci_low <= summary.mean <= summary.ci_high
    True
    >>> bootstrap_mean([5.0]).half_width
    0.0
    """
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        raise ValueError("bootstrap_mean needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be positive, got {resamples}")
    mean = float(values.mean())
    std = float(values.std())
    if values.size == 1:
        # A single seed has no resampling variability; the interval is a
        # point (and the validator will rely on the relative bands alone).
        return BootstrapSummary(mean, 0.0, mean, mean, confidence, 1)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    ci_low, ci_high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapSummary(
        mean, std, float(ci_low), float(ci_high), confidence, int(values.size)
    )
