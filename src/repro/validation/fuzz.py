"""Property-based differential fuzzing of the three timing engines.

The enumerated cross-engine golden tests (``tests/test_engine_equivalence``
and ``tests/test_engine_batch``) pin a grid of known configurations; this
module samples the *whole* configuration space — topology x topology
parameters x destination pattern x injection process x seed x measurement
window, filtered through the topology and workload registries' own
validators — and asserts that the ``legacy``, ``vector`` and ``batch``
engines produce flit-for-flit identical logs on every sampled point.

Every failing sample is reported as a **replay spec**: a one-line
``name:k=v,...`` string (the topology-spec grammar extended with the
workload and window knobs) that reconstructs the exact failing
configuration via ``python -m repro.validation --replay '<spec>'`` — so a
CI fuzz failure is reproducible on any machine without Hypothesis's
example database.  Hypothesis still shrinks failures deterministically
first, so the emitted spec is the *minimal* failing configuration it
found.

The strategy space deliberately includes degree-skewed hotspot traffic
(:func:`degree_skewed_cases`): the mean-first-passage-time analysis on
scale-free networks (arxiv 0908.0976) shows heavy-tailed destination
popularity concentrates load on few nodes, which drives the arbitration
and elastic-buffer paths that uniform traffic rarely saturates — exactly
where engine implementations are most likely to disagree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.topologies.registry import (
    available_topologies,
    parse_scalar,
    topology_entry,
    validate_topology,
)
from repro.utils.validation import is_power_of
from repro.workloads.registry import (
    available_injectors,
    available_patterns,
    injector_entry,
    pattern_entry,
)

#: Engines every sampled configuration is cross-checked on.
ENGINES_CHECKED = ("legacy", "vector", "batch", "compiled")

#: Scalar result fields compared across engines (the flit log is compared
#: separately and first — it implies most of these, but a field-level
#: mismatch message is far more readable than a log diff).
COMPARED_FIELDS = (
    "topology",
    "injected_load",
    "measured_cycles",
    "num_cores",
    "generated_requests",
    "injected_requests",
    "completed_requests",
    "average_latency",
    "p95_latency",
    "max_latency",
    "local_fraction",
)

#: Cluster scales a fuzz case may run at (kept small: the point of the
#: fuzzer is configuration coverage, not cluster size).
SCALES = {"tiny": MemPoolConfig.tiny, "scaled": MemPoolConfig.scaled}

#: Environment variable naming a file that every failing case's replay
#: spec is appended to (one per line) — CI uploads it as an artifact.
REPRODUCER_FILE_ENV = "FUZZ_REPRODUCER_FILE"

#: Keys of the replay-spec grammar that are not component parameters.
_RESERVED_KEYS = (
    "pattern", "injector", "seed", "load", "warmup", "measure", "scale",
)


@dataclass(frozen=True)
class FuzzCase:
    """One sampled point of the differential-fuzz configuration space.

    Component parameters are stored as sorted ``(key, value)`` tuples so
    cases are hashable and comparable (mirroring
    :attr:`repro.core.config.MemPoolConfig.topology_params`).
    """

    topology: str
    pattern: str
    injector: str
    seed: int
    load: float
    warmup: int
    measure: int
    topology_params: tuple = ()
    pattern_params: tuple = ()
    injector_params: tuple = ()
    scale: str = "tiny"

    def __post_init__(self) -> None:
        for name in ("topology_params", "pattern_params", "injector_params"):
            raw = getattr(self, name)
            pairs = raw.items() if hasattr(raw, "items") else raw
            object.__setattr__(
                self, name, tuple(sorted((str(key), value) for key, value in pairs))
            )
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; valid: {', '.join(sorted(SCALES))}"
            )
        if self.warmup < 0 or self.measure < 1:
            raise ValueError(
                f"windows must satisfy warmup >= 0 and measure >= 1; got "
                f"warmup={self.warmup}, measure={self.measure}"
            )
        # Filter the case through the registries' own validators: a spec
        # (or a strategy bug) with an unknown name or bad parameter fails
        # here with the registry's message, before any engine runs.
        validate_topology(self.topology, dict(self.topology_params))
        pattern_entry(self.pattern).validate(dict(self.pattern_params))
        injector_entry(self.injector).validate(dict(self.injector_params))
        # Per-parameter validation above cannot see cross-parameter
        # structure (mesh width*height must tile num_tiles, butterfly
        # radix must divide the tile count, ...); building the topology
        # once surfaces those as a clean ValueError instead of a
        # traceback three engines deep into a replay.
        from repro.interconnect.topology import build_topology

        build_topology(self.config())

    # ------------------------------------------------------------------ #
    # Replay-spec round trip
    # ------------------------------------------------------------------ #

    def to_spec(self) -> str:
        """Serialise the case as a one-line ``name:k=v,...`` replay spec.

        The grammar is the topology CLI spec extended with the reserved
        keys ``pattern``/``injector``/``seed``/``load``/``warmup``/
        ``measure`` (and ``scale`` when not ``tiny``); component
        parameters ride along flat, routed back to their owner by
        :meth:`from_spec` via the registries' accepted-parameter names.
        """
        owners = {
            "topology": dict(self.topology_params),
            "pattern": dict(self.pattern_params),
            "injector": dict(self.injector_params),
        }
        seen: dict[str, str] = {}
        for owner, params in owners.items():
            for key in params:
                if key in _RESERVED_KEYS or key in seen:
                    clash = seen.get(key, "the spec grammar")
                    raise ValueError(
                        f"parameter {key!r} of the {owner} collides with "
                        f"{clash}; the flat replay-spec grammar cannot "
                        "express it"
                    )
                seen[key] = f"the {owner}"
        items = []
        for params in owners.values():
            items.extend(f"{key}={_format_scalar(value)}" for key, value in
                         sorted(params.items()))
        items.append(f"pattern={self.pattern}")
        items.append(f"injector={self.injector}")
        items.append(f"seed={self.seed}")
        items.append(f"load={_format_scalar(self.load)}")
        items.append(f"warmup={self.warmup}")
        items.append(f"measure={self.measure}")
        if self.scale != "tiny":
            items.append(f"scale={self.scale}")
        return f"{self.topology}:{','.join(items)}"

    @classmethod
    def from_spec(cls, spec: str) -> "FuzzCase":
        """Parse a replay spec back into a :class:`FuzzCase`.

        Inverse of :meth:`to_spec`; every error names the offending key
        and lists the valid choices (the registries' own messages are
        reused for component parameters).

        Examples
        --------
        >>> case = FuzzCase.from_spec(
        ...     "mesh:width=2,height=2,pattern=hotspot,p_hot=0.5,"
        ...     "injector=poisson,seed=3,load=0.25,warmup=20,measure=80")
        >>> case.topology, dict(case.pattern_params)
        ('mesh', {'p_hot': 0.5})
        >>> FuzzCase.from_spec(case.to_spec()) == case
        True
        """
        name, _, raw = spec.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(
                f"replay spec {spec!r} is missing the topology name before "
                f"':'; available: {', '.join(available_topologies())}"
            )
        values: dict[str, object] = {}
        if raw.strip():
            for item in raw.split(","):
                key, separator, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not key or not separator or not value:
                    missing = "key" if not key else "'='" if not separator else "value"
                    raise ValueError(
                        f"malformed parameter {item.strip()!r} in replay "
                        f"spec {spec!r} (missing the {missing}); expected "
                        "name:key=value,key=value"
                    )
                if key in values:
                    raise ValueError(
                        f"duplicate parameter {key!r} in replay spec {spec!r}"
                    )
                values[key] = parse_scalar(value)
        pattern = str(values.pop("pattern", "uniform"))
        injector = str(values.pop("injector", "poisson"))
        seed = values.pop("seed", 0)
        load = values.pop("load", 0.3)
        warmup = values.pop("warmup", 50)
        measure = values.pop("measure", 150)
        scale = str(values.pop("scale", "tiny"))
        owners = (
            ("topology", set(topology_entry(name).params)),
            ("pattern", set(pattern_entry(pattern).params)),
            ("injector", set(injector_entry(injector).params)),
        )
        routed: dict[str, dict] = {owner: {} for owner, _ in owners}
        for key, value in values.items():
            accepting = [owner for owner, accepted in owners if key in accepted]
            if not accepting:
                valid = sorted(set().union(*(accepted for _, accepted in owners)))
                raise ValueError(
                    f"unknown parameter {key!r} in replay spec {spec!r}; "
                    f"accepted for {name}/{pattern}/{injector}: "
                    f"{', '.join(valid) or 'none'} (reserved: "
                    f"{', '.join(_RESERVED_KEYS)})"
                )
            if len(accepting) > 1:
                raise ValueError(
                    f"ambiguous parameter {key!r} in replay spec {spec!r}: "
                    f"accepted by {' and '.join(accepting)}"
                )
            routed[accepting[0]][key] = value
        return cls(
            topology=name,
            pattern=pattern,
            injector=injector,
            seed=int(seed),
            load=float(load),
            warmup=int(warmup),
            measure=int(measure),
            topology_params=tuple(routed["topology"].items()),
            pattern_params=tuple(routed["pattern"].items()),
            injector_params=tuple(routed["injector"].items()),
            scale=scale,
        )

    def config(self) -> MemPoolConfig:
        """The cluster configuration this case runs on."""
        return SCALES[self.scale](
            self.topology, topology_params=self.topology_params
        )


def _format_scalar(value) -> str:
    """Format one spec value so :func:`parse_scalar` round-trips it."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


# --------------------------------------------------------------------------- #
# Differential execution
# --------------------------------------------------------------------------- #


class DivergenceError(AssertionError):
    """Two engines disagreed on a sampled configuration.

    Carries the failing :class:`FuzzCase` and its replay spec; the
    message embeds the exact ``python -m repro.validation --replay``
    command that reproduces the divergence.
    """

    def __init__(
        self, case: FuzzCase, engine_a: str, engine_b: str, detail: str
    ) -> None:
        self.case = case
        self.replay_spec = case.to_spec()
        self.engines = (engine_a, engine_b)
        super().__init__(
            f"cross-engine divergence: {engine_a} vs {engine_b}\n"
            f"{detail}\n"
            "reproduce with:\n"
            f"  python -m repro.validation --replay '{self.replay_spec}'"
        )


def run_case(case: FuzzCase, engine: str):
    """Run one fuzz case on one engine, flit log attached.

    Returns the :class:`~repro.traffic.simulation.TrafficResult` of a
    fresh cluster/simulation pair — every engine sees identical RNG
    substreams because the workload components are rebuilt per run from
    the case's seed.
    """
    from repro.traffic.simulation import TrafficSimulation

    cluster = MemPoolCluster(case.config(), engine=engine)
    simulation = TrafficSimulation(
        cluster,
        case.load,
        pattern=case.pattern,
        seed=case.seed,
        injector=case.injector,
        pattern_params=dict(case.pattern_params) or None,
        injector_params=dict(case.injector_params) or None,
    )
    return simulation.run(case.warmup, case.measure, record_flits=True)


def _describe_mismatch(name_a: str, result_a, name_b: str, result_b) -> str | None:
    """First observable difference between two results, or None."""
    log_a, log_b = result_a.flit_log, result_b.flit_log
    if log_a != log_b:
        if len(log_a) != len(log_b):
            return (
                f"  flit-log lengths differ: {name_a} completed "
                f"{len(log_a)} flits, {name_b} completed {len(log_b)}"
            )
        for index, (entry_a, entry_b) in enumerate(zip(log_a, log_b)):
            if entry_a != entry_b:
                return (
                    f"  first differing flit-log entry at index {index} "
                    "(flit_id, core, bank, created, injected, completed):\n"
                    f"    {name_a}: {entry_a}\n"
                    f"    {name_b}: {entry_b}"
                )
    for field_name in COMPARED_FIELDS:
        value_a = getattr(result_a, field_name)
        value_b = getattr(result_b, field_name)
        if value_a != value_b:
            return (
                f"  result field {field_name!r} differs: "
                f"{name_a}={value_a!r}, {name_b}={value_b!r}"
            )
    return None


def check_case(case: FuzzCase, engines=ENGINES_CHECKED) -> dict:
    """Run ``case`` on every engine and assert their results agree.

    Returns the per-engine results on success.  On divergence, appends
    the replay spec to ``$FUZZ_REPRODUCER_FILE`` (when set — CI uploads
    that file as an artifact) and raises :class:`DivergenceError` whose
    message carries the ``--replay`` reproducer command.
    """
    results = {engine: run_case(case, engine) for engine in engines}
    reference = engines[0]
    for other in engines[1:]:
        detail = _describe_mismatch(
            reference, results[reference], other, results[other]
        )
        if detail is not None:
            _record_reproducer(case)
            raise DivergenceError(case, reference, other, detail)
    return results


def _record_reproducer(case: FuzzCase) -> None:
    """Append the case's replay spec to the CI reproducer artifact file."""
    path = os.environ.get(REPRODUCER_FILE_ENV)
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(case.to_spec() + "\n")
    except OSError:  # pragma: no cover - artifact logging must never mask
        pass  # the divergence itself


# --------------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------------- #


def topology_selections(scale: str = "tiny") -> list:
    """Every valid ``(topology, params)`` selection at ``scale``.

    Enumerated (not sampled) so the strategy is valid by construction:
    grid dimensions must tile the cluster, butterfly/hierarchical radices
    must divide the tile count into whole switch layers — the same
    structural constraints the families enforce at build time.
    """
    base = SCALES[scale]()
    num_tiles = base.num_tiles
    cores_per_tile = base.cores_per_tile
    selections: list = [
        ("top1", {}), ("top4", {}), ("toph", {}), ("topx", {}),
        ("ring", {}), ("fully_connected", {}),
    ]
    grids = [
        (width, num_tiles // width)
        for width in range(1, num_tiles + 1)
        if num_tiles % width == 0
    ]
    for width, height in grids:
        selections.append(("mesh", {"width": width, "height": height}))
        selections.append(("torus", {"width": width, "height": height}))
    radices = [r for r in (2, 4) if num_tiles == 1 or is_power_of(num_tiles, r)]
    for radix in radices:
        for ports in range(1, cores_per_tile + 1):
            selections.append(("butterfly", {"radix": radix, "ports": ports}))
    divisors = [g for g in range(1, num_tiles + 1) if num_tiles % g == 0]
    for groups in divisors:
        tiles_per_group = num_tiles // groups
        for radix in (2, 4):
            if tiles_per_group == 1 and radix != 2:
                continue  # parameter-equivalent to radix=2: skip duplicates
            if tiles_per_group > 1 and not is_power_of(tiles_per_group, radix):
                continue
            selections.append(("hierarchical", {"groups": groups, "radix": radix}))
    for name, params in selections:
        validate_topology(name, params)
    return selections


def fuzzable_patterns() -> list[str]:
    """Catalogue patterns the fuzzer can instantiate from scratch.

    Entries with required parameters (the trace replay components, which
    need an existing trace file) cannot be sampled out of thin air; they
    have their own dedicated differential tests (``tests/test_trace``).
    """
    return [
        name for name in available_patterns() if not pattern_entry(name).required
    ]


def fuzzable_injectors() -> list[str]:
    """Catalogue injectors the fuzzer can instantiate from scratch."""
    return [
        name for name in available_injectors()
        if not injector_entry(name).required
    ]


def _pattern_strategy(st):
    """Strategy over ``(pattern, params)`` pairs covering the catalogue."""
    def params_for(name):
        if name == "local_biased":
            return st.fixed_dictionaries({"p_local": st.floats(0.0, 1.0)})
        if name == "hotspot":
            return st.fixed_dictionaries(
                {"p_hot": st.floats(0.0, 1.0), "num_hotspots": st.integers(1, 4)}
            )
        if name == "scale_free":
            return st.fixed_dictionaries({"exponent": st.floats(0.5, 3.5)})
        if name == "degree_skewed":
            return st.fixed_dictionaries(
                {"m": st.integers(1, 4), "beta": st.floats(0.0, 2.0)}
            )
        return st.just({})

    return st.sampled_from(fuzzable_patterns()).flatmap(
        lambda name: st.tuples(st.just(name), params_for(name))
    )


def fuzz_cases(scale: str = "tiny"):
    """Hypothesis strategy over the full differential configuration space.

    Samples (topology x topology_params x pattern x pattern_params x
    injector x injector_params x seed x load x window) with every
    component drawn from — and validated against — the production
    registries, so the fuzzer explores exactly the space users can
    configure.  Shrinking is Hypothesis's usual deterministic shrink
    towards the first/smallest choices.
    """
    import hypothesis.strategies as st

    @st.composite
    def cases(draw):
        topology, topology_params = draw(
            st.sampled_from(topology_selections(scale))
        )
        pattern, pattern_params = draw(_pattern_strategy(st))
        injector = draw(st.sampled_from(fuzzable_injectors()))
        load = draw(st.floats(0.05, 0.85))
        injector_params = {}
        if injector == "bursty":
            injector_params = {
                "burst_len": draw(st.floats(1.0, 8.0)),
                # The bursty ON state must offer at least the mean load.
                "burst_rate": draw(st.floats(min(load, 1.0), 1.0)),
            }
        return FuzzCase(
            topology=topology,
            pattern=pattern,
            injector=injector,
            seed=draw(st.integers(0, 9999)),
            load=load,
            warmup=draw(st.integers(10, 60)),
            measure=draw(st.integers(60, 240)),
            topology_params=tuple(topology_params.items()),
            pattern_params=tuple(pattern_params.items()),
            injector_params=tuple(injector_params.items()),
            scale=scale,
        )

    return cases()


def degree_skewed_cases(scale: str = "tiny"):
    """Strategy concentrating traffic on few hot banks (scale-free regime).

    The mean-first-passage-time analysis on scale-free networks
    (arxiv 0908.0976, PAPERS.md) shows degree-skewed destination
    popularity concentrates load on a handful of high-degree nodes.  The
    hotspot pattern with high ``p_hot`` and 1-2 hot banks is that regime
    on a MemPool cluster: most requests converge on one or two banks, so
    the same arbiters grant (and the same elastic buffers back-pressure)
    every cycle — arbitration paths uniform traffic never holds saturated
    long enough to stress, and historically where engine disagreements
    hide.
    """
    import hypothesis.strategies as st

    @st.composite
    def cases(draw):
        topology, topology_params = draw(
            st.sampled_from(topology_selections(scale))
        )
        return FuzzCase(
            topology=topology,
            pattern="hotspot",
            injector=draw(st.sampled_from(fuzzable_injectors())),
            seed=draw(st.integers(0, 9999)),
            load=draw(st.floats(0.3, 0.85)),
            warmup=draw(st.integers(10, 40)),
            measure=draw(st.integers(60, 200)),
            topology_params=tuple(topology_params.items()),
            pattern_params=(
                ("num_hotspots", draw(st.integers(1, 2))),
                ("p_hot", draw(st.floats(0.6, 0.98))),
            ),
            scale=scale,
        )

    return cases()


def run_fuzz(
    budget: int,
    engines=ENGINES_CHECKED,
    scale: str = "tiny",
    strategy=None,
) -> int:
    """Run a bounded differential-fuzz campaign; returns cases checked.

    Drives :func:`check_case` under Hypothesis with ``max_examples=
    budget``.  On divergence Hypothesis shrinks to a minimal failing case
    deterministically, then the :class:`DivergenceError` (with its
    ``--replay`` reproducer) propagates to the caller.  The pytest
    entry point (``tests/test_fuzz_differential.py``) is the CI harness —
    this function backs ``python -m repro.validation fuzz`` for local
    exploration with an arbitrary budget.
    """
    from hypothesis import HealthCheck, given, settings

    if budget < 1:
        raise ValueError(f"fuzz budget must be positive, got {budget}")
    checked = 0

    @settings(
        max_examples=budget,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    @given(strategy if strategy is not None else fuzz_cases(scale))
    def probe(case: FuzzCase) -> None:
        nonlocal checked
        checked += 1
        check_case(case, engines=engines)

    probe()
    return checked
