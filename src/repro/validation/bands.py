"""Severity-banded classification of metric deviations.

The accept/warn/reject gate of the statistical result validator: a
measured metric's relative deviation from its committed golden value is
classified into one of five severity bands — ``OK`` / ``MINOR`` /
``MODERATE`` / ``SEVERE`` / ``CRITICAL`` — and each band maps to an
action.  The idiom follows the severity-banded date validator of the
retrieval corpus (OK/leve/medio/grave/critico): small deviations are
accepted, mid-size ones accepted with a warning, large ones rejected —
with every threshold configurable rather than hardwired into the gate.

Deviations here are *relative* (``|measured - golden| / |golden|``), so
one policy covers latency in cycles, throughput in requests/core/cycle
and percentiles alike.  Because every engine is deterministic for fixed
seeds, an unmodified tree reproduces its goldens exactly (deviation 0.0,
severity ``OK``); any non-OK band is a real behavioural change, and the
bands grade how bad it is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """Deviation severity, ordered from harmless to catastrophic."""

    OK = 0
    MINOR = 1
    MODERATE = 2
    SEVERE = 3
    CRITICAL = 4

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse a severity from its (case-insensitive) name.

        Examples
        --------
        >>> Severity.from_name("moderate")
        <Severity.MODERATE: 2>
        >>> Severity.from_name("lethal")
        Traceback (most recent call last):
            ...
        ValueError: unknown severity 'lethal'; valid: ok, minor, moderate, severe, critical
        """
        try:
            return cls[name.strip().upper()]
        except KeyError:
            valid = ", ".join(member.name.lower() for member in cls)
            raise ValueError(
                f"unknown severity {name!r}; valid: {valid}"
            ) from None


#: The three actions a band can map to.
ACTIONS = ("accept", "warn", "reject")


@dataclass(frozen=True)
class BandPolicy:
    """Configurable severity bands and their accept/warn/reject mapping.

    Parameters
    ----------
    ok, minor, moderate, severe : float
        Upper edges (inclusive) of the relative-deviation bands: a
        deviation ``d`` classifies as ``OK`` when ``d <= ok``, ``MINOR``
        when ``d <= minor``, and so on; anything above ``severe`` is
        ``CRITICAL``.  Must be strictly increasing and non-negative.
    warn_from : Severity
        First severity that triggers a warning instead of silent accept.
    reject_from : Severity
        First severity that rejects the result (must not precede
        ``warn_from``).

    Examples
    --------
    >>> policy = BandPolicy()
    >>> policy.classify(0.0)
    <Severity.OK: 0>
    >>> policy.classify(0.05)
    <Severity.MODERATE: 2>
    >>> policy.action(policy.classify(0.5))
    'reject'
    """

    ok: float = 0.01
    minor: float = 0.03
    moderate: float = 0.08
    severe: float = 0.20
    warn_from: Severity = Severity.MODERATE
    reject_from: Severity = Severity.SEVERE

    def __post_init__(self) -> None:
        edges = (self.ok, self.minor, self.moderate, self.severe)
        if any(edge < 0 for edge in edges) or not all(
            low < high for low, high in zip(edges, edges[1:])
        ):
            raise ValueError(
                "band edges must be non-negative and strictly increasing "
                f"(ok < minor < moderate < severe); got {edges}"
            )
        if self.reject_from < self.warn_from:
            raise ValueError(
                f"reject_from ({self.reject_from.name}) cannot precede "
                f"warn_from ({self.warn_from.name}): a rejected severity "
                "is at least warning-worthy"
            )

    @property
    def edges(self) -> tuple[float, float, float, float]:
        """The four band edges, in ascending severity order."""
        return (self.ok, self.minor, self.moderate, self.severe)

    def classify(self, deviation: float) -> Severity:
        """Severity band of a relative deviation (``abs`` applied)."""
        deviation = abs(deviation)
        for severity, edge in zip(Severity, self.edges):
            if deviation <= edge:
                return severity
        return Severity.CRITICAL

    def action(self, severity: Severity) -> str:
        """``accept``, ``warn`` or ``reject`` for one severity band."""
        if severity >= self.reject_from:
            return "reject"
        if severity >= self.warn_from:
            return "warn"
        return "accept"

    def to_dict(self) -> dict:
        """JSON-serialisable form (round-trips via :meth:`from_dict`)."""
        return {
            "bands": list(self.edges),
            "warn_from": self.warn_from.name.lower(),
            "reject_from": self.reject_from.name.lower(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BandPolicy":
        """Rebuild a :class:`BandPolicy` from :meth:`to_dict` output."""
        ok, minor, moderate, severe = data["bands"]
        return cls(
            ok=ok,
            minor=minor,
            moderate=moderate,
            severe=severe,
            warn_from=Severity.from_name(data["warn_from"]),
            reject_from=Severity.from_name(data["reject_from"]),
        )

    @classmethod
    def from_spec(
        cls,
        bands: str | None = None,
        warn_from: str | None = None,
        reject_from: str | None = None,
    ) -> "BandPolicy":
        """Build a policy from CLI-style overrides.

        Parameters
        ----------
        bands : str, optional
            Comma-separated band edges, e.g. ``"0.01,0.03,0.08,0.2"``.
        warn_from, reject_from : str, optional
            Severity names (see :meth:`Severity.from_name`).
        """
        kwargs: dict = {}
        if bands is not None:
            parts = [part.strip() for part in bands.split(",")]
            if len(parts) != 4:
                raise ValueError(
                    f"--bands needs exactly 4 comma-separated edges "
                    f"(ok,minor,moderate,severe), got {len(parts)}: {bands!r}"
                )
            try:
                edges = [float(part) for part in parts]
            except ValueError:
                raise ValueError(
                    f"--bands edges must be numbers, got {bands!r}"
                ) from None
            kwargs.update(
                ok=edges[0], minor=edges[1], moderate=edges[2], severe=edges[3]
            )
        if warn_from is not None:
            kwargs["warn_from"] = Severity.from_name(warn_from)
        if reject_from is not None:
            kwargs["reject_from"] = Severity.from_name(reject_from)
        return cls(**kwargs)
