"""Differential fuzzing and severity-banded statistical result validation.

The repo's correctness story has two committed layers: enumerated
cross-engine golden tests (``tests/test_engine_equivalence``,
``tests/test_engine_batch``) and the BENCH baselines.  This package adds
the two layers between them:

- :mod:`repro.validation.fuzz` — a property-based **differential fuzzer**
  that samples the whole configuration space (topology x parameters x
  pattern x injector x seed x window) through the production registries
  and asserts flit-for-flit identity across the ``legacy``, ``vector``
  and ``batch`` engines, shrinking failures deterministically and
  emitting a one-line ``--replay`` reproducer spec.
- :mod:`repro.validation.golden` + :mod:`~repro.validation.bands` +
  :mod:`~repro.validation.bootstrap` — a **statistical result validator**
  that re-measures committed golden cases over seed batches (nearly free
  on the ``batch`` engine), attaches bootstrap confidence intervals, and
  classifies deviations into configurable OK/minor/moderate/severe/
  critical bands mapped to accept/warn/reject.

Entry points: ``python -m repro.validation`` (fuzz campaigns and replay),
``python -m repro.experiments validate`` (golden validation), and the
``make fuzz`` / ``make validate`` targets.
"""

from repro.validation.bands import ACTIONS, BandPolicy, Severity
from repro.validation.bootstrap import BootstrapSummary, bootstrap_mean
from repro.validation.fuzz import (
    COMPARED_FIELDS,
    ENGINES_CHECKED,
    DivergenceError,
    FuzzCase,
    check_case,
    degree_skewed_cases,
    fuzz_cases,
    run_case,
    run_fuzz,
    topology_selections,
)
from repro.validation.golden import (
    DEFAULT_CASES,
    GOLDEN_PATH,
    METRICS,
    REPORT_PATH,
    GoldenCase,
    ValidationReport,
    ValidationRow,
    load_goldens,
    measure_case,
    relative_deviation,
    validate_goldens,
    write_goldens,
)

__all__ = [
    "ACTIONS",
    "BandPolicy",
    "Severity",
    "BootstrapSummary",
    "bootstrap_mean",
    "COMPARED_FIELDS",
    "ENGINES_CHECKED",
    "DivergenceError",
    "FuzzCase",
    "check_case",
    "degree_skewed_cases",
    "fuzz_cases",
    "run_case",
    "run_fuzz",
    "topology_selections",
    "DEFAULT_CASES",
    "GOLDEN_PATH",
    "METRICS",
    "REPORT_PATH",
    "GoldenCase",
    "ValidationReport",
    "ValidationRow",
    "load_goldens",
    "measure_case",
    "relative_deviation",
    "validate_goldens",
    "write_goldens",
]
