"""Parallel benchmark kernels used in the paper's evaluation (Section V-C)."""

from repro.kernels.runtime import Kernel, KernelResult, split_evenly
from repro.kernels.matmul import MatmulKernel
from repro.kernels.conv2d import Conv2dKernel
from repro.kernels.dct import DctKernel
from repro.kernels.vecops import AxpyKernel, DotProductKernel

#: The three benchmarks of Figure 7, keyed by their paper names.
PAPER_KERNELS = {
    "matmul": MatmulKernel,
    "2dconv": Conv2dKernel,
    "dct": DctKernel,
}

#: Additional vector kernels shipped with the library (not in the paper).
EXTRA_KERNELS = {
    "axpy": AxpyKernel,
    "dotprod": DotProductKernel,
}

__all__ = [
    "Kernel",
    "KernelResult",
    "split_evenly",
    "MatmulKernel",
    "Conv2dKernel",
    "DctKernel",
    "AxpyKernel",
    "DotProductKernel",
    "PAPER_KERNELS",
    "EXTRA_KERNELS",
]
