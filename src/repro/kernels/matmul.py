"""Parallel matrix multiplication (the ``matmul`` benchmark of Section V-C).

``C = A x B`` on square ``N x N`` 32-bit integer matrices.  All three matrices
live in the shared, interleaved part of L1, so — exactly as the paper notes —
the accesses are *predominantly remote* and the kernel is dominated by the
quality of the global interconnect.  Output rows are distributed over the
cores; each core's inner loop is unrolled so that the loads of one unrolled
body are all in flight before their values are consumed, which is how the
Snitch core's outstanding-load support hides the SPM access latency.
"""

from __future__ import annotations

import numpy as np

from repro.core.agents import Compute, Store
from repro.core.cluster import MemPoolCluster
from repro.core.config import WORD_BYTES
from repro.core.memory import to_signed
from repro.kernels.runtime import Kernel, load_use_block, split_evenly


class MatmulKernel(Kernel):
    """``C = A x B`` with 2x2 output blocks distributed across all cores.

    The inner loop is register-blocked the way an optimised hand-written
    kernel would be: each core computes a 2x2 block of ``C`` at a time, so
    every four loaded operands feed four multiply-accumulates, and the loads
    of two consecutive ``k`` steps are in flight together (eight outstanding
    loads, the Snitch ROB depth).
    """

    name = "matmul"

    #: Output block edge (2x2 register blocking).
    BLOCK = 2
    #: Number of k-iterations whose loads are issued back to back.
    K_UNROLL = 2

    def __init__(
        self,
        cluster: MemPoolCluster,
        size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(cluster)
        if size <= 0:
            raise ValueError(f"matrix size must be positive, got {size}")
        if size % (self.BLOCK * self.K_UNROLL) != 0:
            raise ValueError(
                f"matrix size must be a multiple of {self.BLOCK * self.K_UNROLL}"
            )
        self.size = size
        rng = np.random.default_rng(seed)
        self.a = rng.integers(-64, 64, size=(size, size), dtype=np.int64)
        self.b = rng.integers(-64, 64, size=(size, size), dtype=np.int64)
        words = size * size * WORD_BYTES
        self._a_region = self.layout.alloc_shared("matmul.a", words)
        self._b_region = self.layout.alloc_shared("matmul.b", words)
        self._c_region = self.layout.alloc_shared("matmul.c", words)
        self.memory.write_matrix(self._a_region.base, self.a)
        self.memory.write_matrix(self._b_region.base, self.b)
        # Distribute the 2x2 output blocks (row-major) over all cores so that
        # every core has work even when the matrix has fewer rows than the
        # cluster has cores.
        blocks = (size // self.BLOCK) ** 2
        self._block_split = split_evenly(blocks, self.config.num_cores)

    # ------------------------------------------------------------------ #
    # Addresses
    # ------------------------------------------------------------------ #

    def _addr_a(self, row: int, col: int) -> int:
        return self._a_region.base + (row * self.size + col) * WORD_BYTES

    def _addr_b(self, row: int, col: int) -> int:
        return self._b_region.base + (row * self.size + col) * WORD_BYTES

    def _addr_c(self, row: int, col: int) -> int:
        return self._c_region.base + (row * self.size + col) * WORD_BYTES

    # ------------------------------------------------------------------ #
    # Per-core program
    # ------------------------------------------------------------------ #

    def core_program(self, core_id: int):
        """Yield the operations core ``core_id`` executes (its rows of C)."""
        start, end = self._block_split[core_id]
        memory = self.memory
        size = self.size
        block = self.BLOCK
        k_unroll = self.K_UNROLL
        blocks_per_row = size // block
        # Function prologue: set up pointers and loop bounds, spill the callee-
        # saved registers used by the three matrix pointers to the stack.
        yield Compute(4)
        for slot in range(3):
            yield Store(self.stack_address(core_id, slot))
        for block_index in range(start, end):
            block_row, block_col = divmod(block_index, blocks_per_row)
            row = block_row * block
            col = block_col * block
            # Reload the spilled output pointer (register pressure in the
            # blocked inner loop), as a hand-written kernel would.
            yield from load_use_block([self.stack_address(core_id, 2)], "spill")
            accumulators = [[0] * block for _ in range(block)]
            for k_base in range(0, size, k_unroll):
                a_addrs = [
                    self._addr_a(row + i, k_base + u)
                    for u in range(k_unroll)
                    for i in range(block)
                ]
                b_addrs = [
                    self._addr_b(k_base + u, col + j)
                    for u in range(k_unroll)
                    for j in range(block)
                ]
                # Functional evaluation of the blocked body.
                for u in range(k_unroll):
                    for i in range(block):
                        a_value = memory.read_signed(self._addr_a(row + i, k_base + u))
                        for j in range(block):
                            b_value = memory.read_signed(
                                self._addr_b(k_base + u, col + j)
                            )
                            accumulators[i][j] += a_value * b_value
                yield from load_use_block(a_addrs + b_addrs, f"k{k_base}")
                macs = k_unroll * block * block
                # mul + add per MAC, plus pointer/branch overhead.
                yield Compute(cycles=2 * macs + 2, muls=macs)
            for i in range(block):
                for j in range(block):
                    address = self._addr_c(row + i, col + j)
                    memory.write_word(address, to_signed(accumulators[i][j]))
                    yield Store(address)
            # Block-loop bookkeeping.
            yield Compute(2)

    # ------------------------------------------------------------------ #
    # Verification
    # ------------------------------------------------------------------ #

    def reference(self) -> np.ndarray:
        """Numpy reference of the matrix product."""
        product = (self.a @ self.b) & 0xFFFF_FFFF
        return ((product + 2**31) % 2**32 - 2**31).astype(np.int64)

    def result(self) -> np.ndarray:
        """The product matrix read back from the cluster memory."""
        return self.memory.read_matrix(self._c_region.base, self.size, self.size)
