"""Parallel 2-D discrete convolution (the ``2dconv`` benchmark of Section V-C).

A 3x3 kernel is convolved with an ``H x W`` integer image.  The image rows
are distributed across the tiles: each tile's slice of the input and output
image lives in its *sequential region*, so with the scrambling logic enabled
almost every access is local — except, as the paper notes, *"for cores
working on windows that require data from two tiles"*, i.e. the rows at a
tile's upper and lower boundary whose 3x3 window reaches into the
neighbouring tile's slice.  With scrambling disabled the same addresses are
interleaved across the whole cluster, which is exactly the comparison of
Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.core.agents import Compute, Store
from repro.core.cluster import MemPoolCluster
from repro.core.config import WORD_BYTES
from repro.kernels.runtime import Kernel, load_use_block, split_evenly


class Conv2dKernel(Kernel):
    """3x3 convolution with tile-local image slices."""

    name = "2dconv"

    #: Fixed 3x3 kernel (a small integer edge-detection-like stencil).
    WEIGHTS = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.int64)

    def __init__(
        self,
        cluster: MemPoolCluster,
        height: int | None = None,
        width: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(cluster)
        config = self.config
        if height is None:
            # Two image rows per core by default.
            height = 2 * config.num_cores
        if height % config.num_tiles != 0:
            raise ValueError(
                f"image height ({height}) must be a multiple of the tile count "
                f"({config.num_tiles})"
            )
        if width <= 2 or height <= 2:
            raise ValueError("image must be larger than the 3x3 kernel")
        self.height = height
        self.width = width
        self.rows_per_tile = height // config.num_tiles
        rng = np.random.default_rng(seed)
        self.image = rng.integers(0, 256, size=(height, width), dtype=np.int64)

        row_bytes = width * WORD_BYTES
        slice_bytes = self.rows_per_tile * row_bytes
        self._input_slices = []
        self._output_slices = []
        for tile in range(config.num_tiles):
            input_region = self.layout.alloc_tile_local(
                "conv.in", tile, slice_bytes
            )
            output_region = self.layout.alloc_tile_local(
                "conv.out", tile, slice_bytes
            )
            self._input_slices.append(input_region)
            self._output_slices.append(output_region)
            first_row = tile * self.rows_per_tile
            self.memory.write_matrix(
                input_region.base, self.image[first_row : first_row + self.rows_per_tile]
            )
        # Each core convolves a contiguous block of rows of its own tile.
        self._rows_per_core = split_evenly(self.rows_per_tile, config.cores_per_tile)

    # ------------------------------------------------------------------ #
    # Addresses
    # ------------------------------------------------------------------ #

    def _input_address(self, row: int, col: int) -> int:
        tile, local_row = divmod(row, self.rows_per_tile)
        return self._input_slices[tile].base + (local_row * self.width + col) * WORD_BYTES

    def _output_address(self, row: int, col: int) -> int:
        tile, local_row = divmod(row, self.rows_per_tile)
        return self._output_slices[tile].base + (local_row * self.width + col) * WORD_BYTES

    # ------------------------------------------------------------------ #
    # Per-core program
    # ------------------------------------------------------------------ #

    def core_program(self, core_id: int):
        """Yield the operations core ``core_id`` executes (rows of the image)."""
        config = self.config
        tile = config.tile_of_core(core_id)
        local_core = config.local_core_index(core_id)
        start_local, end_local = self._rows_per_core[local_core]
        first_row = tile * self.rows_per_tile + start_local
        last_row = tile * self.rows_per_tile + end_local
        memory = self.memory
        weights = self.WEIGHTS
        # Prologue: load the nine kernel weights into registers.
        yield Compute(12)
        for row in range(first_row, last_row):
            for col in range(self.width):
                if row == 0 or row == self.height - 1 or col == 0 or col == self.width - 1:
                    # Border pixels are passed through unchanged (cheap path).
                    value = memory.read_signed(self._input_address(row, col))
                    yield from load_use_block([self._input_address(row, col)], "border")
                    memory.write_word(self._output_address(row, col), value)
                    yield Store(self._output_address(row, col))
                    yield Compute(2)
                    continue
                window_addresses = [
                    self._input_address(row + dy, col + dx)
                    for dy in (-1, 0, 1)
                    for dx in (-1, 0, 1)
                ]
                accumulator = 0
                for (dy, dx), address in zip(
                    ((dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)),
                    window_addresses,
                ):
                    accumulator += int(weights[dy + 1, dx + 1]) * memory.read_signed(
                        address
                    )
                yield from load_use_block(window_addresses, "win")
                # Nine multiply-accumulates plus pixel-loop overhead.
                yield Compute(cycles=2 * 9 + 3, muls=9)
                memory.write_word(self._output_address(row, col), accumulator)
                yield Store(self._output_address(row, col))
            # Row-loop bookkeeping.
            yield Compute(2)

    # ------------------------------------------------------------------ #
    # Verification
    # ------------------------------------------------------------------ #

    def reference(self) -> np.ndarray:
        """Numpy reference of the convolved image."""
        output = self.image.copy()
        for row in range(1, self.height - 1):
            for col in range(1, self.width - 1):
                window = self.image[row - 1 : row + 2, col - 1 : col + 2]
                output[row, col] = int(np.sum(window * self.WEIGHTS))
        return output

    def result(self) -> np.ndarray:
        """The convolved image read back from the cluster memory."""
        rows = []
        for tile in range(self.config.num_tiles):
            rows.append(
                self.memory.read_matrix(
                    self._output_slices[tile].base, self.rows_per_tile, self.width
                )
            )
        return np.vstack(rows)
