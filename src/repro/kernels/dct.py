"""Parallel 8x8 discrete cosine transform (the ``dct`` benchmark of Section V-C).

Each core transforms 8x8 blocks that reside in its own tile's sequential
region and keeps the intermediate (row-transformed) block on its stack, so
with the scrambling logic enabled *every* access is local — the behaviour the
paper highlights: all topologies perform equally well on ``dct`` when the
hybrid addressing scheme maps the stack to local banks, and suffer when it
does not.

The transform is an integer DCT-II with a fixed-point (Q6) cosine table; the
per-pass arithmetic of the timing trace models a fast 8-point butterfly
factorisation (about 16 multiplies per 1-D transform), while the functional
result — used only for verification — is computed with the plain
matrix-vector formulation.  Reference and simulated results use identical
integer arithmetic, so verification is exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.agents import Compute, Store
from repro.core.cluster import MemPoolCluster
from repro.core.config import WORD_BYTES
from repro.kernels.runtime import Kernel, load_use_block

#: Transform size (8x8 blocks, as in the paper).
BLOCK = 8
#: Fixed-point scale of the cosine table (Q6).
COS_SCALE = 6


def _cosine_table() -> np.ndarray:
    """Q6 fixed-point DCT-II coefficient table ``C[u, x]``."""
    table = np.zeros((BLOCK, BLOCK), dtype=np.int64)
    for u in range(BLOCK):
        for x in range(BLOCK):
            angle = (2 * x + 1) * u * np.pi / (2 * BLOCK)
            table[u, x] = int(round(np.cos(angle) * (1 << COS_SCALE)))
    return table


COS_TABLE = _cosine_table()


def dct_1d(values: np.ndarray) -> np.ndarray:
    """Integer 8-point DCT-II of ``values`` (Q6 table, rescaled back)."""
    products = COS_TABLE @ np.asarray(values, dtype=np.int64)
    # Arithmetic shift right by the table scale (floor division matches srai).
    return products >> COS_SCALE


def dct_2d(block: np.ndarray) -> np.ndarray:
    """Integer 8x8 DCT-II: rows first, then columns (as the kernel computes it)."""
    block = np.asarray(block, dtype=np.int64)
    rows = np.stack([dct_1d(block[r, :]) for r in range(BLOCK)])
    cols = np.stack([dct_1d(rows[:, c]) for c in range(BLOCK)], axis=1)
    return cols


class DctKernel(Kernel):
    """8x8 block DCT on tile-local data with stack-resident intermediates."""

    name = "dct"

    def __init__(
        self,
        cluster: MemPoolCluster,
        blocks_per_core: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(cluster)
        if blocks_per_core <= 0:
            raise ValueError("blocks_per_core must be positive")
        self.blocks_per_core = blocks_per_core
        config = self.config
        rng = np.random.default_rng(seed)
        self.blocks = rng.integers(
            0, 256, size=(config.num_cores * blocks_per_core, BLOCK, BLOCK), dtype=np.int64
        )
        block_bytes = BLOCK * BLOCK * WORD_BYTES
        per_tile_bytes = config.cores_per_tile * blocks_per_core * block_bytes
        self._input_regions = []
        self._output_regions = []
        for tile in range(config.num_tiles):
            self._input_regions.append(
                self.layout.alloc_tile_local("dct.in", tile, per_tile_bytes)
            )
            self._output_regions.append(
                self.layout.alloc_tile_local("dct.out", tile, per_tile_bytes)
            )
        for block_index in range(len(self.blocks)):
            self.memory.write_matrix(self._input_address(block_index, 0, 0), self.blocks[block_index])

    # ------------------------------------------------------------------ #
    # Addresses
    # ------------------------------------------------------------------ #

    def _block_core(self, block_index: int) -> int:
        return block_index // self.blocks_per_core

    def _block_slot(self, block_index: int) -> int:
        """Index of the block within its tile's local region."""
        core = self._block_core(block_index)
        local_core = self.config.local_core_index(core)
        return local_core * self.blocks_per_core + block_index % self.blocks_per_core

    def _input_address(self, block_index: int, row: int, col: int) -> int:
        core = self._block_core(block_index)
        tile = self.config.tile_of_core(core)
        base = self._input_regions[tile].base
        offset = (self._block_slot(block_index) * BLOCK * BLOCK + row * BLOCK + col) * WORD_BYTES
        return base + offset

    def _output_address(self, block_index: int, row: int, col: int) -> int:
        core = self._block_core(block_index)
        tile = self.config.tile_of_core(core)
        base = self._output_regions[tile].base
        offset = (self._block_slot(block_index) * BLOCK * BLOCK + row * BLOCK + col) * WORD_BYTES
        return base + offset

    # ------------------------------------------------------------------ #
    # Per-core program
    # ------------------------------------------------------------------ #

    def _core_blocks(self, core_id: int) -> range:
        start = core_id * self.blocks_per_core
        return range(start, start + self.blocks_per_core)

    def core_program(self, core_id: int):
        """Yield the operations core ``core_id`` executes (its 8x8 blocks)."""
        memory = self.memory
        yield Compute(6)  # prologue: pointers, loop bounds
        for block_index in self._core_blocks(core_id):
            intermediate = np.zeros((BLOCK, BLOCK), dtype=np.int64)
            # Row pass: read each row of the input block (tile-local), write
            # the transformed row to the stack.
            for row in range(BLOCK):
                addresses = [
                    self._input_address(block_index, row, col) for col in range(BLOCK)
                ]
                values = np.array(
                    [memory.read_signed(address) for address in addresses],
                    dtype=np.int64,
                )
                intermediate[row, :] = dct_1d(values)
                yield from load_use_block(addresses, f"row{row}")
                # Fast 8-point DCT: ~16 multiplies and ~16 additions.
                yield Compute(cycles=32, muls=16)
                for col in range(BLOCK):
                    stack_slot = row * BLOCK + col
                    memory.write_word(
                        self.stack_address(core_id, stack_slot),
                        int(intermediate[row, col]),
                    )
                    yield Store(self.stack_address(core_id, stack_slot))
            # Column pass: read the intermediates back from the stack, write
            # the final coefficients to the tile-local output block.
            for col in range(BLOCK):
                stack_addresses = [
                    self.stack_address(core_id, row * BLOCK + col) for row in range(BLOCK)
                ]
                column = np.array(
                    [memory.read_signed(address) for address in stack_addresses],
                    dtype=np.int64,
                )
                transformed = dct_1d(column)
                yield from load_use_block(stack_addresses, f"col{col}")
                yield Compute(cycles=32, muls=16)
                for row in range(BLOCK):
                    memory.write_word(
                        self._output_address(block_index, row, col), int(transformed[row])
                    )
                    yield Store(self._output_address(block_index, row, col))
            # Block-loop bookkeeping.
            yield Compute(2)

    # ------------------------------------------------------------------ #
    # Verification
    # ------------------------------------------------------------------ #

    def reference(self) -> np.ndarray:
        """Numpy reference of the transformed blocks."""
        return np.stack([dct_2d(block) for block in self.blocks])

    def result(self) -> np.ndarray:
        """The transformed blocks read back from the cluster memory."""
        outputs = []
        for block_index in range(len(self.blocks)):
            outputs.append(
                self.memory.read_matrix(
                    self._output_address(block_index, 0, 0), BLOCK, BLOCK
                )
            )
        return np.stack(outputs)
