"""Shared infrastructure for the parallel benchmark kernels.

A :class:`Kernel` stages its input data into the cluster's functional memory,
builds one trace agent per core (the agent reads the functional memory,
computes the results in Python, writes them back, and yields the
corresponding ``Load`` / ``Use`` / ``Compute`` / ``Store`` operations for the
timing model), runs the execution-driven simulator, and finally verifies the
memory contents against a numpy reference.

The kernels issue their memory traffic exactly where a hand-written RV32IM
implementation would: inputs and outputs live in the shared interleaved
region or in per-tile sequential regions, intermediate results live on each
core's stack, and the number of compute cycles per loop iteration matches the
instruction count of a reasonable assembly inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agents import Compute, Load, TraceAgent, Use
from repro.core.cluster import MemPoolCluster
from repro.core.system import MemPoolSystem, SystemResult


def split_evenly(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous, nearly equal slices."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base = total // parts
    remainder = total % parts
    slices = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        slices.append((start, start + size))
        start += size
    return slices


def load_use_block(addresses, tag_prefix: str):
    """Yield the loads for a block of addresses followed by their uses.

    This is the idiom the kernels use to expose memory-level parallelism: all
    loads of one unrolled loop body are issued back to back (so the Snitch
    core's outstanding-load support can hide their latency) before any of the
    values are consumed.
    """
    tags = []
    for index, address in enumerate(addresses):
        tag = (tag_prefix, index)
        tags.append(tag)
        yield Load(address, tag=tag)
    for tag in tags:
        yield Use(tag)


@dataclass
class KernelResult:
    """Outcome of one kernel run on one cluster configuration."""

    kernel: str
    topology: str
    scrambling: bool
    cycles: int
    system: SystemResult
    correct: bool

    @property
    def instructions(self) -> int:
        """Total instructions executed across all cores."""
        return self.system.instructions

    @property
    def local_fraction(self) -> float:
        """Fraction of memory accesses that hit the issuing core's own tile."""
        total = self.system.total
        accesses = total.loads + total.stores
        if accesses == 0:
            return 0.0
        return (total.local_loads + total.local_stores) / accesses


class Kernel:
    """Base class for the paper's parallel benchmarks."""

    name = "kernel"

    def __init__(self, cluster: MemPoolCluster) -> None:
        self.cluster = cluster
        self.config = cluster.config
        self.memory = cluster.memory
        self.layout = cluster.layout

    # -- hooks implemented by concrete kernels ---------------------------- #

    def core_program(self, core_id: int):
        """Yield the operations executed by ``core_id`` (a generator)."""
        raise NotImplementedError

    def reference(self) -> np.ndarray:
        """The numpy reference of the kernel's output."""
        raise NotImplementedError

    def result(self) -> np.ndarray:
        """The kernel's output read back from the cluster memory."""
        raise NotImplementedError

    # -- common driver ----------------------------------------------------- #

    def agents(self) -> dict[int, TraceAgent]:
        """One trace agent per core of the cluster."""
        return {
            core_id: TraceAgent(self.core_program(core_id))
            for core_id in range(self.config.num_cores)
        }

    def run(self, max_cycles: int = 2_000_000, verify: bool = True) -> KernelResult:
        """Simulate the kernel and verify its output."""
        system = MemPoolSystem(self.cluster, self.agents())
        outcome = system.run(max_cycles=max_cycles)
        correct = True
        if verify:
            correct = bool(np.array_equal(self.result(), self.reference()))
        return KernelResult(
            kernel=self.name,
            topology=self.config.topology,
            scrambling=self.config.scrambling_enabled,
            cycles=outcome.cycles,
            system=outcome,
            correct=correct,
        )

    # -- small shared helpers ---------------------------------------------- #

    def stack_address(self, core_id: int, slot: int) -> int:
        """Word address of stack slot ``slot`` of ``core_id`` (slot 0 at the top)."""
        stack = self.layout.stack(core_id)
        address = stack.top - 4 * (slot + 1)
        if address < stack.base:
            raise ValueError(
                f"stack slot {slot} overflows the {stack.size}-byte stack of "
                f"core {core_id}"
            )
        return address


def mac_compute(unroll: int, overhead: int = 2) -> Compute:
    """Compute operation modelling ``unroll`` multiply-accumulates plus loop overhead."""
    return Compute(cycles=2 * unroll + overhead, muls=unroll)
