"""Additional data-parallel vector kernels (beyond the paper's three benchmarks).

These kernels exercise the same programming model as Section V-C — shared
interleaved operands, per-core work slices, stack-resident scalars — and are
useful both as library examples and as extra workloads for the interconnect:

* :class:`AxpyKernel` — ``y = a * x + y`` (streaming, two loads and one store
  per element, no reuse: bandwidth-bound);
* :class:`DotProductKernel` — parallel dot product with per-core partial sums
  and a final single-core reduction after a barrier (latency- and
  synchronisation-sensitive).
"""

from __future__ import annotations

import numpy as np

from repro.core.agents import Barrier, Compute, Store
from repro.core.cluster import MemPoolCluster
from repro.core.config import WORD_BYTES
from repro.core.memory import to_signed
from repro.kernels.runtime import Kernel, load_use_block, split_evenly


class AxpyKernel(Kernel):
    """``y[i] = a * x[i] + y[i]`` with elements distributed across all cores."""

    name = "axpy"

    #: Number of elements whose loads are issued back to back.
    UNROLL = 4

    def __init__(
        self,
        cluster: MemPoolCluster,
        length: int = 1024,
        scalar: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(cluster)
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        self.length = length
        self.scalar = scalar
        rng = np.random.default_rng(seed)
        self.x = rng.integers(-1000, 1000, length, dtype=np.int64)
        self.y = rng.integers(-1000, 1000, length, dtype=np.int64)
        self._x_region = self.layout.alloc_shared("axpy.x", length * WORD_BYTES)
        self._y_region = self.layout.alloc_shared("axpy.y", length * WORD_BYTES)
        self.memory.write_words(self._x_region.base, self.x)
        self.memory.write_words(self._y_region.base, self.y)
        self._split = split_evenly(length, self.config.num_cores)

    def _addr_x(self, index: int) -> int:
        return self._x_region.base + index * WORD_BYTES

    def _addr_y(self, index: int) -> int:
        return self._y_region.base + index * WORD_BYTES

    def core_program(self, core_id: int):
        """Yield the operations core ``core_id`` executes (its slice of y)."""
        start, end = self._split[core_id]
        memory = self.memory
        yield Compute(3)  # prologue: pointers, scalar
        for base in range(start, end, self.UNROLL):
            chunk = range(base, min(base + self.UNROLL, end))
            addresses = [self._addr_x(i) for i in chunk] + [self._addr_y(i) for i in chunk]
            results = [
                self.scalar * memory.read_signed(self._addr_x(i))
                + memory.read_signed(self._addr_y(i))
                for i in chunk
            ]
            yield from load_use_block(addresses, f"chunk{base}")
            # One mul and one add per element plus loop overhead.
            yield Compute(cycles=2 * len(chunk) + 2, muls=len(chunk))
            for index, value in zip(chunk, results):
                memory.write_word(self._addr_y(index), to_signed(value))
                yield Store(self._addr_y(index))

    def reference(self) -> np.ndarray:
        """Numpy reference of ``a*x + y``."""
        return self.scalar * self.x + self.y

    def result(self) -> np.ndarray:
        """The output vector read back from the cluster memory."""
        return self.memory.read_words(self._y_region.base, self.length)


class DotProductKernel(Kernel):
    """Parallel dot product: per-core partial sums, barrier, single-core reduce."""

    name = "dotprod"

    UNROLL = 4

    def __init__(self, cluster: MemPoolCluster, length: int = 1024, seed: int = 0) -> None:
        super().__init__(cluster)
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        self.length = length
        rng = np.random.default_rng(seed)
        self.a = rng.integers(-100, 100, length, dtype=np.int64)
        self.b = rng.integers(-100, 100, length, dtype=np.int64)
        self._a_region = self.layout.alloc_shared("dot.a", length * WORD_BYTES)
        self._b_region = self.layout.alloc_shared("dot.b", length * WORD_BYTES)
        # One partial-sum word per core, then the final result word.
        self._partials = self.layout.alloc_shared(
            "dot.partials", self.config.num_cores * WORD_BYTES
        )
        self._result_region = self.layout.alloc_shared("dot.result", WORD_BYTES)
        self.memory.write_words(self._a_region.base, self.a)
        self.memory.write_words(self._b_region.base, self.b)
        self._split = split_evenly(length, self.config.num_cores)

    def _addr(self, region, index: int) -> int:
        return region.base + index * WORD_BYTES

    def core_program(self, core_id: int):
        """Yield the operations core ``core_id`` executes (partial dot products)."""
        start, end = self._split[core_id]
        memory = self.memory
        yield Compute(3)
        partial = 0
        for base in range(start, end, self.UNROLL):
            chunk = range(base, min(base + self.UNROLL, end))
            addresses = [self._addr(self._a_region, i) for i in chunk]
            addresses += [self._addr(self._b_region, i) for i in chunk]
            for index in chunk:
                partial += memory.read_signed(
                    self._addr(self._a_region, index)
                ) * memory.read_signed(self._addr(self._b_region, index))
            yield from load_use_block(addresses, f"chunk{base}")
            yield Compute(cycles=2 * len(chunk) + 2, muls=len(chunk))
        partial_address = self._addr(self._partials, core_id)
        memory.write_word(partial_address, to_signed(partial))
        yield Store(partial_address)
        yield Barrier()
        if core_id == 0:
            total = 0
            for core in range(self.config.num_cores):
                address = self._addr(self._partials, core)
                total += memory.read_signed(address)
            addresses = [
                self._addr(self._partials, core) for core in range(self.config.num_cores)
            ]
            # The reduction loads every partial sum (bounded by the ROB depth,
            # the load/use helper interleaves naturally).
            for base in range(0, len(addresses), self.UNROLL):
                chunk = addresses[base : base + self.UNROLL]
                yield from load_use_block(chunk, f"reduce{base}")
                yield Compute(cycles=len(chunk) + 1)
            memory.write_word(self._result_region.base, to_signed(total))
            yield Store(self._result_region.base)

    def reference(self) -> np.ndarray:
        """Numpy reference of the dot product."""
        return np.array([int(np.dot(self.a, self.b))], dtype=np.int64)

    def result(self) -> np.ndarray:
        """The reduced dot product read back from the cluster memory."""
        return self.memory.read_words(self._result_region.base, 1)
