#!/usr/bin/env python3
"""Run the paper's signal-processing benchmarks and compare topologies.

Reproduces (a fast version of) Figure 7: matmul, 2dconv and dct on the
selected topologies, with and without the hybrid addressing scheme, all
normalised to the ideal-crossbar baseline.  Every run is functionally
verified against numpy.

Run with::

    python examples/kernel_benchmarks.py
    python examples/kernel_benchmarks.py --topologies toph topx --kernels matmul
"""

from __future__ import annotations

import argparse

from repro.evaluation import ExperimentSettings
from repro.evaluation.fig7 import FIG7_KERNELS, FIG7_TOPOLOGIES, run_fig7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+", default=list(FIG7_KERNELS),
                        choices=list(FIG7_KERNELS))
    parser.add_argument("--topologies", nargs="+", default=list(FIG7_TOPOLOGIES),
                        choices=list(FIG7_TOPOLOGIES))
    arguments = parser.parse_args()

    topologies = list(dict.fromkeys([*arguments.topologies, "topx"]))
    settings = ExperimentSettings()
    print(f"Simulating the {settings.scale_label} cluster")
    print(f"kernels: {', '.join(arguments.kernels)}; topologies: {', '.join(topologies)}\n")

    result = run_fig7(settings, kernels=tuple(arguments.kernels), topologies=tuple(topologies))
    print(result.report())
    print()
    print(f"all results functionally correct: {result.all_correct()}")
    print()

    for kernel in arguments.kernels:
        for topology in topologies:
            if topology == "topx":
                continue
            gain = result.scrambling_gain(kernel, topology)
            speedup = result.speedup_over_top1(kernel, topology, True) if "top1" in topologies else float("nan")
            print(
                f"{kernel:8s} on {topology}: scrambling gain {gain:5.2f}x, "
                f"speedup over Top1 {speedup:5.2f}x"
            )


if __name__ == "__main__":
    main()
