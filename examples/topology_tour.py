#!/usr/bin/env python3
"""Topology catalogue walkthrough: sweep interconnect families.

Demonstrates the pluggable topology subsystem (`repro.topologies`):

1. enumerate the registered topology families and their knobs;
2. compare zero-load latency profiles of a few families directly from
   their closed forms (mesh distance scaling vs the flat butterflies);
3. sweep the whole catalogue through the `repro.experiments` engine on
   the vector timing core and print the comparison table;
4. drive one parameterized family (an 8x2 torus) through the workload
   catalogue, exactly as `--topology torus:width=8,height=2` would.

Run with::

    python examples/topology_tour.py                # 64-core cluster
    MEMPOOL_FULL=1 python examples/topology_tour.py # full 256-core cluster
"""

from __future__ import annotations

from repro.core.config import MemPoolConfig
from repro.evaluation import ExperimentSettings
from repro.evaluation.topologies import run_topologies
from repro.evaluation.workloads import run_workloads
from repro.experiments import Executor
from repro.interconnect.topology import build_topology
from repro.topologies import topology_catalogue


def main() -> None:
    print("== Registered topologies ==")
    for entry in topology_catalogue():
        knobs = ", ".join(sorted(entry.params)) or "-"
        print(f"  {entry.name:<16} {entry.summary}  [knobs: {knobs}]")
    print()

    print("== Zero-load round trips from tile 0 (scaled cluster) ==")
    settings = ExperimentSettings(warmup_cycles=150, measure_cycles=400,
                                  engine="vector")
    for name in ("toph", "mesh", "torus", "ring", "fully_connected"):
        config = settings.config(name)
        topology = build_topology(config)
        banks = config.banks_per_tile
        profile = [
            topology.zero_load_latency(0, tile * banks)
            for tile in range(config.num_tiles)
        ]
        print(f"  {name:<16} per-tile latencies {profile}")
    print()

    print("== Topology catalogue (vector engine, uniform x poisson) ==")
    result = run_topologies(settings, executor=Executor())
    print(result.report())
    print()

    print("== Workload catalogue on an 8x2 torus ==")
    torus_settings = ExperimentSettings(
        warmup_cycles=150, measure_cycles=400, engine="vector",
        topology="torus:width=8,height=2",
    )
    catalogue = run_workloads(
        torus_settings,
        patterns=("uniform", "neighbor", "bit_complement"),
        injectors=("poisson",),
        load=0.15,
    )
    print(catalogue.report())
    print()

    config = MemPoolConfig.scaled("mesh", topology_params={"width": 8, "height": 2})
    print(f"Config round trip intact: "
          f"{MemPoolConfig.from_dict(config.to_dict()) == config}")


if __name__ == "__main__":
    main()
