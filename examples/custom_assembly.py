#!/usr/bin/env python3
"""Write your own RV32IM program and run it on the shared-L1 cluster.

This example builds a small parallel histogram: every core walks a slice of
an input array and uses the A-extension atomics (``amoadd.w``) to update a
shared bin array — a pattern that exercises both the shared-L1 programming
model and the atomics support of the Snitch cores.

Run with::

    python examples/custom_assembly.py
"""

from __future__ import annotations

import numpy as np

from repro import MemPoolCluster, MemPoolConfig
from repro.core.system import MemPoolSystem
from repro.snitch import assemble
from repro.snitch.agent import make_snitch_agents

HISTOGRAM_SOURCE = """
    # a0 = core id, a1 = number of cores
    la   t0, values
    la   t1, bins
    li   t2, num_values
    li   t3, num_bins
    mv   t4, a0                # i = core id
loop:
    bge  t4, t2, done
    slli t5, t4, 2
    add  t5, t5, t0
    lw   t6, 0(t5)             # value
    remu t6, t6, t3            # bin index
    slli t6, t6, 2
    add  t6, t6, t1
    li   s0, 1
    amoadd.w zero, s0, (t6)    # bins[value % num_bins] += 1
    add  t4, t4, a1
    j    loop
done:
    ecall
"""


def main() -> None:
    config = MemPoolConfig.tiny("toph")
    cluster = MemPoolCluster(config)

    num_values, num_bins = 256, 16
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1000, num_values)

    values_region = cluster.layout.alloc_shared("values", num_values * 4)
    bins_region = cluster.layout.alloc_shared("bins", num_bins * 4)
    cluster.memory.write_words(values_region.base, values)

    program = assemble(
        HISTOGRAM_SOURCE,
        symbols={
            "values": values_region.base,
            "bins": bins_region.base,
            "num_values": num_values,
            "num_bins": num_bins,
        },
    )
    agents = make_snitch_agents(
        cluster, program, argument_builder=lambda core: {10: core, 11: config.num_cores}
    )
    result = MemPoolSystem(cluster, agents).run()

    histogram = cluster.memory.read_words(bins_region.base, num_bins)
    expected = np.bincount(values % num_bins, minlength=num_bins)
    assert np.array_equal(histogram, expected), "histogram mismatch!"

    print(f"parallel histogram of {num_values} values into {num_bins} bins")
    print(f"  cores:        {config.num_cores}")
    print(f"  cycles:       {result.cycles}")
    print(f"  instructions: {result.instructions}")
    print(f"  bins:         {histogram.tolist()}")
    print("  matches numpy:", bool(np.array_equal(histogram, expected)))


if __name__ == "__main__":
    main()
