#!/usr/bin/env python3
"""Workload catalogue walkthrough: sweep traffic patterns through the engine.

Demonstrates the pluggable workload subsystem (`repro.workloads`):

1. enumerate the registered destination patterns and injection processes;
2. sweep the full pattern catalogue through the `repro.experiments`
   engine on the vector timing core and print the comparison table;
3. drive one pattern directly — open-loop through `TrafficSimulation`
   and closed-loop through `MemPoolSystem.synthetic` — with the same
   registry names.

Run with::

    python examples/traffic_patterns.py                # 64-core cluster
    MEMPOOL_FULL=1 python examples/traffic_patterns.py # full 256-core cluster
"""

from __future__ import annotations

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.core.system import MemPoolSystem
from repro.evaluation import ExperimentSettings
from repro.evaluation.workloads import run_workloads
from repro.experiments import Executor
from repro.workloads import injector_catalogue, pattern_catalogue


def main() -> None:
    print("== Registered workloads ==")
    for entry in pattern_catalogue():
        print(f"  pattern  {entry.name:<16} {entry.summary}")
    for entry in injector_catalogue():
        print(f"  injector {entry.name:<16} {entry.summary}")
    print()

    print("== Pattern catalogue on TopH (vector engine, Poisson injection) ==")
    settings = ExperimentSettings(
        warmup_cycles=200, measure_cycles=600, engine="vector"
    )
    catalogue = run_workloads(
        settings, injectors=("poisson",), load=0.25, executor=Executor()
    )
    print(catalogue.report())
    print()

    print("== One workload, both simulators ==")
    config = (
        MemPoolConfig.full("toph") if settings.full_scale
        else MemPoolConfig.scaled("toph")
    )
    cluster = MemPoolCluster(config, engine="vector")
    open_loop = cluster.traffic_simulation(
        0.2, pattern="hotspot", injector="bursty", seed=0,
        pattern_params={"p_hot": 0.3, "num_hotspots": 4},
    ).run(warmup_cycles=200, measure_cycles=600)
    print(
        f"  open-loop   hotspot/bursty: throughput "
        f"{open_loop.throughput:.3f} request/core/cycle, "
        f"avg latency {open_loop.average_latency:.1f} cycles"
    )

    closed = MemPoolSystem.synthetic(
        MemPoolCluster(config, engine="vector"),
        0.2, pattern="hotspot", injector="bursty", requests_per_core=16,
        seed=0, pattern_params={"p_hot": 0.3, "num_hotspots": 4},
    ).run()
    print(
        f"  closed-loop hotspot/bursty: {closed.completed_requests} requests "
        f"in {closed.cycles} cycles "
        f"({closed.completed_requests / closed.cycles:.1f} request/cycle)"
    )


if __name__ == "__main__":
    main()
