#!/usr/bin/env python3
"""Energy, power and physical-implementation reports (Section VI).

Prints, for the full 64-tile MemPool cluster:

* the energy-per-instruction breakdown of Figure 10;
* the tile/cluster power breakdown of Section VI-D (running matmul);
* the tile and cluster area/timing figures of Sections VI-B/VI-C, including
  the congestion comparison that rules out Top4.

Run with::

    python examples/energy_and_physical.py
"""

from __future__ import annotations

from repro.evaluation import ExperimentSettings
from repro.evaluation.fig10 import run_fig10
from repro.evaluation.physical_tables import run_physical_tables
from repro.evaluation.power_table import run_power_table


def main() -> None:
    settings = ExperimentSettings()

    print(run_fig10(settings).report())
    print()

    print(run_power_table(settings).report())
    print()

    print(run_physical_tables(settings).report())


if __name__ == "__main__":
    main()
