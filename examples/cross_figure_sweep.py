#!/usr/bin/env python3
"""Cross-figure sweeps on the experiment engine: parallelism and caching.

The :mod:`repro.experiments` engine treats every figure of the paper as a
parameter sweep over one *point function*.  That makes cross-figure
orchestration trivial: build the sweeps, concatenate their specs, and run
them all through one executor — every point of every figure shares the
same process pool and the same on-disk result cache.

This example:

1. builds trimmed-down Figure 5 and Figure 7 sweeps;
2. runs all their points together on a multi-process executor backed by a
   temporary cache;
3. assembles and prints both figure reports;
4. re-runs the same sweeps to show the warm cache answering instantly.

Run with::

    python examples/cross_figure_sweep.py
"""

from __future__ import annotations

import tempfile

from repro.evaluation import ExperimentSettings
from repro.evaluation.fig5 import assemble_fig5, fig5_sweep
from repro.evaluation.fig7 import assemble_fig7, fig7_sweep
from repro.experiments import Executor, ResultCache


def main() -> None:
    # Small sweeps so the example finishes in seconds: three loads on two
    # topologies (fig5) and one kernel on three topologies (fig7).
    settings = ExperimentSettings(warmup_cycles=100, measure_cycles=300)
    sweeps = [
        (fig5_sweep(settings, loads=(0.05, 0.15, 0.3), topologies=("top1", "toph")),
         assemble_fig5),
        (fig7_sweep(settings, kernels=("dct",), topologies=("top1", "toph", "topx")),
         assemble_fig7),
    ]

    # One executor drives every point of every figure: four worker
    # processes, results cached under a content hash of parameters + code.
    cache = ResultCache(tempfile.mkdtemp(prefix="repro-cache-"))
    executor = Executor(workers=4, cache=cache)

    specs = [spec for sweep, _ in sweeps for spec in sweep.specs()]
    print(f"running {len(specs)} points from {len(sweeps)} figures "
          f"on {executor.workers} workers...\n")
    results = executor.run(specs)
    print(f"cold run: {executor.last_report.summary()}\n")

    # Slice the flat result list back per sweep and assemble the figures.
    cursor = 0
    for sweep, assemble in sweeps:
        size = sweep.size
        figure = assemble(specs[cursor:cursor + size], results[cursor:cursor + size])
        cursor += size
        print(figure.report())
        print()

    # A warm re-run never touches the simulator: every point is served
    # from the cache (same parameters, same code, same key).
    executor.run(specs)
    print(f"warm run: {executor.last_report.summary()}")
    print(cache.stats.as_line())


if __name__ == "__main__":
    main()
