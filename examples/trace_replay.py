#!/usr/bin/env python3
"""Trace record & replay walkthrough: one workload, many topologies.

Demonstrates the flit-trace subsystem (`repro.workloads.trace`):

1. run a fig5-style uniform/Poisson measurement on the paper's TopH
   cluster with flit logging enabled and record it as a trace file;
2. inspect the trace header (schema version, cluster shape, content
   sha256);
3. replay the *same requests* on a 2D mesh and a 2D torus — replay
   draws no random numbers, so the rows differ only by network
   structure — and print latency, throughput and the Figure 10 wire
   energy side by side;
4. show that replaying on a different engine reproduces the recording's
   flit log exactly.

Run with::

    python examples/trace_replay.py                # 64-core cluster
    MEMPOOL_FULL=1 python examples/trace_replay.py # full 256-core cluster
"""

from __future__ import annotations

import os
import tempfile

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.energy.traffic import attach_energy
from repro.workloads import read_trace_header, record_trace

LOAD = 0.25
WARMUP, MEASURE = 50, 200


def build_config(topology: str, **params) -> MemPoolConfig:
    """The example's cluster configuration at the ambient scale."""
    if os.environ.get("MEMPOOL_FULL"):
        return MemPoolConfig.full(topology, topology_params=params)
    return MemPoolConfig.scaled(topology, topology_params=params)


def main() -> None:
    print("== 1. Record: uniform x poisson on TopH (vector engine) ==")
    config = build_config("toph")
    cluster = MemPoolCluster(config, engine="vector")
    recording = cluster.traffic_simulation(
        LOAD, pattern="uniform", injector="poisson", seed=0
    ).run(warmup_cycles=WARMUP, measure_cycles=MEASURE, record_flits=True)

    with tempfile.TemporaryDirectory() as root:
        path = os.path.join(root, "toph.trace.gz")
        sha = record_trace(
            recording, config, path, meta={"source": "examples/trace_replay"}
        )
        header = read_trace_header(path)
        print(
            f"  recorded {header['records']} requests over "
            f"{header['cycles']} cycles to {os.path.basename(path)}"
        )
        print(f"  sha256 {sha[:16]}…  "
              f"({header['num_cores']} cores, {header['num_banks']} banks)")
        print()

        print("== 2. Replay the same requests per topology ==")
        replay = {"path": path, "sha": sha}
        print(f"  {'topology':<10} {'throughput':>10} {'avg lat':>8} "
              f"{'p95':>5} {'pJ/req':>7}")
        logs = {}
        for topology, params in (
            ("toph", {}),
            ("mesh", {"width": 4, "height": 4}),
            ("torus", {"width": 4, "height": 4}),
        ):
            replay_config = build_config(topology, **params)
            replay_cluster = MemPoolCluster(replay_config, engine="legacy")
            result = replay_cluster.traffic_simulation(
                LOAD,
                pattern="trace", pattern_params=replay,
                injector="trace", injector_params=replay,
                seed=0,
            ).run(
                warmup_cycles=0,
                measure_cycles=int(header["cycles"]) + 256,
                record_flits=True,
            )
            attach_energy(replay_cluster, result)
            logs[topology] = result.flit_log
            print(
                f"  {topology:<10} {result.throughput:>10.3f} "
                f"{result.average_latency:>8.2f} {result.p95_latency:>5d} "
                f"{result.energy.per_request_pj:>7.2f}"
            )
        print()

        print("== 3. Replay is engine-independent ==")
        compiled_cluster = MemPoolCluster(build_config("toph"), engine="compiled")
        compiled = compiled_cluster.traffic_simulation(
            LOAD,
            pattern="trace", pattern_params=replay,
            injector="trace", injector_params=replay,
            seed=0,
        ).run(
            warmup_cycles=0,
            measure_cycles=int(header["cycles"]) + 256,
            record_flits=True,
        )
        identical = compiled.flit_log == logs["toph"]
        print(f"  compiled-engine TopH replay == legacy replay: {identical}")
        assert identical, "trace replay must be engine-independent"


if __name__ == "__main__":
    main()
