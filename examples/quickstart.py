#!/usr/bin/env python3
"""Quickstart: build a MemPool cluster, run a tiny parallel program, inspect it.

This example shows the three layers of the public API:

1. configure and build a cluster (``MemPoolConfig`` / ``MemPoolCluster``);
2. run a program on it — here a small RV32IM assembly program executed by the
   Snitch ISS on every core (``repro.snitch``);
3. inspect the results: cycle counts, per-core activity, interconnect
   latencies and the energy estimate.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MemPoolCluster, MemPoolConfig
from repro.core.system import MemPoolSystem
from repro.energy import EnergyModel
from repro.snitch import assemble
from repro.snitch.agent import make_snitch_agents
from repro.snitch.programs import vector_add_source
from repro.utils.tables import format_table


def main() -> None:
    # 1. A small MemPool cluster: 4 tiles x 4 cores, hierarchical (TopH)
    #    interconnect, hybrid addressing scheme enabled.
    config = MemPoolConfig.tiny(topology="toph")
    cluster = MemPoolCluster(config)
    print(cluster.describe())
    print()

    # Zero-load latencies: the headline numbers of the paper.
    print("zero-load load latencies from core 0:")
    for tile in range(config.num_tiles):
        bank = tile * config.banks_per_tile
        print(f"  bank in tile {tile}: {cluster.zero_load_latency(0, bank)} cycles")
    print()

    # 2. Stage the input data and run a parallel vector addition written in
    #    RV32IM assembly; every core runs the same binary and finds its slice
    #    of the work from its core id (a0) and the core count (a1).
    length = 128
    a = np.arange(length, dtype=np.int64)
    b = 1000 - 3 * np.arange(length, dtype=np.int64)
    region_a = cluster.layout.alloc_shared("vec_a", length * 4)
    region_b = cluster.layout.alloc_shared("vec_b", length * 4)
    region_c = cluster.layout.alloc_shared("vec_c", length * 4)
    cluster.memory.write_words(region_a.base, a)
    cluster.memory.write_words(region_b.base, b)

    program = assemble(
        vector_add_source(),
        symbols={
            "vec_a": region_a.base,
            "vec_b": region_b.base,
            "vec_c": region_c.base,
            "vec_len": length,
        },
    )
    agents = make_snitch_agents(
        cluster, program, argument_builder=lambda core: {10: core, 11: config.num_cores}
    )
    result = MemPoolSystem(cluster, agents).run()

    # 3. Check the result and look at what the machine did.
    c = cluster.memory.read_words(region_c.base, length)
    assert np.array_equal(c, a + b), "simulation produced a wrong result!"
    print(f"vector_add of {length} elements on {config.num_cores} cores:")
    print(f"  cycles:             {result.cycles}")
    print(f"  instructions:       {result.instructions}")
    print(f"  cluster IPC:        {result.ipc:.2f}")
    print(f"  average load latency: {result.total.average_load_latency:.2f} cycles")
    print()

    rows = []
    for core_id in range(4):
        stats = result.core_stats[core_id]
        rows.append(
            [f"core {core_id}", stats.instructions, stats.loads, stats.stores,
             stats.stall_cycles]
        )
    print(format_table(["core", "instructions", "loads", "stores", "stalls"], rows,
                       title="per-core activity (first tile)"))
    print()

    energy = EnergyModel(cluster).program_energy(result.total)
    print(f"estimated energy: {energy.total_uj:.3f} uJ "
          f"(core {energy.core_pj / energy.total_pj:.0%}, "
          f"interconnect {energy.interconnect_pj / energy.total_pj:.0%}, "
          f"banks {energy.bank_pj / energy.total_pj:.0%}, "
          f"instruction cache {energy.icache_pj / energy.total_pj:.0%})")


if __name__ == "__main__":
    main()
