#!/usr/bin/env python3
"""Network exploration: sweep injected load over the three MemPool topologies.

Reproduces (a fast version of) the network analysis of Section V-A/V-B: the
throughput/latency curves of Top1, Top4 and TopH under uniform traffic, and
the effect of the hybrid addressing scheme's locality (p_local) on TopH.

Run with::

    python examples/traffic_sweep.py               # 64-core cluster
    MEMPOOL_FULL=1 python examples/traffic_sweep.py  # full 256-core cluster
"""

from __future__ import annotations

from repro.evaluation import ExperimentSettings
from repro.evaluation.fig5 import run_fig5
from repro.evaluation.fig6 import run_fig6


def main() -> None:
    settings = ExperimentSettings(warmup_cycles=200, measure_cycles=600)
    print(f"Simulating the {settings.scale_label} cluster\n")

    print("== Uniform random traffic (Figure 5) ==")
    fig5 = run_fig5(settings, loads=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5))
    print(fig5.report())
    print()
    print(fig5.plot())
    print()
    for topology in ("top1", "top4", "toph"):
        print(
            f"  {topology}: saturation throughput "
            f"{fig5.saturation_throughput(topology):.2f} request/core/cycle"
        )
    print()

    print("== Locality-biased traffic on TopH (Figure 6) ==")
    fig6 = run_fig6(settings, loads=(0.2, 0.4, 0.6, 0.8), p_locals=(0.0, 0.25, 0.5, 1.0))
    print(fig6.report())
    print()
    print(
        "  making 25% of the accesses local raises the saturation throughput "
        f"from {fig6.saturation_throughput(0.0):.2f} to "
        f"{fig6.saturation_throughput(0.25):.2f} request/core/cycle"
    )


if __name__ == "__main__":
    main()
