"""Tests of the core timing model (operation semantics, stalls, latency hiding)."""

import pytest

from repro.core.agents import Barrier, Compute, Load, Store, TraceAgent, Use
from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig, TimingParameters
from repro.core.system import MemPoolSystem


def run_single_core(operations, topology="toph", config=None, core_id=0, max_cycles=10_000):
    """Run one core's operation list on an otherwise idle tiny cluster."""
    cluster = MemPoolCluster(config or MemPoolConfig.tiny(topology))
    system = MemPoolSystem(cluster, {core_id: TraceAgent(list(operations))})
    result = system.run(max_cycles=max_cycles)
    return result, cluster


def local_address(cluster, core_id=0):
    return cluster.layout.stack_pointer(core_id) - 8


def remote_address(cluster, core_id=0):
    """An address in another tile's sequential slice (always remote)."""
    config = cluster.config
    other_tile = (config.tile_of_core(core_id) + 2) % config.num_tiles
    return other_tile * config.seq_region_bytes_per_tile + 16


class TestComputeTiming:
    def test_compute_costs_its_cycles(self):
        result, _ = run_single_core([Compute(10)])
        assert result.cycles == pytest.approx(10, abs=2)
        assert result.total.compute_cycles == 10

    def test_zero_cycle_compute_is_free(self):
        result, _ = run_single_core([Compute(0), Compute(0), Compute(3)])
        assert result.total.compute_cycles == 3
        assert result.cycles <= 5

    def test_mul_count_tracked(self):
        result, _ = run_single_core([Compute(6, muls=2)])
        assert result.total.mul_instructions == 2

    def test_invalid_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)
        with pytest.raises(ValueError):
            Compute(2, muls=3)


class TestLoadTiming:
    def test_local_load_use_costs_two_cycles(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        address = local_address(cluster)
        system = MemPoolSystem(cluster, {0: TraceAgent([Load(address, tag="x"), Use("x")])})
        result = system.run()
        # Issue at cycle 0, data back at cycle 1, drained by cycle ~2.
        assert result.cycles <= 4
        assert result.total.local_loads == 1

    def test_remote_load_latency_visible_without_overlap(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        address = remote_address(cluster)
        system = MemPoolSystem(cluster, {0: TraceAgent([Load(address, tag="x"), Use("x")])})
        result = system.run()
        assert result.total.remote_loads == 1
        assert result.total.load_latency_max == 5

    def test_outstanding_loads_hide_latency(self):
        """Eight independent remote loads should overlap, not serialise."""
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        operations = []
        for index in range(8):
            operations.append(Load(remote_address(cluster) + 4 * index, tag=index))
        operations.extend(Use(index) for index in range(8))
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        # Serialised execution would take ~8 x 5 = 40 cycles.
        assert result.cycles < 20

    def test_rob_capacity_limits_outstanding_loads(self):
        timing = TimingParameters(max_outstanding_loads=2)
        config = MemPoolConfig.tiny("toph", timing=timing)
        cluster = MemPoolCluster(config)
        operations = [Load(remote_address(cluster) + 4 * i, tag=i) for i in range(6)]
        operations.extend(Use(i) for i in range(6))
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        assert result.total.structural_stalls > 0

    def test_use_of_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="before any load"):
            run_single_core([Use("ghost")])

    def test_tag_reuse_refers_to_the_latest_load(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        address = local_address(cluster)
        operations = [Load(address, tag="x"), Use("x"), Load(address + 4, tag="x"), Use("x")]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        assert result.total.loads == 2

    def test_dependency_stall_counted(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        operations = [Load(remote_address(cluster), tag="x"), Use("x")]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        assert result.total.dependency_stalls >= 3


class TestStores:
    def test_store_counts_by_locality(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        operations = [Store(local_address(cluster)), Store(remote_address(cluster))]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        assert result.total.local_stores == 1
        assert result.total.remote_stores == 1

    def test_stores_do_not_wait_for_responses(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        operations = [Store(remote_address(cluster) + 4 * i) for i in range(4)]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        assert result.cycles < 15


class TestInstructionAccounting:
    def test_instruction_total(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        address = local_address(cluster)
        operations = [Compute(3), Load(address, tag="a"), Use("a"), Store(address)]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        assert result.instructions == 5  # 3 compute + 1 load + 1 store
        assert result.active_cores == 1

    def test_average_load_latency(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        operations = [Load(local_address(cluster), tag="a"), Use("a")]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        assert result.total.average_load_latency == pytest.approx(1.0)

    def test_stall_cycles_property(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        operations = [Load(remote_address(cluster), tag="a"), Use("a")]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        result = system.run()
        total = result.total
        assert total.stall_cycles == (
            total.dependency_stalls + total.structural_stalls + total.barrier_stalls
        )


class TestBarrierOperation:
    def test_barrier_synchronises_fast_and_slow_cores(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        agents = {
            0: TraceAgent([Compute(1), Barrier(), Compute(1)]),
            1: TraceAgent([Compute(50), Barrier(), Compute(1)]),
        }
        system = MemPoolSystem(cluster, agents)
        result = system.run()
        assert result.barrier_episodes == 1
        assert result.cycles >= 50
        assert result.core_stats[0].barrier_stalls >= 40

    def test_unbalanced_barriers_are_reported_as_deadlock(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        agents = {
            0: TraceAgent([Barrier(), Compute(1)]),
            1: TraceAgent([Compute(1)]),
        }
        system = MemPoolSystem(cluster, agents)
        with pytest.raises(RuntimeError, match="barrier"):
            system.run(max_cycles=500)
