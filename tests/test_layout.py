"""Tests of the program-visible memory layout (stacks and allocators)."""

import pytest

from repro.addressing.layout import MemoryLayout
from repro.addressing.map import HybridAddressMap, InterleavedAddressMap
from repro.core.config import MemPoolConfig


@pytest.fixture
def config():
    return MemPoolConfig.tiny()


@pytest.fixture
def layout(config):
    return MemoryLayout(config)


class TestStacks:
    def test_every_core_has_a_stack(self, layout, config):
        for core in range(config.num_cores):
            stack = layout.stack(core)
            assert stack.size == config.stack_bytes_per_core
            assert stack.core_id == core

    def test_stacks_do_not_overlap(self, layout, config):
        windows = sorted(
            (layout.stack(core).base, layout.stack(core).top)
            for core in range(config.num_cores)
        )
        for (_, previous_end), (next_start, _) in zip(windows, windows[1:]):
            assert next_start >= previous_end

    def test_stacks_live_in_their_tiles_sequential_slice(self, layout, config):
        for core in range(config.num_cores):
            tile = config.tile_of_core(core)
            base = tile * config.seq_region_bytes_per_tile
            stack = layout.stack(core)
            assert base <= stack.base < stack.top <= base + config.seq_region_bytes_per_tile

    def test_stacks_are_tile_local_under_the_hybrid_map(self, layout, config):
        hybrid = HybridAddressMap(config)
        for core in range(config.num_cores):
            stack = layout.stack(core)
            tile = config.tile_of_core(core)
            assert hybrid.decode(stack.base).tile == tile
            assert hybrid.decode(stack.top - 4).tile == tile

    def test_stacks_spread_across_tiles_under_the_interleaved_map(self, layout, config):
        """Without scrambling the same stack addresses hit many tiles."""
        interleaved = InterleavedAddressMap(config)
        stack = layout.stack(5)
        tiles = {
            interleaved.decode(address).tile
            for address in range(stack.base, stack.top, 4)
        }
        assert len(tiles) > 1

    def test_stack_pointer_is_word_aligned_top(self, layout):
        stack = layout.stack(0)
        assert layout.stack_pointer(0) == stack.top
        assert layout.stack_pointer(0) % 4 == 0

    def test_unknown_core_rejected(self, layout, config):
        with pytest.raises(ValueError):
            layout.stack(config.num_cores)


class TestSharedAllocator:
    def test_shared_allocations_start_above_the_sequential_region(self, layout, config):
        region = layout.alloc_shared("a", 128)
        assert region.base >= config.seq_region_total_bytes

    def test_shared_allocations_do_not_overlap(self, layout):
        first = layout.alloc_shared("a", 100)
        second = layout.alloc_shared("b", 100)
        assert second.base >= first.end

    def test_alignment_respected(self, layout):
        layout.alloc_shared("a", 6)
        region = layout.alloc_shared("b", 64, alignment=64)
        assert region.base % 64 == 0

    def test_bad_alignment_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.alloc_shared("a", 16, alignment=3)

    def test_zero_size_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.alloc_shared("a", 0)

    def test_exhaustion_raises_memory_error(self, layout, config):
        with pytest.raises(MemoryError):
            layout.alloc_shared("huge", config.l1_bytes)

    def test_regions_are_recorded(self, layout):
        layout.alloc_shared("a", 16)
        layout.alloc_shared("b", 16)
        assert [region.name for region in layout.regions] == ["a", "b"]


class TestTileLocalAllocator:
    def test_tile_local_allocation_is_inside_the_tile_slice(self, layout, config):
        region = layout.alloc_tile_local("buffer", 2, 256)
        tile_base = 2 * config.seq_region_bytes_per_tile
        assert tile_base <= region.base < region.end <= tile_base + config.seq_region_bytes_per_tile

    def test_tile_local_allocation_is_local_under_hybrid_map(self, layout, config):
        hybrid = HybridAddressMap(config)
        region = layout.alloc_tile_local("buffer", 3, 512)
        for address in range(region.base, region.end, 4):
            assert hybrid.decode(address).tile == 3

    def test_tile_local_does_not_collide_with_stacks(self, layout, config):
        region = layout.alloc_tile_local("buffer", 0, 128)
        for core in range(config.cores_per_tile):
            stack = layout.stack(core)
            assert region.base >= stack.top or region.end <= stack.base

    def test_tile_slice_exhaustion(self, layout, config):
        available = config.seq_region_bytes_per_tile - (
            config.cores_per_tile * config.stack_bytes_per_core
        )
        layout.alloc_tile_local("big", 1, available)
        with pytest.raises(MemoryError):
            layout.alloc_tile_local("one-more", 1, 4)

    def test_alloc_core_local_targets_the_cores_tile(self, layout, config):
        core = 7
        region = layout.alloc_core_local("scratch", core, 64)
        assert region.tile == config.tile_of_core(core)

    def test_describe_mentions_regions(self, layout):
        layout.alloc_shared("weights", 64)
        assert "weights" in layout.describe()
