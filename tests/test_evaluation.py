"""Tests of the per-figure experiment drivers (small, fast configurations)."""

import pytest

from repro.evaluation import (
    ExperimentSettings,
    run_fig5,
    run_fig6,
    run_fig10,
    run_physical_tables,
    run_power_table,
)
from repro.evaluation.fig7 import Fig7Result


@pytest.fixture(scope="module")
def settings():
    """Fast settings: scaled cluster, short measurement windows."""
    return ExperimentSettings(full_scale=False, warmup_cycles=100, measure_cycles=300)


class TestSettings:
    def test_scale_selection(self):
        assert ExperimentSettings(full_scale=False).config("toph").num_cores == 64
        assert ExperimentSettings(full_scale=True).config("toph").num_cores == 256

    def test_benchmark_sizes_follow_the_scale(self):
        assert ExperimentSettings(full_scale=True).matmul_size == 64
        assert ExperimentSettings(full_scale=False).matmul_size == 32

    def test_scale_label(self):
        assert "64" in ExperimentSettings(full_scale=False).scale_label

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv("MEMPOOL_FULL", "1")
        assert ExperimentSettings().full_scale
        monkeypatch.setenv("MEMPOOL_FULL", "0")
        assert not ExperimentSettings().full_scale


class TestFig5Driver:
    @pytest.fixture(scope="class")
    def result(self):
        settings = ExperimentSettings(full_scale=False, warmup_cycles=100, measure_cycles=300)
        return run_fig5(settings, loads=(0.05, 0.3), topologies=("top1", "toph"))

    def test_series_shapes(self, result):
        assert set(result.results) == {"top1", "toph"}
        assert len(result.throughput("toph")) == 2

    def test_toph_outperforms_top1_under_load(self, result):
        assert result.saturation_throughput("toph") > result.saturation_throughput("top1")

    def test_latency_lookup(self, result):
        assert result.latency_at("toph", 0.05) < result.latency_at("toph", 0.3) + 1e-9

    def test_report_contains_both_figures(self, result):
        text = result.report()
        assert "Figure 5a" in text and "Figure 5b" in text

    def test_ascii_plot_renders_every_topology(self, result):
        text = result.plot()
        assert "legend:" in text
        assert "top1" in text and "toph" in text


class TestFig6Driver:
    @pytest.fixture(scope="class")
    def result(self):
        settings = ExperimentSettings(full_scale=False, warmup_cycles=100, measure_cycles=300)
        return run_fig6(settings, loads=(0.2, 0.5), p_locals=(0.0, 1.0))

    def test_local_traffic_increases_throughput(self, result):
        assert result.saturation_throughput(1.0) > result.saturation_throughput(0.0)

    def test_local_traffic_decreases_latency(self, result):
        assert result.latency(1.0)[-1] < result.latency(0.0)[-1]

    def test_report_mentions_p_local(self, result):
        assert "p_local" in result.report()

    def test_ascii_plot_renders_every_p_local(self, result):
        text = result.plot()
        assert "p_local=0%" in text and "p_local=100%" in text


class TestFig10Driver:
    def test_paper_ratios(self, settings):
        result = run_fig10(settings)
        assert result.remote_over_local == pytest.approx(2.0, abs=0.3)
        assert result.local_over_add == pytest.approx(2.3, abs=0.3)
        assert result.remote_over_add == pytest.approx(4.5, abs=0.6)
        assert result.interconnect_remote_over_local == pytest.approx(2.9, abs=0.4)

    def test_report_lists_all_instructions(self, settings):
        text = run_fig10(settings).report()
        for name in ("add", "mul", "local load", "remote load"):
            assert name in text

    def test_unknown_entry_rejected(self, settings):
        with pytest.raises(KeyError):
            run_fig10(settings).entry("fdiv")


class TestPhysicalDriver:
    def test_report_contains_paper_quantities(self, settings):
        result = run_physical_tables(settings)
        text = result.report()
        assert "tile macro side" in text
        assert "top4" in text

    def test_congestion_verdicts(self, settings):
        result = run_physical_tables(settings)
        assert not result.congestion["top4"].feasible
        assert result.congestion["toph"].feasible


class TestFig7Result:
    def test_relative_performance_computation(self):
        result = Fig7Result(
            cycles={
                ("matmul", "topx", False): 100,
                ("matmul", "toph", False): 125,
                ("matmul", "top1", False): 400,
                ("matmul", "topx", True): 100,
                ("matmul", "toph", True): 110,
                ("matmul", "top1", True): 350,
            }
        )
        assert result.relative_performance("matmul", "toph", False) == pytest.approx(0.8)
        assert result.speedup_over_top1("matmul", "toph", False) == pytest.approx(3.2)
        assert result.scrambling_gain("matmul", "toph") == pytest.approx(125 / 110)


class TestPowerDriver:
    def test_power_table_runs_on_a_small_matmul(self):
        settings = ExperimentSettings(full_scale=False)
        result = run_power_table(settings)
        assert result.breakdown.tile_total_mw > 0
        assert "Section VI-D" in result.report()
