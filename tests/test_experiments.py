"""Tests of the repro.experiments sweep engine (specs, grids, cache, executor)."""

import pickle

import pytest

from repro.core.config import MemPoolConfig
from repro.experiments import (
    MISS,
    Executor,
    ExperimentSpec,
    ResultCache,
    Sweep,
    canonical_json,
    program_fingerprint,
    resolve_runner,
    run_sweep,
)
from repro.experiments.registry import EXPERIMENTS


def _hammer_cache(root: str, key: str, seed: int) -> None:
    """Child-process body of the multi-process cache-contention test."""
    cache = ResultCache(root)
    payload = bytes([seed]) * 8192
    for _ in range(100):
        cache.put(key, payload)
        value = cache.get(key)
        assert value is not MISS and len(value) == 8192


class TestSpec:
    def test_resolve_runner_imports_the_function(self):
        assert resolve_runner("math:gcd")(12, 8) == 4

    def test_resolve_runner_rejects_bad_paths(self):
        with pytest.raises(ValueError):
            resolve_runner("math.gcd")  # no colon
        with pytest.raises(ValueError):
            resolve_runner("math:does_not_exist")
        with pytest.raises(ValueError):
            resolve_runner("math:pi")  # not callable

    def test_execute_calls_the_runner_with_params(self):
        spec = ExperimentSpec("repro.experiments.demo:multiply", {"a": 6, "b": 7})
        assert spec.execute() == 42

    def test_key_is_stable_and_param_order_independent(self):
        a = ExperimentSpec("repro.experiments.demo:multiply", {"a": 1, "b": 2})
        b = ExperimentSpec("repro.experiments.demo:multiply", {"b": 2, "a": 1})
        assert a.key == b.key
        assert len(a.key) == 64

    def test_key_distinguishes_params_and_runners(self):
        base = ExperimentSpec("repro.experiments.demo:multiply", {"a": 1, "b": 2})
        assert base.key != ExperimentSpec(
            "repro.experiments.demo:multiply", {"a": 1, "b": 3}).key
        assert base.key != ExperimentSpec(
            "repro.experiments.demo:power", {"a": 1, "b": 2}).key

    def test_key_covers_the_program_source(self):
        # Different programs -> different fingerprints feed the key.
        assert program_fingerprint("math:gcd") != program_fingerprint(
            "repro.evaluation.fig5:simulate_fig5_point"
        )

    def test_fingerprint_covers_the_whole_package(self):
        # A point's result depends on the full simulator stack, so every
        # repro runner shares one fingerprint over the whole package tree
        # — an edit anywhere in repro/ invalidates all cached results.
        assert program_fingerprint(
            "repro.evaluation.fig5:simulate_fig5_point"
        ) == program_fingerprint("repro.evaluation.fig7:simulate_fig7_point")

    def test_config_objects_canonicalise_via_to_dict(self):
        tiny = MemPoolConfig.tiny()
        assert canonical_json({"config": tiny}) == canonical_json(
            {"config": tiny.to_dict()}
        )

    def test_unhashable_param_values_are_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"bad": object()})

    def test_specs_are_picklable(self):
        spec = ExperimentSpec(
            "repro.experiments.demo:multiply", {"a": 6, "b": 7}, name="demo")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.execute() == 42

    def test_label_names_the_sweep_and_params(self):
        spec = ExperimentSpec(
            "repro.experiments.demo:multiply", {"a": 12}, name="demo")
        assert spec.label == "demo[a=12]"


class TestSweep:
    def test_grid_expansion_order_first_key_outermost(self):
        sweep = Sweep("repro.experiments.demo:multiply", grid={"a": (4, 6), "b": (2, 3)})
        params = [spec.params for spec in sweep.specs()]
        assert params == [
            {"a": 4, "b": 2},
            {"a": 4, "b": 3},
            {"a": 6, "b": 2},
            {"a": 6, "b": 3},
        ]

    def test_base_params_are_shared_and_overridden_by_grid(self):
        sweep = Sweep("repro.experiments.demo:multiply", grid={"a": (4,)}, base={"a": 1, "b": 6})
        (spec,) = sweep.specs()
        assert spec.params == {"a": 4, "b": 6}

    def test_empty_grid_yields_a_single_point(self):
        sweep = Sweep("repro.experiments.demo:multiply", base={"a": 12, "b": 8})
        assert sweep.size == 1
        assert len(sweep.specs()) == 1

    def test_len_and_iter(self):
        sweep = Sweep(
            "repro.experiments.demo:multiply", grid={"a": (1, 2, 3)}, base={"b": 2})
        assert len(sweep) == 3
        assert [spec.params["a"] for spec in sweep] == [1, 2, 3]


class TestResultCache:
    KEY = "ab" + "0" * 62

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(self.KEY) is MISS
        cache.put(self.KEY, {"cycles": 99})
        assert cache.get(self.KEY) == {"cycles": 99}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_none_is_a_cacheable_value(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, None)
        assert cache.get(self.KEY) is None

    def test_corrupt_entries_read_as_misses_and_are_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, [1, 2, 3])
        path = cache._path(self.KEY)
        path.write_bytes(b"not a pickle")
        assert cache.get(self.KEY) is MISS
        assert not path.exists()

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(f"{index:02d}" + "0" * 62, index)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_clear_sweeps_orphaned_temporary_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, 1)
        orphan = cache._path(self.KEY).with_suffix(".tmp.12345")
        orphan.write_bytes(b"partial write")
        assert cache.clear() == 1
        assert not orphan.exists()

    def test_contains(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert self.KEY not in cache
        cache.put(self.KEY, 1)
        assert self.KEY in cache

    def test_env_override_of_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert ResultCache().root == tmp_path

    def test_concurrent_threaded_puts_to_one_key_stay_readable(self, tmp_path):
        # Two threads share a pid, so the temporary-file name must carry
        # more than the pid or their in-flight writes collide.
        import threading

        cache = ResultCache(tmp_path)
        errors = []

        def hammer(value):
            try:
                for _ in range(200):
                    cache.put(self.KEY, value)
                    got = cache.get(self.KEY)
                    assert got in (b"x" * 4096, b"y" * 4096)
            except Exception as error:  # noqa: BLE001 — collected for the assert
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(payload,))
            for payload in (b"x" * 4096, b"y" * 4096)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert not list(tmp_path.glob("*/*.tmp.*"))  # no orphans left

    def test_concurrent_multiprocess_puts_to_one_key_stay_atomic(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context()
        processes = [
            context.Process(target=_hammer_cache, args=(str(tmp_path), self.KEY, seed))
            for seed in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        assert all(process.exitcode == 0 for process in processes)
        cache = ResultCache(tmp_path)
        value = cache.get(self.KEY)
        assert value is not MISS
        assert value in [bytes([seed]) * 8192 for seed in range(4)]
        assert not list(tmp_path.glob("*/*.tmp.*"))

    def test_put_survives_losing_its_memoised_shard_directory(self, tmp_path):
        # A concurrent cleanup may remove the shard directory after this
        # instance memoised its mkdir; the next put must recreate it.
        import shutil

        cache = ResultCache(tmp_path)
        cache.put(self.KEY, 1)
        shutil.rmtree(tmp_path / self.KEY[:2])
        cache.put(self.KEY, 2)
        assert cache.get(self.KEY) == 2


class TestExecutor:
    def sweep(self):
        return Sweep(
            "repro.experiments.demo:multiply", grid={"a": (4, 6, 9)}, base={"b": 6})

    def test_serial_execution_preserves_order(self):
        assert Executor(workers=1).run(self.sweep()) == [24, 36, 54]

    def test_parallel_matches_serial(self):
        serial = Executor(workers=1).run(self.sweep())
        parallel = Executor(workers=2).run(self.sweep())
        assert serial == parallel

    def test_zero_workers_selects_cpu_count(self):
        assert Executor(workers=0).workers >= 1

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(workers=1, cache=cache)
        first = executor.run(self.sweep())
        assert executor.last_report.computed == 3
        second = executor.run(self.sweep())
        assert second == first
        assert executor.last_report.cache_hits == 3
        assert executor.last_report.computed == 0

    def test_progress_callback_reports_computed_points_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(workers=1, cache=cache)
        executor.run(self.sweep())
        seen = []
        executor.run(self.sweep(), progress=lambda spec, value: seen.append(value))
        assert seen == []  # everything was a cache hit

    def test_run_sweep_convenience(self):
        assert run_sweep(self.sweep()) == [24, 36, 54]

    def test_report_summary_mentions_counts(self):
        executor = Executor(workers=1)
        executor.run(self.sweep())
        summary = executor.last_report.summary()
        assert "3 points" in summary and "3 computed" in summary

    def test_slow_first_point_does_not_block_progress_of_fast_ones(self):
        # Head-of-line regression check: results are collected in
        # completion order, so the fast points report progress while the
        # deliberately slow first point is still running — yet the
        # returned list stays aligned with the input order.
        specs = [
            ExperimentSpec(
                "repro.experiments.demo:slow_multiply",
                {"a": 1, "b": 10, "delay_s": 1.5},
            )
        ] + [
            ExperimentSpec(
                "repro.experiments.demo:slow_multiply",
                {"a": a, "b": 10, "delay_s": 0.0},
            )
            for a in (2, 3, 4)
        ]
        seen = []
        executor = Executor(workers=2)
        results = executor.run(specs, progress=lambda spec, value: seen.append(value))
        assert results == [10, 20, 30, 40]  # input order regardless
        # The slow first point must finish last in completion order.
        assert seen[-1] == 10
        assert sorted(seen) == [10, 20, 30, 40]


class TestTrafficSweepsThroughEngine:
    """Serial/parallel/cached runs of real simulation points agree."""

    def test_fig5_parallel_equals_serial(self):
        from repro.evaluation import ExperimentSettings
        from repro.evaluation.fig5 import run_fig5

        settings = ExperimentSettings(warmup_cycles=50, measure_cycles=100)
        serial = run_fig5(settings, loads=(0.05, 0.2), topologies=("toph",))
        parallel = run_fig5(
            settings,
            loads=(0.05, 0.2),
            topologies=("toph",),
            executor=Executor(workers=2),
        )
        assert serial.throughput("toph") == parallel.throughput("toph")
        assert serial.latency("toph") == parallel.latency("toph")

    def test_fig7_cached_rerun_is_identical(self, tmp_path):
        from repro.evaluation import ExperimentSettings
        from repro.evaluation.fig7 import run_fig7

        settings = ExperimentSettings()
        executor = Executor(workers=1, cache=ResultCache(tmp_path))
        first = run_fig7(settings, kernels=("dct",), topologies=("toph", "topx"),
                         executor=executor)
        assert executor.last_report.computed == 4
        second = run_fig7(settings, kernels=("dct",), topologies=("toph", "topx"),
                          executor=executor)
        assert executor.last_report.cache_hits == 4
        assert first.cycles == second.cycles
        assert first.report() == second.report()


class TestFig7SeedRegression:
    """The engine-driven fig7 reproduces the seed's hand-rolled loop exactly."""

    KERNELS = ("dct", "2dconv")
    TOPOLOGIES = ("top1", "toph", "topx")

    def seed_style_fig7(self, settings):
        """The pre-refactor nested loop, verbatim from the seed."""
        from repro.core.cluster import MemPoolCluster
        from repro.evaluation.fig7 import Fig7Result, _build_kernel

        outcome = Fig7Result()
        for kernel_name in self.KERNELS:
            for topology in self.TOPOLOGIES:
                for scrambling in (False, True):
                    config = settings.config(topology, scrambling_enabled=scrambling)
                    cluster = MemPoolCluster(config)
                    kernel = _build_kernel(kernel_name, cluster, settings)
                    result = kernel.run(verify=True)
                    key = (kernel_name, topology, scrambling)
                    outcome.cycles[key] = result.cycles
                    outcome.results[key] = result
        return outcome

    def test_cycles_and_report_are_byte_identical(self):
        from repro.evaluation import ExperimentSettings
        from repro.evaluation.fig7 import run_fig7

        settings = ExperimentSettings()
        seed_result = self.seed_style_fig7(settings)
        engine_result = run_fig7(
            settings, kernels=self.KERNELS, topologies=self.TOPOLOGIES
        )
        assert engine_result.cycles == seed_result.cycles
        assert engine_result.report() == seed_result.report()
        assert engine_result.all_correct()


class TestRegistry:
    def test_every_experiment_is_registered(self):
        assert set(EXPERIMENTS) == {
            "fig5", "fig6", "fig7", "fig10", "power", "physical", "workloads",
            "topologies", "traces",
        }

    def test_definitions_build_consistent_sweeps(self):
        from repro.evaluation import ExperimentSettings

        settings = ExperimentSettings()
        for name, definition in EXPERIMENTS.items():
            sweep = definition.build_sweep(settings)
            assert sweep.name == name
            assert sweep.size >= 1

    def test_single_point_experiment_runs_through_the_registry(self):
        from repro.evaluation import ExperimentSettings

        result = EXPERIMENTS["fig10"].run(ExperimentSettings(), Executor())
        assert "Figure 10" in result.report()


class TestExperimentsCli:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_unknown_experiment_fails(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "nope"]) == 1
        assert "unknown experiments" in capsys.readouterr().out

    def test_run_and_clean_share_the_cache_dir(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig10", "--cache-dir", cache_dir]) == 0
        output = capsys.readouterr().out
        assert "Figure 10" in output and "1 computed" in output

        # A warm re-run is served from the cache.
        assert main(["run", "fig10", "--cache-dir", cache_dir]) == 0
        assert "1 cached" in capsys.readouterr().out

        assert main(["clean", "--cache-dir", cache_dir]) == 0
        assert "removed 1 cached result" in capsys.readouterr().out

    def test_run_no_cache_skips_the_cache(self, capsys, tmp_path, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "fig10", "--no-cache"]) == 0
        capsys.readouterr()
        assert len(ResultCache(tmp_path)) == 0
